"""A compact training loop with history, validation and early stopping.

Timing and loss telemetry flow through *hooks*
(:class:`~repro.obs.hooks.TrainerHook`): the trainer measures each
step, epoch and evaluation pass on one monotonic clock and reports the
facts to every registered hook instead of keeping private bookkeeping.
By default the observability hook is installed when ``repro.obs`` is
enabled (``REPRO_OBS=0`` leaves the hook list empty, reducing the hot
loop's instrumentation to one truthiness check per step).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.nn import fastpath
from repro.nn.data import DataLoader
from repro.nn.module import Module
from repro.nn.optim import Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad

__all__ = ["Trainer", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :meth:`Trainer.fit`.

    ``lr`` holds each epoch's mean per-step learning rate (with no
    schedule every step shares the optimizer's rate, so the mean equals
    it exactly).
    """

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    lr: list[float] = field(default_factory=list)
    wall_time: float = 0.0
    epochs_run: int = 0
    stopped_early: bool = False

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1] if self.train_loss else float("nan")


class Trainer:
    """Drives training of a model whose forward returns predictions.

    Args:
        model: the module to train.
        optimizer: optimizer over (a subset of) the model's parameters —
            pass only the decoder's parameters to get the paper's
            "decoder only" fine-tuning mode.
        loss_fn: ``loss_fn(prediction, target_tensor) -> scalar Tensor``.
        forward_fn: adapter ``(model, batch) -> (prediction, target)``;
            defaults to ``model(batch[0]), batch[-1]``.  This decouples
            the trainer from each task's input layout.
        grad_clip: optional global-norm gradient clip.
        schedule: optional LR schedule ``step -> multiplier``.
        on_epoch_start: optional hook run after ``model.train()`` at the
            top of every training epoch.  Decoder-only fine-tuning uses
            it to put the frozen encoder back into eval mode so its
            dropout stays off.
        precision: compute dtype for training and evaluation —
            ``"float64"`` (the default; cached-artifact bytes depend on
            it) or ``"float32"`` (half the matmul memory bandwidth, for
            exploratory sweeps).  Applied as a
            :func:`repro.nn.fastpath.precision` scope around every
            epoch/evaluation, so tensors built inside follow it.
        hooks: telemetry sinks (:class:`~repro.obs.hooks.TrainerHook`)
            receiving per-step/per-epoch/per-evaluation timing and loss
            facts.  ``None`` (the default) installs the observability
            hook when ``repro.obs`` is enabled; pass ``()`` to opt out
            explicitly.  Hooks observe — they never touch the model,
            optimizer or RNG streams, so training stays bit-identical
            with or without them.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable,
        forward_fn: Callable | None = None,
        grad_clip: float | None = 1.0,
        schedule: Callable | None = None,
        on_epoch_start: Callable | None = None,
        precision: str = "float64",
        hooks: Iterable | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.forward_fn = forward_fn if forward_fn is not None else self._default_forward
        self.grad_clip = grad_clip
        self.schedule = schedule
        self.on_epoch_start = on_epoch_start
        self.precision = precision
        dtype = fastpath.resolve_dtype(precision)  # validate eagerly
        if precision != "float64":
            # A model built outside a precision scope carries float64
            # parameters; training it with float32 batches would upcast
            # every matmul (no bandwidth saving, worse numerics).  Pin
            # the parameters to the declared compute dtype instead.
            model.cast_parameters(dtype)
        if hooks is None:
            from repro.obs.hooks import default_trainer_hooks

            hooks = default_trainer_hooks()
        self.hooks = tuple(hooks)
        self._base_lr = optimizer.lr
        self._global_step = 0
        self._epochs_run = 0
        self._epoch_lr = optimizer.lr

    @staticmethod
    def _default_forward(model: Module, batch: tuple):
        *inputs, target = batch
        prediction = model(*inputs)
        return prediction, target

    def train_epoch(self, loader: DataLoader) -> float:
        """One pass over the training data; returns the mean batch loss.

        The schedule (when present) is evaluated exactly once per step;
        the optimizer's rate is only re-assigned when the multiplier
        actually moved it, and the per-step rates are recorded once so
        :meth:`fit` can log the epoch's mean learning rate instead of
        whatever the last batch happened to use.
        """
        self.model.train()
        if self.on_epoch_start is not None:
            self.on_epoch_start()
        losses = []
        lr_sum = 0.0
        hooks = self.hooks
        epoch_started = time.perf_counter() if hooks else 0.0
        with fastpath.precision(self.precision):
            for batch in loader:
                step_started = time.perf_counter() if hooks else 0.0
                if self.schedule is not None:
                    lr = self._base_lr * self.schedule(self._global_step)
                    if lr != self.optimizer.lr:
                        self.optimizer.lr = lr
                lr_sum += self.optimizer.lr
                prediction, target = self.forward_fn(self.model, batch)
                loss = self.loss_fn(prediction, Tensor.ensure(target))
                self.optimizer.zero_grad()
                loss.backward()
                if self.grad_clip is not None:
                    clip_grad_norm(self.optimizer.parameters, self.grad_clip)
                self.optimizer.step()
                self._global_step += 1
                losses.append(loss.item())
                if hooks:
                    seconds = time.perf_counter() - step_started
                    for hook in hooks:
                        hook.on_step(
                            self._global_step - 1, losses[-1], self.optimizer.lr, seconds
                        )
        self._epoch_lr = lr_sum / len(losses) if losses else self.optimizer.lr
        mean_loss = float(np.mean(losses)) if losses else float("nan")
        epoch = self._epochs_run
        self._epochs_run += 1
        if hooks:
            seconds = time.perf_counter() - epoch_started
            for hook in hooks:
                hook.on_epoch_end(epoch, mean_loss, self._epoch_lr, seconds, len(losses))
        return mean_loss

    def evaluate(self, loader: DataLoader) -> float:
        """Mean loss over a dataset without touching gradients.

        Weighted by batch size so short final batches don't skew the
        estimate.
        """
        self.model.eval()
        total = 0.0
        count = 0
        hooks = self.hooks
        started = time.perf_counter() if hooks else 0.0
        with no_grad(), fastpath.precision(self.precision):
            for batch in loader:
                prediction, target = self.forward_fn(self.model, batch)
                loss = self.loss_fn(prediction, Tensor.ensure(target))
                batch_count = len(batch[0])
                total += loss.item() * batch_count
                count += batch_count
        mean_loss = total / count if count else float("nan")
        if hooks:
            seconds = time.perf_counter() - started
            for hook in hooks:
                hook.on_evaluate(mean_loss, count, seconds)
        return mean_loss

    def fit(
        self,
        train_loader: DataLoader,
        val_loader: DataLoader | None = None,
        epochs: int = 10,
        patience: int | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs with optional early stopping.

        ``patience`` counts epochs without validation improvement before
        stopping (requires ``val_loader``).
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if patience is not None and val_loader is None:
            raise ValueError("early stopping requires a validation loader")
        history = TrainingHistory()
        best_val = float("inf")
        bad_epochs = 0
        start = time.perf_counter()
        for epoch in range(epochs):
            train_loss = self.train_epoch(train_loader)
            history.train_loss.append(train_loss)
            history.lr.append(self._epoch_lr)
            if val_loader is not None:
                val_loss = self.evaluate(val_loader)
                history.val_loss.append(val_loss)
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    bad_epochs = 0
                else:
                    bad_epochs += 1
            if verbose:
                val_text = f" val={history.val_loss[-1]:.6f}" if val_loader else ""
                print(f"epoch {epoch + 1}/{epochs} train={train_loss:.6f}{val_text}")
            history.epochs_run = epoch + 1
            if patience is not None and bad_epochs > patience:
                history.stopped_early = True
                break
        history.wall_time = time.perf_counter() - start
        return history
