"""Stage execution: one code path for serial runs, worker pools and tables.

Each campaign task is executed by :func:`run_task`, either in-process
(the engine's serial path hands in a shared
:class:`~repro.api.experiment.Experiment`) or inside a
``ProcessPoolExecutor`` worker, where the module-level function is
imported by reference and rebuilds the experiment from the task's JSON
payload.  Heavy artifacts never cross the process boundary — they flow
through the content-addressed :class:`~repro.api.store.ArtifactStore`;
task results are small dictionaries of scalars.
"""

from __future__ import annotations

import time
import traceback

import numpy as np

from repro.api.experiment import Experiment
from repro.api.spec import ExperimentSpec
from repro.api.store import ArtifactStore, bundle_key
from repro.core.baselines import evaluate_baselines
from repro.core.features import FeaturePipeline
from repro.core.finetune import train_delay_from_scratch, train_mct_from_scratch
from repro.netsim.scenarios import ScenarioKind, build_scenario, run_scenario
from repro.runtime.plan import resolve_variant
from repro.utils.stats import percentile_summary

__all__ = ["run_task", "execute_stage"]


# -- stage implementations --------------------------------------------------------
#
# Every stage returns ``(cache_hit, result)`` where ``result`` is a flat
# JSON-able dictionary (it crosses process boundaries and lands in the
# campaign manifest).


def _stage_traces(experiment: Experiment, params: dict):
    store, key = experiment.store, params["key"]
    n_runs = experiment.scale.n_runs
    if store is not None and store.has_traces(key, n_runs):
        # Cache hit: report run-set statistics straight from the
        # sidecar — no npz is loaded just for manifest bookkeeping.
        meta = store.trace_run_meta(key) or {}
        if "total_packets" in meta:
            return True, {
                "n_runs": n_runs,
                "total_packets": int(meta["total_packets"]),
            }
        traces = store.get_traces(key, n_runs)
        return True, {
            "n_runs": len(traces),
            "total_packets": int(sum(len(trace) for trace in traces)),
        }
    if store is None:
        traces = experiment.traces(params["scenario"])
        return False, {
            "n_runs": len(traces),
            "total_packets": int(sum(len(trace) for trace in traces)),
        }
    # Cache miss with a store: stream each run's columns straight to
    # disk as it is generated, instead of materialising the whole run
    # set in memory first.  The sidecar published last keeps partial
    # writes invisible to readers.
    config = experiment.spec.scenario_config(params["scenario"])
    total_packets = 0
    for run_index in range(n_runs):
        trace = run_scenario(config, run_index)
        store.put_trace_run(key, run_index, trace)
        total_packets += len(trace)
    store.finalize_trace_runs(key, n_runs, total_packets=total_packets)
    return False, {"n_runs": n_runs, "total_packets": total_packets}


def _stage_bundle(experiment: Experiment, params: dict):
    scenario = params["scenario"]
    store = experiment.store
    hit = False
    if store is not None:
        # The real key needs the pre-training receiver index, which the
        # dependency on the pre-training bundle has already produced.
        receiver_index = None
        if scenario != ScenarioKind.PRETRAIN:
            receiver_index = experiment.bundle(ScenarioKind.PRETRAIN).receiver_index
        key = bundle_key(
            experiment.spec.scenario_config(scenario),
            experiment.scale.window,
            experiment.scale.n_runs,
            receiver_index,
        )
        hit = store.is_current("bundles", key)
    bundle = experiment.bundle(scenario)
    return hit, {
        "n_windows": bundle.n_windows,
        "n_packets": bundle.n_packets,
        "n_receivers": len(bundle.receiver_index),
    }


def _stage_pretrain(experiment: Experiment, params: dict):
    store, key = experiment.store, params["key"]
    hit = store is not None and store.is_current("checkpoints", key)
    features, aggregation = resolve_variant(
        experiment.scale, params.get("features"), params.get("aggregation")
    )
    if features is None and aggregation is None:
        result = experiment.pretrained()
    else:
        result = experiment.pretrain_variant(features=features, aggregation=aggregation)
    return hit, {
        "test_mse_seconds2": result.test_mse_seconds2,
        "epochs_run": result.history.epochs_run,
        "train_wall_time_s": result.history.wall_time,
    }


def _stage_finetune(experiment: Experiment, params: dict):
    store, key = experiment.store, params["key"]
    hit = store is not None and store.is_current("checkpoints", key)
    features, aggregation = resolve_variant(
        experiment.scale, params.get("features"), params.get("aggregation")
    )
    result = experiment.finetuned(
        scenario=params["scenario"],
        task=params.get("task", "delay"),
        mode=params.get("mode", "decoder_only"),
        fraction=params.get("fraction"),
        features=features,
        aggregation=aggregation,
    )
    return hit, _summarise_finetune(result)


def _summarise_finetune(result) -> dict:
    return {
        "test_mse": result.test_mse,
        "training_time_s": result.training_time,
        "mode": result.mode,
        "task": result.task,
    }


def _stage_scratch(experiment: Experiment, params: dict):
    """The paper's from-scratch rows: full training, no pre-trained
    weights, but normalised by the pre-training pipeline."""
    store, key = experiment.store, params["key"]
    if store is not None and key is not None:
        cached = store.get_finetuned(key)
        if cached is not None:
            return True, _summarise_finetune(cached[0])
    task = params.get("task", "delay")
    pre = experiment.pretrained()
    bundle = experiment.bundle(params["scenario"])
    fraction = params.get("fraction")
    if fraction is not None:
        bundle = bundle.small_fraction(fraction)
    config = experiment.scale.model_config()
    settings = experiment.scale.finetune_settings
    if task == "delay":
        pipeline = pre.pipeline
        result = train_delay_from_scratch(config, pipeline, bundle, settings=settings)
    else:
        # Isolated MCT scaler, mirroring Experiment's fine-tune path.
        pipeline = FeaturePipeline()
        pipeline.feature_scaler = pre.pipeline.feature_scaler
        pipeline.message_size_scaler = pre.pipeline.message_size_scaler
        result = train_mct_from_scratch(config, pipeline, bundle, settings=settings)
    if store is not None and key is not None:
        store.put_finetuned(key, result, pipeline)
    return False, _summarise_finetune(result)


def _stage_baselines(experiment: Experiment, params: dict):
    store, key = experiment.store, params["key"]
    if store is not None and key is not None:
        cached = store.get_json("evaluations", key)
        if cached is not None:
            return True, cached
    rows = evaluate_baselines(experiment.bundle(params["scenario"]).test)
    payload = {"scenario": params["scenario"], "rows": rows}
    if store is not None and key is not None:
        store.put_json("evaluations", key, payload)
    return False, payload


def _stage_evaluate(experiment: Experiment, params: dict):
    """Terminal sweep stage: the spec's model vs. the naive baselines on
    its scenario's held-out test set (cached as a JSON evaluation)."""
    store, key = experiment.store, params["key"]
    if store is not None and key is not None:
        cached = store.get_json("evaluations", key)
        if cached is not None:
            return True, cached
    scenario = params["scenario"]
    task = params.get("task", "delay")
    if scenario == ScenarioKind.PRETRAIN and task == "delay":
        predictor = experiment.predictor(scenario=scenario)
    else:
        predictor = experiment.predictor(
            scenario=scenario, task=task, mode=params.get("mode", "decoder_only")
        )
    test = experiment.bundle(scenario).test
    if task == "mct":
        test = test.with_completed_messages_only()
    predictions = predictor.predict_dataset(test)
    actual = np.log(test.mct_target) if task == "mct" else test.delay_target
    payload = {
        "scenario": scenario,
        "task": task,
        "n_test_windows": int(len(test)),
        "model_mse": float(np.mean((predictions - actual) ** 2)),
        "baselines": evaluate_baselines(test),
    }
    if store is not None and key is not None:
        store.put_json("evaluations", key, payload)
    return False, payload


def _stage_trace_stats(experiment: Experiment, params: dict):
    """Fig. 4-style per-scenario trace statistics (always recomputed —
    this stage exists to measure the simulator itself)."""
    config = experiment.spec.scenario_config(params["scenario"])
    handle = build_scenario(config)
    trace = handle.run()
    delays = trace.delay
    summary = percentile_summary(delays * 1e3)
    per_receiver = {
        str(receiver): float(delays[trace.receiver_id == receiver].mean() * 1e3)
        for receiver in sorted(set(trace.receiver_id.tolist()))
    }
    return False, {
        "packets": len(trace),
        "messages": int(trace.is_message_end.sum()),
        "delay_mean_ms": summary.mean,
        "delay_p50_ms": summary.p50,
        "delay_p99_ms": summary.p99,
        "delay_p999_ms": summary.p999,
        # SimStats aggregates drops as they happen (threaded through
        # every queue), so no topology walk is needed here.
        "queue_drops": handle.sim.stats.packets_dropped,
        "per_receiver_mean_delay_ms": per_receiver,
        "events_processed": handle.sim.events_processed,
    }


_STAGES = {
    "traces": _stage_traces,
    "bundle": _stage_bundle,
    "pretrain": _stage_pretrain,
    "finetune": _stage_finetune,
    "scratch": _stage_scratch,
    "baselines": _stage_baselines,
    "evaluate": _stage_evaluate,
    "trace_stats": _stage_trace_stats,
}


def execute_stage(stage: str, experiment: Experiment, params: dict):
    """Run one stage; returns ``(cache_hit, result_dict)``."""
    try:
        implementation = _STAGES[stage]
    except KeyError:
        raise ValueError(f"unknown stage {stage!r}; choose from {sorted(_STAGES)}") from None
    return implementation(experiment, params)


def _retry_backoff(payload: dict) -> float:
    """Jittered backoff before a retry attempt, drawn from the task's
    spawned seed sequence so campaign behaviour is reproducible."""
    attempt = payload.get("attempt", 0)
    sequence = np.random.SeedSequence(
        entropy=payload.get("seed_entropy", 0),
        spawn_key=tuple(payload.get("spawn_key", ())),
    )
    jitter = float(np.random.default_rng(sequence).uniform(0.0, 0.25, size=attempt)[-1])
    return min(0.25 * (2 ** (attempt - 1)), 2.0) + jitter


def run_task(payload: dict, experiment: Experiment | None = None) -> dict:
    """Execute one task payload; never raises.

    Worker-pool entry point: with no ``experiment`` the spec and store
    are rebuilt from the payload (each worker process owns its own
    experiment context; artifacts are shared through the store).
    Failures come back as structured ``status: "error"`` records so the
    engine can retry and the manifest can record the traceback; retry
    attempts (``payload["attempt"] > 0``) back off with jitter first.
    """
    if payload.get("attempt", 0) > 0:
        time.sleep(_retry_backoff(payload))
    start = time.perf_counter()
    record = {"id": payload["id"], "stage": payload["stage"], "cache_hit": False}
    try:
        if experiment is None:
            spec = ExperimentSpec.from_dict(payload["spec"])
            root = payload.get("store_root")
            store = ArtifactStore(root) if root is not None else None
            experiment = Experiment(spec, store=store)
        hit, result = execute_stage(payload["stage"], experiment, payload["params"])
        record.update(status="done", cache_hit=bool(hit), result=result)
    except Exception:  # noqa: BLE001 — crosses a process boundary
        record.update(status="error", error=traceback.format_exc())
    record["wall_time_s"] = time.perf_counter() - start
    return record
