"""Each rule catches exactly its known-bad fixture and stays silent on
the clean mirror — rule regressions surface without depending on repo
code staying buggy."""

from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def bad_report():
    return run_lint([FIXTURES / "bad"], use_baseline=False)


@pytest.fixture(scope="module")
def clean_report():
    return run_lint([FIXTURES / "clean"], use_baseline=False)


def _locations(report, path):
    return [
        (f.rule, f.line) for f in report.findings if f.path == path
    ]


class TestBadFixtures:
    def test_determinism_findings(self, bad_report):
        assert _locations(bad_report, "netsim/bad_determinism.py") == [
            ("determinism", 3),   # import random
            ("determinism", 11),  # np.random.seed
            ("determinism", 12),  # np.random.random
            ("determinism", 13),  # random.gauss
            ("determinism", 18),  # time.time
            ("determinism", 19),  # datetime.now
            ("determinism", 24),  # set(...) feeding stable_hash
        ]

    def test_stage_purity_findings(self, bad_report):
        assert _locations(bad_report, "runtime/bad_stage_purity.py") == [
            ("stage-purity", 18),  # os.environ
            ("stage-purity", 19),  # module-global mutation
            ("stage-purity", 20),  # open()
            ("stage-purity", 22),  # shutil.rmtree
            ("stage-purity", 28),  # global statement
        ]

    def test_hot_loop_alloc_findings(self, bad_report):
        assert _locations(bad_report, "nn/bad_hot_loop.py") == [
            ("hot-loop-alloc", 9),   # np.zeros
            ("hot-loop-alloc", 10),  # np.sqrt without out=
            ("hot-loop-alloc", 11),  # operator-form temporary
        ]

    def test_async_blocking_findings(self, bad_report):
        assert _locations(bad_report, "serve/bad_async.py") == [
            ("async-blocking", 9),   # time.sleep
            ("async-blocking", 10),  # open()
            ("async-blocking", 12),  # socket.create_connection
            ("async-blocking", 13),  # path.read_text
        ]

    def test_lock_discipline_findings(self, bad_report):
        assert _locations(bad_report, "serve/bad_locks.py") == [
            ("lock-discipline", 14),  # unguarded write in start()
            ("lock-discipline", 18),  # unguarded write in _run()
        ]

    def test_lock_discipline_reaches_helper_methods(self, bad_report):
        # The write in _step is only reachable through _run (the thread
        # entry); the call-graph closure must still attribute it to the
        # spawned thread and flag both racing writes.
        locations = _locations(bad_report, "serve/bad_lock_helper.py")
        assert locations == [
            ("lock-discipline", 15),  # unguarded write in start()
            ("lock-discipline", 22),  # unguarded write in helper _step()
        ]
        helper = [
            f for f in bad_report.findings
            if f.path == "serve/bad_lock_helper.py" and f.line == 22
        ][0]
        assert "reached from the entry point" in helper.message

    def test_pragma_findings(self, bad_report):
        assert _locations(bad_report, "obs/bad_pragma.py") == [
            ("pragma", 3),  # bare allow, no justification
            ("pragma", 4),  # unknown rule name
            ("pragma", 5),  # unknown verb
        ]

    def test_no_unexpected_findings(self, bad_report):
        expected_paths = {
            "netsim/bad_determinism.py",
            "runtime/bad_stage_purity.py",
            "nn/bad_hot_loop.py",
            "serve/bad_async.py",
            "serve/bad_locks.py",
            "serve/bad_lock_helper.py",
            "obs/bad_pragma.py",
        }
        assert {f.path for f in bad_report.findings} == expected_paths
        assert bad_report.exit_code == 1

    def test_severities(self, bad_report):
        by_rule = {f.rule: f.severity for f in bad_report.findings}
        assert by_rule["hot-loop-alloc"] == "warning"
        for rule in (
            "determinism", "stage-purity", "async-blocking",
            "lock-discipline", "pragma",
        ):
            assert by_rule[rule] == "error"


class TestCleanFixtures:
    def test_zero_false_positives(self, clean_report):
        assert clean_report.findings == []
        assert clean_report.exit_code == 0

    def test_justified_suppression_is_counted_not_reported(self, clean_report):
        # clean/nn/clean_hot_loop.py carries one justified pool-miss allow.
        assert len(clean_report.suppressed) == 1
        finding, excuse = clean_report.suppressed[0]
        assert finding.rule == "hot-loop-alloc"
        assert "pool miss" in excuse.justification


def test_rule_subset_restricts_findings():
    report = run_lint(
        [FIXTURES / "bad"], rule_names=["determinism"], use_baseline=False
    )
    assert report.findings
    assert {f.rule for f in report.findings} == {"determinism"}


def test_unknown_rule_name_raises():
    with pytest.raises(ValueError, match="unknown lint rule"):
        run_lint([FIXTURES / "bad"], rule_names=["nope"], use_baseline=False)


def test_syntax_error_becomes_parse_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    report = run_lint([tmp_path], use_baseline=False)
    assert [f.rule for f in report.findings] == ["parse"]
    assert report.exit_code == 1
