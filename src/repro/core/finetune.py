"""Fine-tuning: new environments and new tasks (§3-§4).

Two axes, mirroring the paper's experiments:

* **What is trained** — ``decoder_only`` freezes the pre-trained
  embedding/aggregation/encoder and trains just the small decoder
  (Table 2's "Decoder only"); ``full`` trains everything ("Full NTT",
  also used for from-scratch runs).
* **Which task** — ``delay`` keeps the pre-training decoder family;
  ``mct`` swaps in the :class:`~repro.core.decoders.MCTDecoder`
  ("predicting message completion times"), a genuinely new task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import evaluate_delay, evaluate_mct
from repro.core.features import FeaturePipeline
from repro.core.model import NTTConfig, NTTForDelay, NTTForMCT
from repro.core.pretrain import TrainSettings, _delay_forward, make_delay_loaders
from repro.datasets.generation import DatasetBundle
from repro.datasets.windows import WindowDataset
from repro.nn import fastpath
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.losses import mse_loss
from repro.nn.module import freeze_parameters
from repro.nn.optim import Adam
from repro.nn.schedule import warmup_cosine
from repro.nn.trainer import Trainer, TrainingHistory
from repro.utils.rng import RngFactory

__all__ = [
    "FinetuneResult",
    "FinetuneMode",
    "finetune_delay",
    "finetune_mct",
    "train_delay_from_scratch",
    "train_mct_from_scratch",
]


class FinetuneMode:
    """Which parameters fine-tuning updates."""

    DECODER_ONLY = "decoder_only"
    FULL = "full"

    ALL = (DECODER_ONLY, FULL)


@dataclass
class FinetuneResult:
    """Outcome of a fine-tuning (or from-scratch) run."""

    model: object
    history: TrainingHistory
    test_mse: float
    mode: str
    task: str

    @property
    def training_time(self) -> float:
        """Wall-clock training seconds (Table 2/3's "Training time")."""
        return self.history.wall_time

    @property
    def test_mse_scaled(self) -> float:
        """MSE in the paper's ×10⁻³ display convention."""
        return self.test_mse * 1e3


def _select_parameters(model, mode: str):
    if mode == FinetuneMode.DECODER_ONLY:
        return model.decoder.parameters()
    if mode == FinetuneMode.FULL:
        return model.parameters()
    raise ValueError(f"unknown fine-tuning mode {mode!r}; pick from {FinetuneMode.ALL}")


def _freeze_hook(model, mode: str):
    """Keep the frozen encoder's dropout off during decoder-only runs."""
    if mode != FinetuneMode.DECODER_ONLY:
        return None

    def hook():
        model.ntt.eval()

    return hook


def finetune_delay(
    model: NTTForDelay,
    pipeline: FeaturePipeline,
    bundle: DatasetBundle,
    settings: TrainSettings | None = None,
    mode: str = FinetuneMode.DECODER_ONLY,
    verbose: bool = False,
    precision: str = "float64",
) -> FinetuneResult:
    """Fine-tune a (pre-trained) delay model on a new environment.

    The encoder's knowledge transfers; the decoder adapts ("update or
    replace the decoder to adapt NTT to a new environment", §3).

    ``precision="float32"`` casts the model and runs the whole
    fine-tune in float32; the float64 default is bit-compatible with
    the pre-precision-policy behaviour.
    """
    settings = settings if settings is not None else TrainSettings()
    # Unconditional cast: the base model may arrive in either dtype (a
    # float32-pretrained model is float32 in-process but hydrates from
    # the artifact store as float64 with identical values), so pinning
    # it to the declared precision keeps the fine-tune trajectory a
    # function of the cache key alone.
    model.cast_parameters(fastpath.resolve_dtype(precision))
    train_loader, val_loader = make_delay_loaders(pipeline, bundle.train, bundle.val, settings)
    total_steps = max(len(train_loader) * settings.epochs, 2)
    trainer = Trainer(
        model,
        Adam(_select_parameters(model, mode), lr=settings.lr),
        mse_loss,
        forward_fn=_delay_forward,
        grad_clip=settings.grad_clip,
        schedule=warmup_cosine(max(1, int(total_steps * settings.warmup_fraction)), total_steps),
        on_epoch_start=_freeze_hook(model, mode),
        precision=precision,
    )
    history = _fit_with_mode(trainer, model, mode, train_loader, val_loader, settings, verbose)
    with fastpath.precision(precision):
        test_mse = evaluate_delay(model, pipeline, bundle.test)
    return FinetuneResult(model, history, test_mse, mode=mode, task="delay")


def _fit_with_mode(trainer, model, mode, train_loader, val_loader, settings, verbose):
    """Run training; decoder-only mode freezes the encoder so backward
    passes stop at the decoder (the Table 2 compute saving)."""
    if mode == FinetuneMode.DECODER_ONLY:
        with freeze_parameters(model.ntt):
            return trainer.fit(
                train_loader, val_loader, epochs=settings.epochs,
                patience=settings.patience, verbose=verbose,
            )
    return trainer.fit(
        train_loader, val_loader, epochs=settings.epochs,
        patience=settings.patience, verbose=verbose,
    )


def train_delay_from_scratch(
    config: NTTConfig,
    pipeline: FeaturePipeline,
    bundle: DatasetBundle,
    settings: TrainSettings | None = None,
    verbose: bool = False,
    precision: str = "float64",
) -> FinetuneResult:
    """The paper's "from scratch" comparison: a fresh NTT trained only
    on the fine-tuning dataset (full model, no pre-training)."""
    with fastpath.precision(precision):
        model = NTTForDelay(config)
    return finetune_delay(
        model, pipeline, bundle, settings=settings, mode=FinetuneMode.FULL,
        verbose=verbose, precision=precision,
    )


# -- MCT task ------------------------------------------------------------------


def _mct_forward(model, batch):
    features, receiver, size, target = batch
    return model(features, receiver.astype(np.int64), size), target


def make_mct_loaders(
    pipeline: FeaturePipeline,
    train: WindowDataset,
    val: WindowDataset,
    settings: TrainSettings,
) -> tuple[DataLoader, DataLoader]:
    """Loaders of ``(features, receiver, message_size, log_mct_target)``.

    Only windows with completed messages are usable for this task.
    """
    train = train.with_completed_messages_only()
    val = val.with_completed_messages_only()
    rng = RngFactory(settings.seed).derive("mct-loader")
    train_ds = ArrayDataset(
        pipeline.transform_features(train),
        train.receiver,
        pipeline.transform_message_size(train),
        pipeline.transform_mct_target(train),
    )
    val_ds = ArrayDataset(
        pipeline.transform_features(val),
        val.receiver,
        pipeline.transform_message_size(val),
        pipeline.transform_mct_target(val),
    )
    return (
        DataLoader(train_ds, settings.batch_size, shuffle=True, rng=rng, reuse_buffers=True),
        DataLoader(val_ds, max(settings.batch_size, 128), reuse_buffers=True),
    )


def finetune_mct(
    ntt_model,
    config: NTTConfig,
    pipeline: FeaturePipeline,
    bundle: DatasetBundle,
    settings: TrainSettings | None = None,
    mode: str = FinetuneMode.DECODER_ONLY,
    verbose: bool = False,
    precision: str = "float64",
) -> FinetuneResult:
    """Fine-tune to the *new task* of MCT prediction.

    ``ntt_model`` is either a pre-trained :class:`NTTForDelay` (its
    encoder is reused; the decoder is replaced) or a bare
    :class:`~repro.core.model.NTT`.
    """
    settings = settings if settings is not None else TrainSettings()
    encoder = ntt_model.ntt if isinstance(ntt_model, NTTForDelay) else ntt_model
    with fastpath.precision(precision):
        model = NTTForMCT(config, encoder, seed=settings.seed)
    # Unconditional cast: see finetune_delay — the encoder may arrive in
    # either dtype for the same cache key.
    model.cast_parameters(fastpath.resolve_dtype(precision))
    if not pipeline.mct_scaler.fitted:
        pipeline.fit_mct(bundle.train.with_completed_messages_only())
    train_loader, val_loader = make_mct_loaders(pipeline, bundle.train, bundle.val, settings)
    total_steps = max(len(train_loader) * settings.epochs, 2)
    trainer = Trainer(
        model,
        Adam(_select_parameters(model, mode), lr=settings.lr),
        mse_loss,
        forward_fn=_mct_forward,
        grad_clip=settings.grad_clip,
        schedule=warmup_cosine(max(1, int(total_steps * settings.warmup_fraction)), total_steps),
        on_epoch_start=_freeze_hook(model, mode),
        precision=precision,
    )
    history = _fit_with_mode(trainer, model, mode, train_loader, val_loader, settings, verbose)
    with fastpath.precision(precision):
        test_mse = evaluate_mct(model, pipeline, bundle.test)
    return FinetuneResult(model, history, test_mse, mode=mode, task="mct")


def train_mct_from_scratch(
    config: NTTConfig,
    pipeline: FeaturePipeline,
    bundle: DatasetBundle,
    settings: TrainSettings | None = None,
    verbose: bool = False,
    precision: str = "float64",
) -> FinetuneResult:
    """From-scratch MCT model: fresh encoder + MCT decoder, full training."""
    from repro.core.model import NTT

    with fastpath.precision(precision):
        encoder = NTT(config)
    return finetune_mct(
        encoder, config, pipeline, bundle, settings=settings, mode=FinetuneMode.FULL,
        verbose=verbose, precision=precision,
    )
