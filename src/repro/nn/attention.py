"""Multi-head scaled dot-product attention.

The mechanism behind Transformers (§2 of the paper): every output
position encodes its own information *and* its context, computed as a
weighted sum over all positions.  Cost is quadratic in sequence length —
the very reason the NTT aggregates packets before the encoder (§3).

The default forward is a fused kernel: head split, scaled scores,
masked softmax, context matmul and head merge collapse into one
autograd node whose backward replays the composite graph's arithmetic
exactly (bit-identical gradients).
:func:`repro.nn.fastpath.composite_ops` restores the original
node-per-op graph.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn import fastpath
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, masked_softmax

__all__ = ["MultiHeadAttention", "scaled_dot_product_attention"]


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """Attention(Q, K, V) = softmax(QKᵀ/√d) V.

    Args:
        query/key/value: tensors of shape ``(..., seq, d_head)``.
        mask: optional boolean array broadcastable to the attention
            matrix ``(..., seq_q, seq_k)``; True marks positions to hide.

    Returns:
        ``(output, weights)`` where weights are the attention
        probabilities (useful for inspection and tests).
    """
    d_head = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / math.sqrt(d_head))
    if fastpath.fused_ops_enabled():
        weights = masked_softmax(scores, mask)
    else:
        if mask is not None:
            scores = scores.masked_fill(mask, -1e9)
        weights = scores.softmax(axis=-1)
    return weights @ value, weights


def _merged_heads(stacked: np.ndarray, batch: int, seq: int, d_model: int) -> np.ndarray:
    """(batch, heads, seq, d_head) → a *private* (batch, seq, d_model).

    The transpose+reshape normally copies, but for degenerate shapes
    (one head, or a one-element sequence) the transposed array is still
    contiguous and ``reshape`` returns a view — of a pooled scratch
    buffer here, which a later same-shape forward would overwrite.
    Copy in exactly that case; the normal path keeps the plain reshape
    result (no extra allocation, identical to the composite graph's).
    """
    merged = stacked.transpose(0, 2, 1, 3).reshape(batch, seq, d_model)
    if merged.base is not None and np.shares_memory(merged, stacked):
        return merged.copy()
    return merged


def _merged_heads_owned(stacked: np.ndarray, batch: int, seq: int, d_model: int) -> np.ndarray:
    """Head merge for an array this backward owns: the view (when the
    reshape is expressible as strides) is safe — the result keeps its
    base alive — and preserves the composite graph's memory layout,
    which downstream reductions iterate in."""
    return stacked.transpose(0, 2, 1, 3).reshape(batch, seq, d_model)


def _fused_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    n_heads: int,
    mask: np.ndarray | None,
) -> tuple[Tensor, np.ndarray]:
    """The whole multi-head attention core as one autograd node.

    Input projections of shape ``(batch, seq, d_model)`` go in; the
    merged context ``(batch, seq, d_model)`` comes out, along with the
    attention probabilities ``(batch, heads, seq, seq)`` for optional
    recording.  Forward and backward perform the composite graph's numpy
    operations in its exact order (head split/merge views included), so
    results are bit-identical while ~15 graph nodes, their closures and
    their gradient-dict traffic disappear.
    """
    batch, seq, d_model = query.shape
    d_head = d_model // n_heads
    scale = 1.0 / math.sqrt(d_head)
    q4 = query.data.reshape(batch, seq, n_heads, d_head).transpose(0, 2, 1, 3)
    k4 = key.data.reshape(batch, seq, n_heads, d_head).transpose(0, 2, 1, 3)
    v4 = value.data.reshape(batch, seq, n_heads, d_head).transpose(0, 2, 1, 3)
    k_t = np.swapaxes(k4, -1, -2)
    scores = q4 @ k_t
    np.multiply(scores, scale, out=scores)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        scores[np.broadcast_to(mask, scores.shape)] = scores.dtype.type(-1e9)
    np.subtract(scores, scores.max(axis=-1, keepdims=True), out=scores)
    np.exp(scores, out=scores)
    weights = scores  # the scores buffer becomes the probabilities
    np.divide(weights, weights.sum(axis=-1, keepdims=True), out=weights)
    ctx4 = fastpath.scratch((batch, n_heads, seq, d_head), weights.dtype)
    np.matmul(weights, v4, out=ctx4)
    context = _merged_heads(ctx4, batch, seq, d_model)

    def backward(grad):
        # All batched intermediates live in pooled scratch buffers; only
        # the three merged gradients handed to the engine are fresh.
        gctx = grad.reshape(batch, seq, n_heads, d_head).transpose(0, 2, 1, 3)
        gweights = fastpath.scratch((batch, n_heads, seq, seq), grad.dtype)
        np.matmul(gctx, np.swapaxes(v4, -1, -2), out=gweights)
        # slot=3: stays live to the end, and with seq == d_head its shape
        # collides with ``gweights``/``tmp``/``gq4`` in slots 0-1.
        gv4 = fastpath.scratch((batch, n_heads, seq, d_head), grad.dtype, slot=3)
        np.matmul(np.swapaxes(weights, -1, -2), gctx, out=gv4)
        tmp = fastpath.scratch((batch, n_heads, seq, seq), grad.dtype, slot=1)
        np.multiply(gweights, weights, out=tmp)
        dot = tmp.sum(axis=-1, keepdims=True)
        np.subtract(gweights, dot, out=gweights)
        np.multiply(weights, gweights, out=gweights)  # softmax backward
        if mask is not None:
            # The composite masked_fill backward zeroed hidden scores
            # (this matters for fully-masked rows, whose probabilities
            # are uniform rather than zero).
            gweights[np.broadcast_to(mask, gweights.shape)] = 0.0
        np.multiply(gweights, scale, out=gweights)  # score-scaling backward
        gq4 = fastpath.scratch((batch, n_heads, seq, d_head), grad.dtype, slot=1)
        np.matmul(gweights, np.swapaxes(k_t, -1, -2), out=gq4)
        # Freshly owned, not pooled: the swapped layout makes the head
        # merge below a strided *view* for every shape, which must keep
        # its backing array alive past this backward call.
        gk_t = np.swapaxes(q4, -1, -2) @ gweights
        gk4 = np.swapaxes(gk_t, -1, -2)
        gq = _merged_heads(gq4, batch, seq, d_model)
        gk = _merged_heads_owned(gk4, batch, seq, d_model)
        gv = _merged_heads(gv4, batch, seq, d_model)
        return (gq, gk, gv)

    out = Tensor._from_op(context, (query, key, value), backward)
    return out, weights


class MultiHeadAttention(Module):
    """Standard multi-head attention with learned Q/K/V/output projections.

    Args:
        record_attention: keep a copy of the latest attention
            probabilities in :attr:`last_attention` after every forward.
            Off by default — the copy is a full ``(batch, heads, seq,
            seq)`` array per forward, a pure introspection cost the
            training loop should not pay.  Interpretability tooling
            (:mod:`repro.analysis.attention`) flips it on around its
            forward pass.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        record_attention: bool = False,
    ):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.w_query = Linear(d_model, d_model, rng)
        self.w_key = Linear(d_model, d_model, rng)
        self.w_value = Linear(d_model, d_model, rng)
        self.w_out = Linear(d_model, d_model, rng)
        self.dropout = Dropout(dropout, rng)
        self.record_attention = record_attention
        #: Attention weights of the latest recorded forward pass (numpy
        #: copy); ``None`` unless :attr:`record_attention` is enabled.
        self.last_attention: np.ndarray | None = None

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(batch, seq, d_model) → (batch, heads, seq, d_head)."""
        return x.reshape(batch, seq, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Self-attention over ``x`` of shape ``(batch, seq, d_model)``.

        ``mask`` is a boolean array broadcastable to
        ``(batch, heads, seq, seq)``; True hides a key position.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, seq, d_model), got shape {x.shape}")
        batch, seq, _ = x.shape
        if fastpath.fused_ops_enabled():
            context, weights = _fused_attention(
                self.w_query(x), self.w_key(x), self.w_value(x), self.n_heads, mask
            )
            self.last_attention = weights.copy() if self.record_attention else None
            return self.dropout(self.w_out(context))
        query = self._split_heads(self.w_query(x), batch, seq)
        key = self._split_heads(self.w_key(x), batch, seq)
        value = self._split_heads(self.w_value(x), batch, seq)
        context, weights = scaled_dot_product_attention(query, key, value, mask)
        self.last_attention = weights.data.copy() if self.record_attention else None
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.dropout(self.w_out(context))

    def __repr__(self) -> str:
        return f"MultiHeadAttention(d_model={self.d_model}, n_heads={self.n_heads})"
