"""Reproduction of *A New Hope for Network Model Generalization* (HotNets '22).

The package provides three layers plus one public facade:

* :mod:`repro.netsim` — a packet-level discrete-event network simulator
  (the ns-3 substitute) used to generate the paper's datasets (Fig. 4).
* :mod:`repro.nn` — a numpy-based autograd engine with the transformer
  building blocks (the PyTorch substitute).
* :mod:`repro.core` — the Network Traffic Transformer itself: feature
  extraction, multi-timescale aggregation, pre-training on masked delay
  prediction, fine-tuning, baselines and evaluation.
* :mod:`repro.api` — the single public surface: declarative
  :class:`~repro.api.ExperimentSpec`\\ s, the pluggable scenario
  registry, the content-addressed artifact store and the batched
  :class:`~repro.api.Predictor`.

Quickstart::

    from repro.api import Experiment, ExperimentSpec

    exp = Experiment(ExperimentSpec(scenario="pretrain", scale="smoke"))
    result = exp.pretrained()          # cached in the artifact store
    print(result.test_mse_seconds2)

    predictor = exp.predictor()        # batched serving facade
    test = exp.bundle().test
    delays = predictor.predict(test.features, test.receiver)
"""

from repro.version import __version__

__all__ = ["__version__"]
