#!/usr/bin/env python
"""Case 2: generalizing to a larger topology (Table 3).

The bottleneck now fans out to several receivers over paths with
different propagation delays and different cross-traffic levels.  The
example shows (i) the per-receiver delay structure in the raw traces,
(ii) that fine-tuning a pre-trained NTT adapts to the new topology, and
(iii) that receiver IDs are what lets it tell the paths apart.

Run::

    python examples/larger_topology.py
    python examples/larger_topology.py --scale small
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import (
    Experiment,
    ExperimentSpec,
    FeatureSpec,
    FinetuneMode,
    finetune_delay,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    args = parser.parse_args()

    exp = Experiment(ExperimentSpec(scenario="case2", scale=args.scale))
    scale = exp.scale

    print("== Raw case-2 trace: per-receiver delay structure")
    trace = exp.traces()[0]
    for receiver in sorted(set(trace.receiver_id.tolist())):
        delays = trace.delay[trace.receiver_id == receiver] * 1e3
        print(
            f"   receiver {receiver}: {delays.size:6d} packets, "
            f"mean {delays.mean():6.2f} ms, p99 {np.percentile(delays, 99):6.2f} ms"
        )

    print("== Pre-training on the simple topology, fine-tuning on case 2")
    finetuned = exp.finetuned(task="delay", mode=FinetuneMode.FULL)
    print(f"   fine-tuned delay MSE: {finetuned.test_mse_scaled:.4f} x1e-3 s^2")

    print("== Ablation: the same pipeline without receiver IDs")
    case2 = exp.bundle()
    no_rx = exp.pretrain_variant(features=FeatureSpec.without_receiver())
    no_rx_finetuned = finetune_delay(
        no_rx.model, no_rx.pipeline, case2,
        settings=scale.finetune_settings, mode=FinetuneMode.FULL,
    )
    print(f"   without addressing:   {no_rx_finetuned.test_mse_scaled:.4f} x1e-3 s^2")
    print(
        "   -> receiver identity matters once paths differ "
        "(paper: 2.8 vs 0.004 x1e-3)"
    )


if __name__ == "__main__":
    main()
