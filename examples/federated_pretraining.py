#!/usr/bin/env python
"""Collaborative pre-training with federated averaging (§5).

Three "organisations" each simulate their own private traffic (different
seeds — think different vantage points of similar networks) and never
share packets.  Each FedAvg round they train locally and share only
model weights; the server averages them into a collective NTT.

Run::

    python examples/federated_pretraining.py
    python examples/federated_pretraining.py --rounds 3 --clients 4
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.api import (
    Experiment,
    ExperimentSpec,
    FeaturePipeline,
    FederatedTrainer,
    evaluate_delay,
    generate_dataset,
    pretrain,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small"])
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=2)
    args = parser.parse_args()

    exp = Experiment(ExperimentSpec(scenario="pretrain", scale=args.scale))
    scale = exp.scale

    print(f"== Simulating {args.clients} private datasets (never shared)")
    clients = []
    for index in range(args.clients):
        scenario = replace(exp.spec.scenario_config(), seed=100 + index)
        bundle = generate_dataset(
            scenario, window_config=scale.window, n_runs=1, name=f"org-{index}"
        )
        clients.append(bundle)
        print(f"   org-{index}: {bundle.n_packets} packets, {len(bundle.train)} train windows")

    print(f"== Running {args.rounds} FedAvg rounds (weights cross, packets don't)")
    trainer = FederatedTrainer(
        scale.model_config(), clients, settings=scale.pretrain_settings
    )
    for outcome in trainer.run(args.rounds):
        losses = ", ".join(f"{loss:.4f}" for loss in outcome.client_losses)
        print(
            f"   round {outcome.round_index}: client losses [{losses}] "
            f"global test MSE {outcome.global_test_mse * 1e3:.4f} x1e-3"
        )

    print("== Comparing the collective model against a single-org model")
    solo_pipeline = FeaturePipeline().fit(clients[0].train)
    solo = pretrain(
        scale.model_config(), clients[0],
        settings=scale.pretrain_settings, pipeline=solo_pipeline,
    )
    # Evaluate both on a fresh, unseen organisation's traffic.
    held_out = generate_dataset(
        replace(exp.spec.scenario_config(), seed=999),
        window_config=scale.window, n_runs=1, name="held-out-org",
    )
    federated_mse = evaluate_delay(trainer.global_model, trainer.pipeline, held_out.test)
    solo_mse = evaluate_delay(solo.model, solo.pipeline, held_out.test)
    print(f"   federated model on unseen org: {federated_mse * 1e3:.4f} x1e-3")
    print(f"   single-org model on unseen org: {solo_mse * 1e3:.4f} x1e-3")


if __name__ == "__main__":
    main()
