"""Transformer encoder blocks.

Pre-LayerNorm residual blocks (GPT-2/ViT style): normalisation inside
the residual branch keeps gradients well-behaved without the LR warmup
gymnastics the original post-LN transformer needs — important here
because training runs are short.
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, GELU, Linear, Sequential
from repro.nn.module import Module, ModuleList
from repro.nn.norm import LayerNorm
from repro.nn.tensor import Tensor

__all__ = ["TransformerEncoderLayer", "TransformerEncoder"]


class TransformerEncoderLayer(Module):
    """One encoder block: self-attention + position-wise feed-forward,
    each wrapped in a pre-LN residual connection."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        d_ff: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.norm_attention = LayerNorm(d_model)
        self.attention = MultiHeadAttention(d_model, n_heads, rng, dropout=dropout)
        self.norm_ff = LayerNorm(d_model)
        self.feed_forward = Sequential(
            Linear(d_model, d_ff, rng),
            GELU(),
            Linear(d_ff, d_model, rng),
        )
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attention(self.norm_attention(x), mask=mask)
        x = x + self.dropout(self.feed_forward(self.norm_ff(x)))
        return x


class TransformerEncoder(Module):
    """A stack of encoder layers with a final LayerNorm."""

    def __init__(
        self,
        n_layers: int,
        d_model: int,
        n_heads: int,
        d_ff: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        if n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {n_layers}")
        self.layers = ModuleList(
            TransformerEncoderLayer(d_model, n_heads, d_ff, rng, dropout=dropout)
            for _ in range(n_layers)
        )
        self.final_norm = LayerNorm(d_model)
        self.d_model = d_model

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return self.final_norm(x)

    def __repr__(self) -> str:
        return (
            f"TransformerEncoder(layers={len(self.layers)}, d_model={self.d_model})"
        )
