"""The paper's dataset-generation setups (Fig. 4).

Three scenarios:

* **pretrain** — N senders share one bottleneck toward a single receiver
  (the paper: 60 senders x 1 Mbps of messages, 30 Mbps bottleneck,
  1000-packet queue, 10 one-minute runs with randomized start times).
* **case 1** — same topology plus TCP cross-traffic through the
  bottleneck (paper: 20 Mbps of TCP flows).  Cross-traffic packets are
  not traced.
* **case 2** — larger topology: the bottleneck fans out to several
  receivers over links with different propagation delays, each congested
  by its own cross-traffic, so "packets toward different receivers
  experience different path delays and different levels of congestion".

Scaled-down presets (:meth:`ScenarioConfig.small`, ``smoke``) keep CPU
runtimes sane; :meth:`ScenarioConfig.paper` restores the published
parameters.

A note on offered load: the paper's 60x1 Mbps over a 30 Mbps bottleneck
is a 2x overload, which keeps the drop-tail queue pegged near its limit.
The scaled presets default to ~0.9x load so the queue oscillates between
empty and full — richer dynamics per simulated second, which matters
when the trace budget is small.  ``load_factor`` exposes the knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace  # noqa: F401 (replace used by callers)

import numpy as np

import repro.obs as obs
from repro.netsim import reference
from repro.netsim.apps import MessageSource, PacketSink
from repro.netsim.core import Simulator
from repro.netsim.node import Node
from repro.netsim.tcp import install_tcp_flow
from repro.netsim.topology import Network
from repro.netsim.trace import Trace, TraceCollector
from repro.netsim.units import mbps, milliseconds
from repro.netsim.workloads import HomaLikeMessageSizes, MessageSizeDistribution
from repro.utils.rng import RngFactory

__all__ = ["ScenarioConfig", "ScenarioKind", "build_scenario", "run_scenario", "generate_traces"]

#: Flow-id blocks (message flows and cross-traffic flows never collide).
MESSAGE_FLOW_BASE = 1_000
CROSS_FLOW_BASE = 2_000


class ScenarioKind:
    """The three Fig. 4 setups."""

    PRETRAIN = "pretrain"
    CASE1 = "case1"
    CASE2 = "case2"

    ALL = (PRETRAIN, CASE1, CASE2)


@dataclass
class ScenarioConfig:
    """All knobs of a Fig. 4 scenario.

    The defaults correspond to the ``small`` preset; classmethods build
    the published and smoke-test variants.
    """

    kind: str = ScenarioKind.PRETRAIN
    n_senders: int = 10
    sender_load_bps: float = mbps(1.7)
    bottleneck_rate_bps: float = mbps(20)
    bottleneck_queue_packets: int = 200
    bottleneck_delay: float = milliseconds(5)
    access_rate_bps: float = mbps(25)
    access_delay: float = milliseconds(1)
    access_queue_packets: int = 4_000
    duration: float = 8.0
    seed: int = 0
    mtu_bytes: int = 1_500
    # Cross traffic (cases 1 and 2).
    cross_traffic_bps: float = 0.0
    n_cross_flows: int = 0
    # Larger topology (case 2).
    n_receivers: int = 1
    receiver_delays: tuple = ()
    receiver_rate_bps: float = mbps(20)
    receiver_queue_packets: int = 100
    per_receiver_cross_flows: int = 0
    # Workload distribution; None selects the Homa-like default.
    workload: MessageSizeDistribution | None = None
    # Application start times are drawn from [0, start_jitter].
    start_jitter: float = 0.5
    # Bottleneck queueing discipline: "droptail" (the paper's setup) or
    # "red" — §5 motivates testing the NTT across queueing disciplines.
    bottleneck_discipline: str = "droptail"

    def __post_init__(self):
        if self.kind not in ScenarioKind.ALL:
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if self.n_senders <= 0:
            raise ValueError("need at least one sender")
        if self.kind == ScenarioKind.CASE2 and self.n_receivers < 2:
            raise ValueError("case 2 requires several receivers")
        if self.kind != ScenarioKind.CASE2 and self.n_receivers != 1:
            raise ValueError(f"{self.kind} uses a single receiver")
        if self.bottleneck_discipline not in ("droptail", "red"):
            raise ValueError(
                f"unknown bottleneck discipline {self.bottleneck_discipline!r};"
                " choose 'droptail' or 'red'"
            )

    # -- presets -------------------------------------------------------------

    @classmethod
    def small(cls, kind: str = ScenarioKind.PRETRAIN, seed: int = 0) -> "ScenarioConfig":
        """CPU-friendly preset used by tests and default benchmarks."""
        if kind == ScenarioKind.CASE1:
            return cls(kind=kind, seed=seed, cross_traffic_bps=mbps(8), n_cross_flows=2)
        if kind == ScenarioKind.CASE2:
            return cls(
                kind=kind,
                seed=seed,
                cross_traffic_bps=mbps(8),
                n_cross_flows=2,
                n_receivers=3,
                receiver_delays=(milliseconds(1), milliseconds(4), milliseconds(10)),
                per_receiver_cross_flows=1,
            )
        return cls(kind=kind, seed=seed)

    @classmethod
    def smoke(cls, kind: str = ScenarioKind.PRETRAIN, seed: int = 0) -> "ScenarioConfig":
        """Tiny preset for fast unit tests."""
        base = cls.small(kind=kind, seed=seed)
        return replace(base, n_senders=4, sender_load_bps=mbps(3.5), duration=1.5)

    @classmethod
    def paper(cls, kind: str = ScenarioKind.PRETRAIN, seed: int = 0) -> "ScenarioConfig":
        """The published Fig. 4 parameters (expensive on CPU)."""
        base = dict(
            kind=kind,
            n_senders=60,
            sender_load_bps=mbps(1),
            bottleneck_rate_bps=mbps(30),
            bottleneck_queue_packets=1_000,
            duration=60.0,
            seed=seed,
            start_jitter=1.0,
        )
        if kind == ScenarioKind.CASE1:
            return cls(**base, cross_traffic_bps=mbps(20), n_cross_flows=4)
        if kind == ScenarioKind.CASE2:
            return cls(
                **base,
                cross_traffic_bps=mbps(20),
                n_cross_flows=4,
                n_receivers=4,
                receiver_delays=(
                    milliseconds(1),
                    milliseconds(3),
                    milliseconds(6),
                    milliseconds(12),
                ),
                receiver_rate_bps=mbps(30),
                receiver_queue_packets=500,
                per_receiver_cross_flows=1,
            )
        return cls(**base)


@dataclass
class ScenarioHandle:
    """Everything built for one scenario run."""

    config: ScenarioConfig
    sim: Simulator
    network: Network
    collector: TraceCollector
    senders: list[MessageSource]
    sinks: list[PacketSink]
    receivers: list[Node]
    bottleneck_channel: object
    cross_senders: list = field(default_factory=list)

    def run(self) -> Trace:
        """Start all applications, run to the configured duration, and
        return the finalized trace.

        When ``repro.obs`` is enabled the run publishes its
        :class:`~repro.netsim.core.SimStats` and event totals to the
        shared registry and records one completed span — all end-of-run
        work, so the per-event hot loop carries no instrumentation
        (attach an :class:`~repro.netsim.profiler.EventLoopProfiler`
        for per-handler accounting).
        """
        started = time.perf_counter()
        for sender in self.senders:
            sender.start()
        for cross in self.cross_senders:
            cross.start()
        self.sim.run(until=self.config.duration)
        trace = self.collector.finalize()
        if obs.enabled():
            registry = obs.metrics()
            kind = self.config.kind
            registry.counter("netsim.runs_total", scenario=kind).inc()
            registry.counter("netsim.events_total", scenario=kind).inc(
                self.sim.events_processed
            )
            registry.counter("netsim.packets_total", scenario=kind).inc(len(trace))
            stats = self.sim.stats
            registry.counter("netsim.packets_dropped_total", scenario=kind).inc(
                stats.packets_dropped
            )
            registry.counter("netsim.bytes_dropped_total", scenario=kind).inc(
                stats.bytes_dropped
            )
            seconds = time.perf_counter() - started
            registry.histogram("netsim.run_seconds").observe(seconds)
            tracer = obs.tracer()
            tracer.add_span(
                "netsim.run",
                tracer.now_us() - seconds * 1e6,
                seconds * 1e6,
                scenario=kind,
                seed=self.config.seed,
                events=self.sim.events_processed,
                packets=len(trace),
                packets_dropped=stats.packets_dropped,
            )
        return trace


def build_scenario(config: ScenarioConfig, run_index: int = 0) -> ScenarioHandle:
    """Construct the network, applications and collectors for one run.

    ``run_index`` seeds per-run randomness (application start times and
    workload draws), reproducing the paper's "10 simulations ... with
    randomized application start times".
    """
    rng_factory = RngFactory(config.seed)
    if reference.fast_path_enabled():
        sim = Simulator()
        collector = TraceCollector()
    else:
        # Golden-test / benchmark baseline: the pre-PR stack.
        sim = reference.ReferenceSimulator()
        collector = reference.ReferenceTraceCollector()
    net = Network(sim)

    left_switch = net.add_node("switch-left")
    right_switch = net.add_node("switch-right")
    bottleneck = net.add_link(
        left_switch,
        right_switch,
        rate_bps=config.bottleneck_rate_bps,
        propagation_delay=config.bottleneck_delay,
        queue_packets=config.bottleneck_queue_packets,
        queue_factory=_bottleneck_queue_factory(config, rng_factory, run_index),
    )

    receivers = _build_receivers(net, right_switch, config)
    sender_hosts = []
    for index in range(config.n_senders):
        host = net.add_node(f"sender-{index}")
        net.add_link(
            host,
            left_switch,
            rate_bps=config.access_rate_bps,
            propagation_delay=config.access_delay,
            queue_packets=config.access_queue_packets,
        )
        sender_hosts.append(host)

    cross_hosts, cross_sinks = _build_cross_hosts(net, left_switch, right_switch, config)

    net.compute_routes()

    sinks = []
    for receiver in receivers:
        sink = PacketSink(sim, receiver, collector)
        sink.install_default()
        sinks.append(sink)

    workload = config.workload if config.workload is not None else HomaLikeMessageSizes()
    senders = []
    for index, host in enumerate(sender_hosts):
        rng = rng_factory.derive(f"run{run_index}-sender{index}")
        start_time = float(rng.uniform(0.0, config.start_jitter))
        source = MessageSource(
            sim,
            host,
            destinations=receivers,
            flow_id=MESSAGE_FLOW_BASE + index,
            offered_load_bps=config.sender_load_bps,
            size_distribution=workload,
            rng=rng,
            start_time=start_time,
            stop_time=config.duration,
            mtu_bytes=config.mtu_bytes,
        )
        senders.append(source)

    cross_senders = _install_cross_traffic(
        sim, cross_hosts, cross_sinks, receivers, rng_factory, run_index, config
    )

    return ScenarioHandle(
        config=config,
        sim=sim,
        network=net,
        collector=collector,
        senders=senders,
        sinks=sinks,
        receivers=receivers,
        bottleneck_channel=bottleneck.forward,
        cross_senders=cross_senders,
    )


def _bottleneck_queue_factory(config: ScenarioConfig, rng_factory: RngFactory, run_index: int):
    """Queue constructor for the bottleneck link, per the configured
    discipline.  Returns None for plain drop-tail (the Link default)."""
    if config.bottleneck_discipline == "droptail":
        return None
    from repro.netsim.queues import REDQueue

    rng = rng_factory.derive(f"run{run_index}-red")

    def make_queue(capacity: int) -> REDQueue:
        return REDQueue(capacity, rng=rng)

    return make_queue


def _build_receivers(net: Network, right_switch: Node, config: ScenarioConfig) -> list[Node]:
    """Attach receiver hosts behind the bottleneck.

    The single-receiver cases hang one host off the right switch over a
    fast link; case 2 uses one link per receiver with heterogeneous
    propagation delays and tighter queues (secondary congestion points).
    """
    receivers = []
    if config.kind == ScenarioKind.CASE2:
        delays = config.receiver_delays or tuple(
            milliseconds(1 + 3 * index) for index in range(config.n_receivers)
        )
        if len(delays) != config.n_receivers:
            raise ValueError("receiver_delays length must match n_receivers")
        for index in range(config.n_receivers):
            receiver = net.add_node(f"receiver-{index}")
            net.add_link(
                receiver,
                right_switch,
                rate_bps=config.receiver_rate_bps,
                propagation_delay=delays[index],
                queue_packets=config.receiver_queue_packets,
            )
            receivers.append(receiver)
    else:
        receiver = net.add_node("receiver-0")
        net.add_link(
            receiver,
            right_switch,
            rate_bps=config.bottleneck_rate_bps * 4,
            propagation_delay=config.access_delay,
            queue_packets=config.access_queue_packets,
        )
        receivers.append(receiver)
    return receivers


def _build_cross_hosts(
    net: Network, left_switch: Node, right_switch: Node, config: ScenarioConfig
) -> tuple[list[Node], list[Node]]:
    """Create cross-traffic source and sink hosts (cases 1 and 2)."""
    cross_hosts: list[Node] = []
    cross_sinks: list[Node] = []
    if config.n_cross_flows <= 0:
        return cross_hosts, cross_sinks
    per_flow_rate = config.cross_traffic_bps / config.n_cross_flows
    for index in range(config.n_cross_flows):
        src = net.add_node(f"cross-src-{index}")
        # The access link caps each flow's rate at its share of the
        # configured aggregate, like the paper's "20 Mbps of TCP flows".
        net.add_link(
            src,
            left_switch,
            rate_bps=per_flow_rate,
            propagation_delay=config.access_delay,
            queue_packets=config.access_queue_packets,
        )
        sink = net.add_node(f"cross-dst-{index}")
        net.add_link(
            sink,
            right_switch,
            rate_bps=config.bottleneck_rate_bps * 4,
            propagation_delay=config.access_delay,
            queue_packets=config.access_queue_packets,
        )
        cross_hosts.append(src)
        cross_sinks.append(sink)
    return cross_hosts, cross_sinks


def _install_cross_traffic(
    sim: Simulator,
    cross_hosts: list[Node],
    cross_sinks: list[Node],
    receivers: list[Node],
    rng_factory: RngFactory,
    run_index: int,
    config: ScenarioConfig,
) -> list:
    """Start long-lived TCP flows: through the bottleneck, and (case 2)
    additionally toward each receiver to congest its access link."""
    cross_senders = []
    flow_id = CROSS_FLOW_BASE
    for src, sink in zip(cross_hosts, cross_sinks):
        rng = rng_factory.derive(f"run{run_index}-cross{flow_id}")
        sender, _receiver = install_tcp_flow(
            sim,
            src,
            sink,
            flow_id=flow_id,
            mss_bytes=config.mtu_bytes,
            start_time=float(rng.uniform(0.0, config.start_jitter)),
        )
        cross_senders.append(sender)
        flow_id += 1
    if config.kind == ScenarioKind.CASE2 and config.per_receiver_cross_flows > 0 and cross_hosts:
        for receiver_index, receiver in enumerate(receivers):
            for _ in range(config.per_receiver_cross_flows):
                src = cross_hosts[receiver_index % len(cross_hosts)]
                rng = rng_factory.derive(f"run{run_index}-rxcross{flow_id}")
                sender, _receiver = install_tcp_flow(
                    sim,
                    src,
                    receiver,
                    flow_id=flow_id,
                    mss_bytes=config.mtu_bytes,
                    start_time=float(rng.uniform(0.0, config.start_jitter)),
                )
                cross_senders.append(sender)
                flow_id += 1
    return cross_senders


def run_scenario(config: ScenarioConfig, run_index: int = 0) -> Trace:
    """Build and run one scenario instance, returning its trace."""
    return build_scenario(config, run_index).run()


def generate_traces(config: ScenarioConfig, n_runs: int = 1) -> list[Trace]:
    """Run ``n_runs`` independent simulations (the paper runs 10).

    Each run derives fresh application start times and workload draws
    from ``(config.seed, run_index)``; traces are kept separate so
    training windows never straddle run boundaries.
    """
    if n_runs <= 0:
        raise ValueError(f"n_runs must be positive, got {n_runs}")
    return [run_scenario(config, run_index) for run_index in range(n_runs)]
