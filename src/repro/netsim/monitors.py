"""Telemetry monitors.

The paper's future-work section (§5) discusses collecting telemetry such
as buffer occupancy alongside traces.  These monitors sample simulator
state periodically; they are used by tests, examples and the Fig. 4
trace-statistics benchmark.

Monitors are pull-based by design: links and queues maintain their own
slotted counters (plus the simulation-wide
:class:`~repro.netsim.core.SimStats` threaded through them), so a
simulation with no monitor installed pays zero per-packet telemetry
cost, and an installed monitor costs one event per sampling interval —
scheduled through the simulator's fire-and-forget fast path — rather
than a callback per packet.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.core import Simulator
from repro.netsim.link import Channel

__all__ = ["QueueMonitor", "ThroughputMonitor"]


class QueueMonitor:
    """Samples a channel's queue occupancy every ``interval`` seconds."""

    def __init__(self, sim: Simulator, channel: Channel, interval: float = 0.01):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.channel = channel
        self.interval = float(interval)
        self.times: list[float] = []
        self.occupancy: list[int] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling (first sample taken immediately)."""
        if self._running:
            raise RuntimeError("QueueMonitor already started")
        self._running = True
        self._sample()

    def _sample(self) -> None:
        # The fast-path channel dequeues lazily; sync so the sampled
        # occupancy reflects the current simulation time.
        self.channel.sync_queue()
        self.times.append(self.sim.now)
        self.occupancy.append(self.channel.queue.occupancy)
        self.sim.post(self.interval, self._sample)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, occupancy)`` as numpy arrays."""
        return np.asarray(self.times), np.asarray(self.occupancy, dtype=np.int64)

    @property
    def mean_occupancy(self) -> float:
        return float(np.mean(self.occupancy)) if self.occupancy else 0.0

    @property
    def max_occupancy(self) -> int:
        return int(np.max(self.occupancy)) if self.occupancy else 0


class ThroughputMonitor:
    """Tracks bytes delivered through a channel per sampling window."""

    def __init__(self, sim: Simulator, channel: Channel, interval: float = 0.1):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.channel = channel
        self.interval = float(interval)
        self.times: list[float] = []
        self.throughput_bps: list[float] = []
        self._last_bytes = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            raise RuntimeError("ThroughputMonitor already started")
        self._running = True
        self._last_bytes = self.channel.completed_bytes_now()
        self.sim.post(self.interval, self._sample)

    def _sample(self) -> None:
        sent = self.channel.completed_bytes_now()
        delta = sent - self._last_bytes
        self._last_bytes = sent
        self.times.append(self.sim.now)
        self.throughput_bps.append(delta * 8.0 / self.interval)
        self.sim.post(self.interval, self._sample)

    @property
    def mean_throughput_bps(self) -> float:
        return float(np.mean(self.throughput_bps)) if self.throughput_bps else 0.0
