"""Built-in stage implementations, registered in the stage registry.

The eight stages that used to live in a private dictionary inside
:mod:`repro.runtime.worker` are now first-class
:class:`~repro.api.stages.Stage` plugins: the planner
(:mod:`repro.runtime.plan`) reads their kind/key/version from the
registry, the worker dispatches through it, and custom stages registered
with :func:`~repro.api.stages.register_stage` ride the exact same rails.

Every stage body has the signature ``run(experiment, inputs, params)``
and returns ``(cache_hit, result)`` where ``result`` is a flat JSON-able
dictionary (it crosses process boundaries and lands in the campaign
manifest).  ``inputs`` maps dependency task ids to their result
dictionaries; the built-in stages ignore it — heavy artifacts flow
through the content-addressed store, not the task graph — but custom
stages are free to consume it (see
:func:`~repro.api.stages.inputs_by_stage`).

All built-in stages carry ``version=0``: the seed version, which leaves
their cache keys exactly as before the stage API existed.  Bump a
stage's version after editing its code to invalidate that stage's
artifacts (and everything keyed off them) without touching the rest of
the cache.

The training stages accept a ``precision`` stage parameter
(``ExperimentSpec(stage_params={"pretrain": {"precision": "float32"}})``
and likewise for ``finetune``): the model trains in float32 for half
the matmul memory bandwidth, and the resulting checkpoints are cached
under precision-derived keys (:func:`repro.api.store.precision_key`) —
the float64 default leaves every key byte-identical.  The planner folds
the knob into task keys and the :class:`~repro.api.experiment.Experiment`
facade reads it from the spec, so planned and interactive runs stay in
lockstep.
"""

from __future__ import annotations

import numpy as np

from repro.api.stages import STAGE_REGISTRY, register_stage, versioned_key
from repro.api.store import bundle_key
from repro.core.baselines import evaluate_baselines
from repro.core.features import FeaturePipeline, FeatureSpec
from repro.core.finetune import train_delay_from_scratch, train_mct_from_scratch
from repro.netsim.scenarios import ScenarioKind, build_scenario, run_scenario
from repro.utils.stats import percentile_summary

__all__ = ["resolve_variant"]

#: Feature-ablation tokens (kept symbolic so task parameters stay JSON).
_FEATURE_VARIANTS = {
    "without_size": FeatureSpec.without_size,
    "without_delay": FeatureSpec.without_delay,
    "without_receiver": FeatureSpec.without_receiver,
}


def resolve_variant(scale, features: str | None, aggregation: str | None):
    """Symbolic ablation tokens → the concrete config objects.

    ``features`` names a :class:`FeatureSpec` ablation constructor;
    ``aggregation`` names an entry of ``scale.aggregation_variants``.
    """
    feature_spec = None
    if features is not None:
        try:
            feature_spec = _FEATURE_VARIANTS[features]()
        except KeyError:
            raise ValueError(
                f"unknown feature variant {features!r}; "
                f"choose from {sorted(_FEATURE_VARIANTS)}"
            ) from None
    aggregation_spec = None
    if aggregation is not None:
        try:
            aggregation_spec = scale.aggregation_variants[aggregation]
        except KeyError:
            raise ValueError(
                f"unknown aggregation variant {aggregation!r}; "
                f"choose from {sorted(scale.aggregation_variants)}"
            ) from None
    return feature_spec, aggregation_spec


# -- the standard pipeline --------------------------------------------------------
#
# Planning for these stages is bespoke (conditional dependencies, the
# pre-training receiver coupling, ablation variants): repro.runtime.plan
# orchestrates them as one chain (_plan_spec / _plan_dep) rather than
# through the generic per-entry planner, and custom stages may declare
# dependencies on 'traces' / 'bundle' / 'pretrain' / 'finetune' to pull
# that chain in.  The registry entries below own everything else:
# dispatch, kind, version, and the stage sets the shims derive from.


@register_stage(
    "traces",
    kind="traces",
    default=True,
    description="raw simulation traces for one scenario",
)
def _stage_traces(experiment, inputs, params):
    store, key = experiment.store, params["key"]
    n_runs = experiment.scale.n_runs
    if store is not None and store.has_traces(key, n_runs):
        # Cache hit: report run-set statistics straight from the
        # sidecar — no npz is loaded just for manifest bookkeeping.
        meta = store.trace_run_meta(key) or {}
        if "total_packets" in meta:
            return True, {
                "n_runs": n_runs,
                "total_packets": int(meta["total_packets"]),
            }
        traces = store.get_traces(key, n_runs)
        return True, {
            "n_runs": len(traces),
            "total_packets": int(sum(len(trace) for trace in traces)),
        }
    if store is None:
        traces = experiment.traces(params["scenario"])
        return False, {
            "n_runs": len(traces),
            "total_packets": int(sum(len(trace) for trace in traces)),
        }
    # Cache miss with a store: stream each run's columns straight to
    # disk as it is generated, instead of materialising the whole run
    # set in memory first.  The sidecar published last keeps partial
    # writes invisible to readers.
    config = experiment.spec.scenario_config(params["scenario"])
    total_packets = 0
    for run_index in range(n_runs):
        trace = run_scenario(config, run_index)
        store.put_trace_run(key, run_index, trace)
        total_packets += len(trace)
    store.finalize_trace_runs(key, n_runs, total_packets=total_packets)
    return False, {"n_runs": n_runs, "total_packets": total_packets}


@register_stage(
    "bundle",
    deps=("traces",),
    kind="bundles",
    default=True,
    description="windowed dataset bundle for one scenario",
)
def _stage_bundle(experiment, inputs, params):
    scenario = params["scenario"]
    store = experiment.store
    hit = False
    if store is not None:
        # The real key needs the pre-training receiver index, which the
        # dependency on the pre-training bundle has already produced.
        # Versioned exactly like the storage path (ExperimentContext
        # .bundle), so hit accounting tracks a stage-version bump.
        receiver_index = None
        if scenario != ScenarioKind.PRETRAIN:
            receiver_index = experiment.bundle(ScenarioKind.PRETRAIN).receiver_index
        key = versioned_key(
            "bundle",
            bundle_key(
                experiment.spec.scenario_config(scenario),
                experiment.scale.window,
                experiment.scale.n_runs,
                receiver_index,
            ),
        )
        hit = store.is_current("bundles", key)
    bundle = experiment.bundle(scenario)
    return hit, {
        "n_windows": bundle.n_windows,
        "n_packets": bundle.n_packets,
        "n_receivers": len(bundle.receiver_index),
    }


@register_stage(
    "pretrain",
    deps=("bundle",),
    kind="checkpoints",
    default=True,
    description="pre-train the shared NTT (or an ablated variant)",
)
def _stage_pretrain(experiment, inputs, params):
    store, key = experiment.store, params["key"]
    hit = store is not None and store.is_current("checkpoints", key)
    features, aggregation = resolve_variant(
        experiment.scale, params.get("features"), params.get("aggregation")
    )
    if features is None and aggregation is None:
        result = experiment.pretrained()
    else:
        result = experiment.pretrain_variant(features=features, aggregation=aggregation)
    return hit, {
        "test_mse_seconds2": result.test_mse_seconds2,
        "epochs_run": result.history.epochs_run,
        "train_wall_time_s": result.history.wall_time,
    }


def _summarise_finetune(result) -> dict:
    return {
        "test_mse": result.test_mse,
        "training_time_s": result.training_time,
        "mode": result.mode,
        "task": result.task,
    }


@register_stage(
    "finetune",
    deps=("pretrain", "bundle"),
    kind="checkpoints",
    default=True,
    description="fine-tune the pre-trained NTT on a target scenario",
)
def _stage_finetune(experiment, inputs, params):
    store, key = experiment.store, params["key"]
    hit = store is not None and store.is_current("checkpoints", key)
    features, aggregation = resolve_variant(
        experiment.scale, params.get("features"), params.get("aggregation")
    )
    result = experiment.finetuned(
        scenario=params["scenario"],
        task=params.get("task", "delay"),
        mode=params.get("mode", "decoder_only"),
        fraction=params.get("fraction"),
        features=features,
        aggregation=aggregation,
    )
    return hit, _summarise_finetune(result)


@register_stage(
    "scratch",
    deps=("pretrain", "bundle"),
    kind="checkpoints",
    sweepable=False,
    description="the paper's from-scratch rows (table planners only)",
)
def _stage_scratch(experiment, inputs, params):
    """The paper's from-scratch rows: full training, no pre-trained
    weights, but normalised by the pre-training pipeline."""
    store, key = experiment.store, params["key"]
    if store is not None and key is not None:
        cached = store.get_finetuned(key)
        if cached is not None:
            return True, _summarise_finetune(cached[0])
    task = params.get("task", "delay")
    pre = experiment.pretrained()
    bundle = experiment.bundle(params["scenario"])
    fraction = params.get("fraction")
    if fraction is not None:
        bundle = bundle.small_fraction(fraction)
    config = experiment.scale.model_config()
    settings = experiment.scale.finetune_settings
    if task == "delay":
        pipeline = pre.pipeline
        result = train_delay_from_scratch(config, pipeline, bundle, settings=settings)
    else:
        # Isolated MCT scaler, mirroring Experiment's fine-tune path.
        pipeline = FeaturePipeline()
        pipeline.feature_scaler = pre.pipeline.feature_scaler
        pipeline.message_size_scaler = pre.pipeline.message_size_scaler
        result = train_mct_from_scratch(config, pipeline, bundle, settings=settings)
    if store is not None and key is not None:
        store.put_finetuned(key, result, pipeline)
    return False, _summarise_finetune(result)


@register_stage(
    "baselines",
    deps=("bundle",),
    kind="evaluations",
    sweepable=False,
    description="naive baseline evaluations (table planners only)",
)
def _stage_baselines(experiment, inputs, params):
    store, key = experiment.store, params["key"]
    if store is not None and key is not None:
        cached = store.get_json("evaluations", key)
        if cached is not None:
            return True, cached
    rows = evaluate_baselines(experiment.bundle(params["scenario"]).test)
    payload = {"scenario": params["scenario"], "rows": rows}
    if store is not None and key is not None:
        store.put_json("evaluations", key, payload)
    return False, payload


@register_stage(
    "evaluate",
    deps=("finetune",),
    kind="evaluations",
    default=True,
    description="the spec's model vs. the naive baselines on its test set",
)
def _stage_evaluate(experiment, inputs, params):
    """Terminal sweep stage: the spec's model vs. the naive baselines on
    its scenario's held-out test set (cached as a JSON evaluation)."""
    store, key = experiment.store, params["key"]
    if store is not None and key is not None:
        cached = store.get_json("evaluations", key)
        if cached is not None:
            return True, cached
    scenario = params["scenario"]
    task = params.get("task", "delay")
    if scenario == ScenarioKind.PRETRAIN and task == "delay":
        predictor = experiment.predictor(scenario=scenario)
    else:
        predictor = experiment.predictor(
            scenario=scenario, task=task, mode=params.get("mode", "decoder_only")
        )
    test = experiment.bundle(scenario).test
    if task == "mct":
        test = test.with_completed_messages_only()
    predictions = predictor.predict_dataset(test)
    actual = np.log(test.mct_target) if task == "mct" else test.delay_target
    payload = {
        "scenario": scenario,
        "task": task,
        "n_test_windows": int(len(test)),
        "model_mse": float(np.mean((predictions - actual) ** 2)),
        "baselines": evaluate_baselines(test),
    }
    if store is not None and key is not None:
        store.put_json("evaluations", key, payload)
    return False, payload


@register_stage(
    "trace_stats",
    description="Fig. 4-style per-scenario trace statistics",
)
def _stage_trace_stats(experiment, inputs, params):
    """Fig. 4-style per-scenario trace statistics (always recomputed —
    this stage exists to measure the simulator itself)."""
    config = experiment.spec.scenario_config(params["scenario"])
    handle = build_scenario(config)
    trace = handle.run()
    delays = trace.delay
    summary = percentile_summary(delays * 1e3)
    per_receiver = {
        str(receiver): float(delays[trace.receiver_id == receiver].mean() * 1e3)
        for receiver in sorted(set(trace.receiver_id.tolist()))
    }
    return False, {
        "packets": len(trace),
        "messages": int(trace.is_message_end.sum()),
        "delay_mean_ms": summary.mean,
        "delay_p50_ms": summary.p50,
        "delay_p99_ms": summary.p99,
        "delay_p999_ms": summary.p999,
        # SimStats aggregates drops as they happen (threaded through
        # every queue), so no topology walk is needed here.
        "queue_drops": handle.sim.stats.packets_dropped,
        "per_receiver_mean_delay_ms": per_receiver,
        "events_processed": handle.sim.events_processed,
    }
