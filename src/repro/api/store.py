"""Content-addressed on-disk artifact store.

Simulation and pre-training dominate experiment wall time.  The store
keys every expensive artifact — raw traces, windowed
:class:`~repro.datasets.generation.DatasetBundle`\\ s and trained
checkpoints — by a stable content hash of everything that produced it,
so a repeated run hits disk instead of re-simulating or re-training.

Layout (one ``.npz`` per artifact)::

    <root>/traces/<key>-run<i>.npz
    <root>/bundles/<key>.npz
    <root>/checkpoints/<key>.npz

The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; writes
go through a temp file + rename so concurrent readers never observe a
partial artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.api.hashing import stable_hash
from repro.api.spec import (
    ntt_config_from_dict,
    ntt_config_to_dict,
    scenario_config_from_dict,
    scenario_config_to_dict,
    window_config_from_dict,
    window_config_to_dict,
)
from repro.core.features import FeaturePipeline
from repro.core.finetune import FinetuneResult
from repro.core.model import NTT, NTTForDelay, NTTForMCT
from repro.core.pretrain import PretrainResult
from repro.datasets.generation import DatasetBundle
from repro.datasets.normalize import FeatureScaler
from repro.datasets.windows import WindowDataset
from repro.netsim.trace import Trace
from repro.nn.serialize import load_state, save_checkpoint
from repro.nn.trainer import TrainingHistory

__all__ = [
    "ArtifactStore",
    "traces_key",
    "bundle_key",
    "pretrained_key",
    "finetuned_key",
]

#: Environment variable selecting the store root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

KINDS = ("traces", "bundles", "checkpoints")

_META_KEY = "__meta__"
_SPLITS = ("train", "val", "test")
_SPLIT_ARRAYS = (
    "features",
    "receiver",
    "delay_target",
    "mct_target",
    "message_size",
    "mct_seq",
    "end_seq",
)


# -- cache keys -------------------------------------------------------------------


def traces_key(scenario, n_runs: int) -> str:
    """Key for the raw traces of one scenario."""
    return stable_hash({"artifact": "traces", "scenario": scenario, "n_runs": n_runs})


def bundle_key(scenario, window, n_runs: int, receiver_index: dict | None = None) -> str:
    """Key for a windowed dataset bundle.

    ``receiver_index`` covers the cross-bundle coupling: fine-tuning
    bundles inherit the pre-training receiver identities, so a different
    pre-training setup must produce a different fine-tuning bundle.
    """
    return stable_hash(
        {
            "artifact": "bundle",
            "scenario": scenario,
            "window": window,
            "n_runs": n_runs,
            "receiver_index": receiver_index,
        }
    )


def pretrained_key(scenario, window, n_runs: int, model_config, settings) -> str:
    """Key for a pre-trained checkpoint."""
    return stable_hash(
        {
            "artifact": "pretrained",
            "scenario": scenario,
            "window": window,
            "n_runs": n_runs,
            "model": model_config,
            "settings": settings,
        }
    )


def finetuned_key(
    base_key: str, scenario, task: str, mode: str, fraction, settings
) -> str:
    """Key for a fine-tuned checkpoint derived from ``base_key``."""
    return stable_hash(
        {
            "artifact": "finetuned",
            "base": base_key,
            "scenario": scenario,
            "task": task,
            "mode": mode,
            "fraction": fraction,
            "settings": settings,
        }
    )


# -- (de)hydration helpers --------------------------------------------------------


def _scaler_to_dict(scaler: FeatureScaler) -> dict | None:
    return scaler.to_dict() if scaler.fitted else None


def _pipeline_to_dict(pipeline: FeaturePipeline) -> dict:
    return {
        "feature_scaler": _scaler_to_dict(pipeline.feature_scaler),
        "message_size_scaler": _scaler_to_dict(pipeline.message_size_scaler),
        "mct_scaler": _scaler_to_dict(pipeline.mct_scaler),
    }


def _pipeline_from_dict(payload: dict) -> FeaturePipeline:
    pipeline = FeaturePipeline()
    for name in ("feature_scaler", "message_size_scaler", "mct_scaler"):
        stored = payload.get(name)
        if stored is not None:
            setattr(pipeline, name, FeatureScaler.from_dict(stored))
    return pipeline


def _history_to_dict(history: TrainingHistory) -> dict:
    return {
        "train_loss": history.train_loss,
        "val_loss": history.val_loss,
        "lr": history.lr,
        "wall_time": history.wall_time,
        "epochs_run": history.epochs_run,
        "stopped_early": history.stopped_early,
    }


def _history_from_dict(payload: dict) -> TrainingHistory:
    return TrainingHistory(**payload)


class ArtifactStore:
    """Content-addressed cache of traces, bundles and checkpoints."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV)
        if root is None:
            root = Path.home() / ".cache" / "repro"
        self.root = Path(root)

    @classmethod
    def from_env(cls) -> "ArtifactStore":
        """The default store (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
        return cls()

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"

    # -- generic access ----------------------------------------------------------

    def path(self, kind: str, key: str) -> Path:
        """Where an artifact of this kind/key lives (existing or not)."""
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}; choose from {KINDS}")
        return self.root / kind / f"{key}.npz"

    def has(self, kind: str, key: str) -> bool:
        return self.path(kind, key).exists()

    def get(self, kind: str, key: str) -> Path | None:
        """The artifact's path if present, else ``None``."""
        path = self.path(kind, key)
        return path if path.exists() else None

    def keys(self, kind: str) -> list[str]:
        directory = self.root / kind
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}; choose from {KINDS}")
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.npz"))

    def summary(self) -> dict:
        """Per-kind entry counts and byte totals (for ``repro cache``)."""
        report = {}
        for kind in KINDS:
            directory = self.root / kind
            files = list(directory.glob("*.npz")) if directory.is_dir() else []
            report[kind] = {
                "count": len(files),
                "bytes": sum(path.stat().st_size for path in files),
            }
        return report

    def clear(self, kind: str | None = None) -> int:
        """Delete artifacts (of one kind, or all); returns files removed."""
        kinds = KINDS if kind is None else (kind,)
        removed = 0
        for name in kinds:
            if name not in KINDS:
                raise ValueError(f"unknown artifact kind {name!r}; choose from {KINDS}")
            directory = self.root / name
            if not directory.is_dir():
                continue
            for path in directory.glob("*.npz"):
                path.unlink()
                removed += 1
        return removed

    @staticmethod
    def _temp_path(path: Path) -> Path:
        # Keeps the .npz suffix: np.savez appends one otherwise.
        return path.with_name(f".tmp-{os.getpid()}-{path.name}")

    def _write_npz(self, path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = self._temp_path(path)
        try:
            with open(temp, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(temp, path)
        finally:
            if temp.exists():
                temp.unlink()

    # -- traces ------------------------------------------------------------------

    def trace_paths(self, key: str, n_runs: int) -> list[Path]:
        return [self.root / "traces" / f"{key}-run{i}.npz" for i in range(n_runs)]

    def get_traces(self, key: str, n_runs: int) -> list[Trace] | None:
        paths = self.trace_paths(key, n_runs)
        if not all(path.exists() for path in paths):
            return None
        return [Trace.load(path) for path in paths]

    def put_traces(self, key: str, traces: list[Trace]) -> None:
        paths = self.trace_paths(key, len(traces))
        for trace, path in zip(traces, paths):
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = self._temp_path(path)
            try:
                trace.save(temp)
                os.replace(temp, path)
            finally:
                if temp.exists():
                    temp.unlink()

    # -- dataset bundles ---------------------------------------------------------

    def put_bundle(self, key: str, bundle: DatasetBundle) -> Path:
        payload = {}
        for split in _SPLITS:
            dataset = getattr(bundle, split)
            for name in _SPLIT_ARRAYS:
                payload[f"{split}__{name}"] = getattr(dataset, name)
        meta = {
            "name": bundle.name,
            "receiver_index": {str(k): v for k, v in bundle.receiver_index.items()},
            "scenario": scenario_config_to_dict(bundle.scenario),
            "window": window_config_to_dict(bundle.window_config),
            "n_packets": bundle.n_packets,
        }
        payload[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        path = self.path("bundles", key)
        self._write_npz(path, payload)
        return path

    def get_bundle(self, key: str) -> DatasetBundle | None:
        path = self.get("bundles", key)
        if path is None:
            return None
        with np.load(path) as data:
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
            splits = {}
            for split in _SPLITS:
                arrays = {name: data[f"{split}__{name}"] for name in _SPLIT_ARRAYS}
                splits[split] = WindowDataset(**arrays)
        return DatasetBundle(
            name=meta["name"],
            train=splits["train"],
            val=splits["val"],
            test=splits["test"],
            receiver_index={int(k): v for k, v in meta["receiver_index"].items()},
            scenario=scenario_config_from_dict(meta["scenario"]),
            window_config=window_config_from_dict(meta["window"]),
            n_packets=meta["n_packets"],
        )

    # -- pre-trained checkpoints -------------------------------------------------

    def put_pretrained(self, key: str, result: PretrainResult) -> Path:
        path = self.path("checkpoints", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = self._temp_path(path)
        try:
            save_checkpoint(
                result.model,
                temp,
                metadata={
                    "role": "pretrained",
                    "config": ntt_config_to_dict(result.model.config),
                    "pipeline": _pipeline_to_dict(result.pipeline),
                    "history": _history_to_dict(result.history),
                    "test_mse_seconds2": result.test_mse_seconds2,
                },
            )
            os.replace(temp, path)
        finally:
            if temp.exists():
                temp.unlink()
        return path

    def get_pretrained(self, key: str) -> PretrainResult | None:
        path = self.get("checkpoints", key)
        if path is None:
            return None
        state, metadata = load_state(path)
        model = NTTForDelay(ntt_config_from_dict(metadata["config"]))
        model.load_state_dict(state)
        return PretrainResult(
            model=model,
            pipeline=_pipeline_from_dict(metadata["pipeline"]),
            history=_history_from_dict(metadata["history"]),
            test_mse_seconds2=metadata["test_mse_seconds2"],
        )

    # -- fine-tuned checkpoints --------------------------------------------------

    def put_finetuned(
        self, key: str, result: FinetuneResult, pipeline: FeaturePipeline
    ) -> Path:
        path = self.path("checkpoints", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = self._temp_path(path)
        try:
            save_checkpoint(
                result.model,
                temp,
                metadata={
                    "role": "finetuned",
                    "task": result.task,
                    "mode": result.mode,
                    "config": ntt_config_to_dict(result.model.config),
                    "pipeline": _pipeline_to_dict(pipeline),
                    "history": _history_to_dict(result.history),
                    "test_mse": result.test_mse,
                },
            )
            os.replace(temp, path)
        finally:
            if temp.exists():
                temp.unlink()
        return path

    def get_finetuned(self, key: str) -> tuple[FinetuneResult, FeaturePipeline] | None:
        path = self.get("checkpoints", key)
        if path is None:
            return None
        state, metadata = load_state(path)
        config = ntt_config_from_dict(metadata["config"])
        if metadata["task"] == "mct":
            model = NTTForMCT(config, NTT(config))
        else:
            model = NTTForDelay(config)
        model.load_state_dict(state)
        result = FinetuneResult(
            model=model,
            history=_history_from_dict(metadata["history"]),
            test_mse=metadata["test_mse"],
            mode=metadata["mode"],
            task=metadata["task"],
        )
        return result, _pipeline_from_dict(metadata["pipeline"])
