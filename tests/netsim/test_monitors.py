"""Tests for queue and throughput monitors."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.link import Link
from repro.netsim.monitors import QueueMonitor, ThroughputMonitor
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.units import mbps


def busy_channel():
    sim = Simulator()
    a, b = Node(sim, 0, "a"), Node(sim, 1, "b")
    link = Link(sim, a, b, rate_bps=mbps(12), propagation_delay=0.0, queue_packets=100)
    for seq in range(50):
        link.forward.send(Packet(src=0, dst=1, size=1500, seq=seq))
    return sim, link.forward


def test_queue_monitor_samples():
    sim, channel = busy_channel()
    monitor = QueueMonitor(sim, channel, interval=0.001)
    monitor.start()
    sim.run(until=0.02)
    times, occupancy = monitor.as_arrays()
    assert len(times) >= 20
    assert occupancy.max() > 0
    assert monitor.max_occupancy == occupancy.max()
    assert monitor.mean_occupancy == pytest.approx(occupancy.mean())


def test_queue_monitor_drains_over_time():
    sim, channel = busy_channel()
    monitor = QueueMonitor(sim, channel, interval=0.005)
    monitor.start()
    sim.run(until=0.1)
    __, occupancy = monitor.as_arrays()
    assert occupancy[-1] < occupancy[0]


def test_queue_monitor_double_start_rejected():
    sim, channel = busy_channel()
    monitor = QueueMonitor(sim, channel)
    monitor.start()
    with pytest.raises(RuntimeError):
        monitor.start()


def test_invalid_interval():
    sim, channel = busy_channel()
    with pytest.raises(ValueError):
        QueueMonitor(sim, channel, interval=0.0)
    with pytest.raises(ValueError):
        ThroughputMonitor(sim, channel, interval=-1.0)


def test_throughput_monitor_measures_line_rate():
    sim, channel = busy_channel()
    monitor = ThroughputMonitor(sim, channel, interval=0.01)
    monitor.start()
    sim.run(until=0.05)
    # Channel is saturated: measured throughput ≈ 12 Mbps.
    assert monitor.mean_throughput_bps == pytest.approx(mbps(12), rel=0.15)


def test_throughput_monitor_idle_channel_zero():
    sim = Simulator()
    a, b = Node(sim, 0), Node(sim, 1)
    link = Link(sim, a, b, rate_bps=mbps(10), propagation_delay=0.0, queue_packets=10)
    monitor = ThroughputMonitor(sim, link.forward, interval=0.01)
    monitor.start()
    sim.run(until=0.05)
    assert monitor.mean_throughput_bps == 0.0
