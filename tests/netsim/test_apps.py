"""Tests for message sources and sinks."""

import numpy as np
import pytest

from repro.netsim.apps import MessageSource, PacketSink
from repro.netsim.core import Simulator
from repro.netsim.topology import Network
from repro.netsim.trace import TraceCollector
from repro.netsim.units import mbps, milliseconds
from repro.netsim.workloads import FixedMessageSizes


def two_hosts():
    sim = Simulator()
    net = Network(sim)
    a, b = net.add_node("a"), net.add_node("b")
    net.add_link(a, b, mbps(100), milliseconds(1), queue_packets=10_000)
    net.compute_routes()
    return sim, net, a, b


def test_message_split_into_mtu_packets():
    sim, net, a, b = two_hosts()
    collector = TraceCollector()
    sink = PacketSink(sim, b, collector)
    sink.install_default()
    source = MessageSource(
        sim, a, [b], flow_id=1, offered_load_bps=mbps(1),
        size_distribution=FixedMessageSizes(4000), rng=np.random.default_rng(0),
        stop_time=0.5, mtu_bytes=1500,
    )
    source.start()
    sim.run(until=2.0)
    trace = collector.finalize()
    # 4000-byte messages → 1500 + 1500 + 1000.
    assert source.messages_sent >= 1
    first_message = trace.subset(trace.message_id == trace.message_id[0])
    assert list(first_message.size) == [1500, 1500, 1000]
    assert first_message.is_message_end.tolist() == [False, False, True]


def test_offered_load_approximates_target():
    sim, net, a, b = two_hosts()
    sink = PacketSink(sim, b)
    sink.install_default()
    load = mbps(4)
    source = MessageSource(
        sim, a, [b], flow_id=1, offered_load_bps=load,
        size_distribution=FixedMessageSizes(10_000), rng=np.random.default_rng(1),
        stop_time=10.0,
    )
    source.start()
    sim.run(until=10.0)
    achieved = source.bytes_sent * 8 / 10.0
    assert achieved == pytest.approx(load, rel=0.25)


def test_message_metadata_consistent():
    sim, net, a, b = two_hosts()
    collector = TraceCollector()
    sink = PacketSink(sim, b, collector)
    sink.install_default()
    source = MessageSource(
        sim, a, [b], flow_id=5, offered_load_bps=mbps(2),
        size_distribution=FixedMessageSizes(3000), rng=np.random.default_rng(2),
        stop_time=2.0,
    )
    source.start()
    sim.run(until=3.0)
    trace = collector.finalize()
    assert len(trace) > 0
    assert set(trace.flow_id.tolist()) == {5}
    assert np.all(trace.message_size == 3000)
    for message in set(trace.message_id.tolist()):
        packets = trace.subset(trace.message_id == message)
        assert int(packets.size.sum()) == 3000
        assert packets.is_message_end.sum() == 1


def test_destination_choice_uniform():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node("a")
    hub = net.add_node("hub")
    receivers = [net.add_node(f"r{i}") for i in range(3)]
    net.add_link(a, hub, mbps(100), milliseconds(1), 1000)
    for receiver in receivers:
        net.add_link(hub, receiver, mbps(100), milliseconds(1), 1000)
    net.compute_routes()
    collector = TraceCollector()
    for receiver in receivers:
        PacketSink(sim, receiver, collector).install_default()
    source = MessageSource(
        sim, a, receivers, flow_id=1, offered_load_bps=mbps(20),
        size_distribution=FixedMessageSizes(1500), rng=np.random.default_rng(3),
        stop_time=5.0,
    )
    source.start()
    sim.run(until=6.0)
    trace = collector.finalize()
    seen = set(trace.receiver_id.tolist())
    assert seen == {r.node_id for r in receivers}


def test_start_twice_rejected():
    sim, net, a, b = two_hosts()
    source = MessageSource(
        sim, a, [b], flow_id=1, offered_load_bps=mbps(1),
        size_distribution=FixedMessageSizes(1500), rng=np.random.default_rng(0),
    )
    source.start()
    with pytest.raises(RuntimeError):
        source.start()


def test_no_destinations_rejected():
    sim, net, a, b = two_hosts()
    with pytest.raises(ValueError):
        MessageSource(
            sim, a, [], flow_id=1, offered_load_bps=mbps(1),
            size_distribution=FixedMessageSizes(1500), rng=np.random.default_rng(0),
        )


def test_stop_time_respected():
    sim, net, a, b = two_hosts()
    sink = PacketSink(sim, b)
    sink.install_default()
    source = MessageSource(
        sim, a, [b], flow_id=1, offered_load_bps=mbps(10),
        size_distribution=FixedMessageSizes(1500), rng=np.random.default_rng(4),
        stop_time=1.0,
    )
    source.start()
    sim.run(until=1.0)
    sent_by_stop = source.messages_sent
    sim.run(until=5.0)
    assert source.messages_sent == sent_by_stop


def test_message_ids_are_per_simulation():
    """Two identical simulations assign identical message ids: the
    counter lives on the Simulator, not in a process-global."""
    traces = []
    for _ in range(2):
        sim, net, a, b = two_hosts()
        collector = TraceCollector()
        PacketSink(sim, b, collector).install_default()
        source = MessageSource(
            sim, a, [b], flow_id=1, offered_load_bps=mbps(2),
            size_distribution=FixedMessageSizes(3000), rng=np.random.default_rng(2),
            stop_time=2.0,
        )
        source.start()
        sim.run(until=3.0)
        traces.append(collector.finalize())
    first, second = traces
    assert first.message_id.tolist() == second.message_id.tolist()
    assert first.message_id.min() == 0


def test_sink_counts():
    sim, net, a, b = two_hosts()
    sink = PacketSink(sim, b)
    sink.install_default()
    source = MessageSource(
        sim, a, [b], flow_id=1, offered_load_bps=mbps(5),
        size_distribution=FixedMessageSizes(4500), rng=np.random.default_rng(5),
        stop_time=2.0,
    )
    source.start()
    sim.run(until=3.0)
    assert sink.packets_received == source.packets_sent  # lossless link
    assert sink.messages_completed == source.messages_sent
    assert sink.bytes_received == source.bytes_sent
