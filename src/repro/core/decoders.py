"""Task-specific decoders ("MLP heads").

BERT-style: the heavy encoder is shared, the decoder is small and
replaceable (§2-§3).  Two heads reproduce the paper's tasks:

* :class:`DelayDecoder` — predict the masked delay of the most recent
  packet (pre-training and the delay fine-tuning task).
* :class:`MCTDecoder` — predict (log) message completion time from "two
  inputs: the NTT outputs for the past packets and the message size".
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import GELU, Linear, Sequential
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat

__all__ = ["DelayDecoder", "MCTDecoder"]


class DelayDecoder(Module):
    """MLP on the final element's encoding → scalar delay (normalised)."""

    def __init__(self, d_model: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.mlp = Sequential(
            Linear(d_model, hidden, rng),
            GELU(),
            Linear(hidden, 1, rng),
        )

    def forward(self, encoded: Tensor) -> Tensor:
        """``encoded``: (batch, out_len, d_model) → (batch,) predictions.

        The last element corresponds to the most recent (masked) packet.
        """
        last = encoded[:, -1, :]
        return self.mlp(last).reshape(encoded.shape[0])


class MCTDecoder(Module):
    """MLP over pooled sequence context + message size → scalar log-MCT.

    Mean-pooling summarises "the NTT outputs for the past packets";
    concatenating the (normalised, log) message size gives the decoder
    the second input the paper describes.
    """

    def __init__(self, d_model: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.mlp = Sequential(
            Linear(d_model + 1, hidden, rng),
            GELU(),
            Linear(hidden, hidden, rng),
            GELU(),
            Linear(hidden, 1, rng),
        )

    def forward(self, encoded: Tensor, message_size: Tensor) -> Tensor:
        """``encoded``: (batch, out_len, d_model); ``message_size``:
        (batch,) normalised log sizes → (batch,) predictions."""
        pooled = encoded.mean(axis=1)
        size_column = Tensor.ensure(message_size).reshape(encoded.shape[0], 1)
        joined = concat([pooled, size_column], axis=1)
        return self.mlp(joined).reshape(encoded.shape[0])
