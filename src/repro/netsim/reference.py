"""The pre-fast-path simulator stack, preserved as a golden reference.

The netsim fast path (slotted event calendar, fused link departures,
columnar trace collection) is a pure optimisation: it must not change a
single emitted byte.  This module keeps the original implementations —
the ``Event``-object binary heap scheduler and the
``list[PacketRecord]`` collector — so that

* golden tests can run every registered scenario down both stacks and
  assert the traces are bit-identical, and
* the throughput benchmark can report an honest speedup against the
  pre-optimisation baseline in the same process.

Switch a scenario build onto this stack with :func:`legacy_path`::

    with legacy_path():
        baseline = run_scenario(config)   # pre-PR event loop + collector

The flag is consulted at *construction* time (``build_scenario``,
``Channel.__init__``), so handles built inside the context keep their
mode after it exits.
"""

from __future__ import annotations

import heapq
import itertools
import math
from contextlib import contextmanager
from typing import Callable

from repro.netsim.core import Event, SimStats, SimulationError
from repro.netsim.trace import PacketRecord, Trace

__all__ = [
    "ReferenceSimulator",
    "ReferenceTraceCollector",
    "fast_path_enabled",
    "legacy_path",
]

_fast_path = True


def fast_path_enabled() -> bool:
    """Whether scenario builds use the optimised simulator stack."""
    return _fast_path


@contextmanager
def legacy_path():
    """Build scenarios on the pre-PR reference stack inside the block."""
    global _fast_path
    previous = _fast_path
    _fast_path = False
    try:
        yield
    finally:
        _fast_path = previous


class ReferenceSimulator:
    """The pre-PR event loop: one binary heap of comparable ``Event``s.

    Kept verbatim (plus the per-simulation message-id counter shared
    with :class:`~repro.netsim.core.Simulator`) so ordering semantics
    have a living specification to compare against.
    """

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._running = False
        self.stats = SimStats()
        self._message_ids = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        return len(self._heap)

    def next_message_id(self) -> int:
        return next(self._message_ids)

    def schedule(self, delay: float, callback: Callable, *args, priority: int = 0) -> Event:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(self, time: float, callback: Callable, *args, priority: int = 0) -> Event:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def post(self, delay: float, callback: Callable, args: tuple = (), priority: int = 0) -> None:
        # The reference stack has no fire-and-forget fast path; shared
        # components calling post() pay the pre-PR cost here.
        self.schedule(delay, callback, *args, priority=priority)

    def post_at(self, time: float, callback: Callable, args: tuple = (), priority: int = 0) -> None:
        self.schedule_at(time, callback, *args, priority=priority)

    def peek_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            executed = 0
            while True:
                if max_events is not None and executed >= max_events:
                    return
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False


class ReferenceTraceCollector:
    """The pre-PR collector: a list of :class:`PacketRecord` objects."""

    def __init__(self):
        self.records: list[PacketRecord] = []

    def record(self, packet, recv_time: float) -> None:
        if not packet.traced:
            return
        self.records.append(
            PacketRecord(
                send_time=packet.send_time,
                recv_time=recv_time,
                size=packet.size,
                receiver_id=packet.dst,
                flow_id=packet.flow_id,
                message_id=packet.message_id,
                message_size=packet.message_size,
                is_message_end=packet.is_message_end,
            )
        )

    def finalize(self) -> Trace:
        ordered = sorted(self.records, key=lambda r: (r.send_time, r.message_id))
        trace = Trace.from_records(ordered)
        # Recompute MCT with the pre-PR per-packet loop: the baseline
        # pays its original cost, and golden tests cross-check the
        # vectorised implementation against it bit-for-bit.
        trace.mct = _reference_mct(trace)
        return trace


def _reference_mct(trace: Trace):
    """The pre-vectorisation MCT computation, kept verbatim."""
    import numpy as np

    if len(trace) == 0:
        return np.zeros(0, dtype=np.float64)
    mct = np.zeros(len(trace), dtype=np.float64)
    starts: dict[int, float] = {}
    ends: dict[int, float] = {}
    ids = trace.message_id
    for index in range(len(trace)):
        message = int(ids[index])
        send = float(trace.send_time[index])
        recv = float(trace.recv_time[index])
        if message not in starts or send < starts[message]:
            starts[message] = send
        if message not in ends or recv > ends[message]:
            ends[message] = recv
    for index in range(len(trace)):
        message = int(ids[index])
        mct[index] = ends[message] - starts[message]
    return mct
