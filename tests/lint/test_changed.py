"""``repro lint --changed``: the git-aware pre-commit fast path.

Per-file rules shrink to the files differing from the merge base (plus
untracked files); stage fingerprints stay repo-wide, because a helper
edit in an unchanged stage module can still drift a pinned closure.
Outside a git work tree the flag degrades to a full scan.
"""

import subprocess
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import changed_files, run_lint
from repro.lint.fingerprint import (
    FINGERPRINT_FILENAME,
    check_fingerprints,
    save_fingerprints,
)

BAD = "import time\n\n\ndef stamp():\n    return time.time()\n"


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", *args], cwd=repo, check=True, capture_output=True
    )


@pytest.fixture
def repo(tmp_path):
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "lint@test")
    _git(tmp_path, "config", "user.name", "lint")
    netsim = tmp_path / "netsim"
    netsim.mkdir()
    (netsim / "stale.py").write_text(BAD, encoding="utf-8")
    (netsim / "edited.py").write_text(
        "def stamp():\n    return 0.0\n", encoding="utf-8"
    )
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    return tmp_path


class TestChangedFiles:
    def test_modified_and_untracked_are_listed(self, repo):
        (repo / "netsim" / "edited.py").write_text(BAD, encoding="utf-8")
        (repo / "netsim" / "fresh.py").write_text(BAD, encoding="utf-8")
        changed = changed_files(repo)
        assert changed == {
            (repo / "netsim" / "edited.py").resolve(),
            (repo / "netsim" / "fresh.py").resolve(),
        }

    def test_outside_git_returns_none(self, tmp_path):
        outside = tmp_path / "plain"
        outside.mkdir()
        assert changed_files(outside) is None


class TestChangedLint:
    def test_only_changed_files_are_linted(self, repo):
        # stale.py was committed bad; only the post-commit edit should
        # surface, which is exactly what makes the mode a fast path.
        (repo / "netsim" / "edited.py").write_text(BAD, encoding="utf-8")
        report = run_lint([repo], use_baseline=False, changed_only=True)
        assert {f.path for f in report.findings} == {"netsim/edited.py"}

    def test_untracked_file_is_linted(self, repo):
        (repo / "netsim" / "fresh.py").write_text(BAD, encoding="utf-8")
        report = run_lint([repo], use_baseline=False, changed_only=True)
        assert {f.path for f in report.findings} == {"netsim/fresh.py"}

    def test_clean_worktree_lints_nothing(self, repo):
        report = run_lint([repo], use_baseline=False, changed_only=True)
        assert report.findings == []

    def test_no_git_falls_back_to_full_scan(self, tmp_path):
        netsim = tmp_path / "netsim"
        netsim.mkdir()
        (netsim / "a.py").write_text(BAD, encoding="utf-8")
        report = run_lint([tmp_path], use_baseline=False, changed_only=True)
        assert {f.path for f in report.findings} == {"netsim/a.py"}

    def test_cli_flag(self, repo, capsys):
        (repo / "netsim" / "edited.py").write_text(BAD, encoding="utf-8")
        assert main(["lint", str(repo), "--no-baseline", "--changed"]) == 1
        out = capsys.readouterr().out
        assert "edited.py" in out
        assert "stale.py" not in out

    def test_fingerprints_stay_repo_wide(self, repo):
        # A committed pin + a helper edit in a file the per-file pass
        # *does* see, drifting a stage module it does *not* see: the
        # drift must still be reported.
        pkg = repo / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "registry.py").write_text(
            "def register_stage(name, version=0):\n"
            "    def wrap(fn):\n"
            "        return fn\n"
            "    return wrap\n",
            encoding="utf-8",
        )
        (pkg / "util.py").write_text(
            "def scale(x):\n    return x * 2\n", encoding="utf-8"
        )
        (pkg / "stages.py").write_text(
            "from .registry import register_stage\n"
            "from .util import scale\n"
            "\n"
            "\n"
            '@register_stage("alpha", version=0)\n'
            "def _stage_alpha(ctx):\n"
            "    return scale(ctx)\n",
            encoding="utf-8",
        )
        pin_path = repo / FINGERPRINT_FILENAME
        _, _, current = check_fingerprints([repo], pin_path=pin_path)
        save_fingerprints(pin_path, current)
        _git(repo, "add", "-A")
        _git(repo, "commit", "-qm", "pin stages")

        (pkg / "util.py").write_text(
            "def scale(x):\n    return x * 3\n", encoding="utf-8"
        )
        report = run_lint([repo], use_baseline=False, changed_only=True)
        fp = [f for f in report.findings if f.rule == "stage-fingerprint"]
        assert [f.snippet for f in fp] == ["stage alpha"]
        assert fp[0].path == "pkg/stages.py"
