"""Network construction and static routing.

:class:`Network` owns the nodes and links, mirrors them into a
:mod:`networkx` graph, and computes static shortest-path routes
(Dijkstra on propagation delay) like ns-3's global routing.
"""

from __future__ import annotations

import networkx as nx

from repro.netsim.core import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Node

__all__ = ["Network"]


class Network:
    """A collection of nodes and links plus routing.

    Example::

        sim = Simulator()
        net = Network(sim)
        a = net.add_node("a")
        b = net.add_node("b")
        net.add_link(a, b, rate_bps=mbps(30), propagation_delay=milliseconds(1),
                     queue_packets=1000)
        net.compute_routes()
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: list[Node] = []
        self.links: list[Link] = []
        self.graph = nx.Graph()

    def add_node(self, name: str = "") -> Node:
        """Create and register a new node."""
        node = Node(self.sim, node_id=len(self.nodes), name=name)
        self.nodes.append(node)
        self.graph.add_node(node.node_id)
        return node

    def add_link(
        self,
        node_a: Node,
        node_b: Node,
        rate_bps: float,
        propagation_delay: float,
        queue_packets: int,
        queue_factory=None,
    ) -> Link:
        """Create a full-duplex link between two registered nodes."""
        if node_a is node_b:
            raise ValueError("self-links are not supported")
        if self.graph.has_edge(node_a.node_id, node_b.node_id):
            raise ValueError(f"link {node_a.name}<->{node_b.name} already exists")
        link = Link(
            self.sim,
            node_a,
            node_b,
            rate_bps=rate_bps,
            propagation_delay=propagation_delay,
            queue_packets=queue_packets,
            queue_factory=queue_factory,
        )
        node_a.attach_link(link)
        node_b.attach_link(link)
        self.links.append(link)
        self.graph.add_edge(
            node_a.node_id,
            node_b.node_id,
            weight=propagation_delay,
            link=link,
        )
        return link

    def node_by_name(self, name: str) -> Node:
        """Look a node up by its label."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def compute_routes(self) -> None:
        """Install static shortest-path forwarding on every node.

        Shortest paths minimise total propagation delay (ties broken by
        hop count through Dijkstra's deterministic behaviour on the
        sorted adjacency of :mod:`networkx`).
        """
        if not nx.is_connected(self.graph):
            raise ValueError("topology must be connected before computing routes")
        paths = dict(nx.all_pairs_dijkstra_path(self.graph, weight="weight"))
        for node in self.nodes:
            node.forwarding.clear()
            for dst in self.nodes:
                if dst.node_id == node.node_id:
                    continue
                path = paths[node.node_id][dst.node_id]
                next_hop_id = path[1]
                link: Link = self.graph.edges[node.node_id, next_hop_id]["link"]
                node.set_route(dst.node_id, link.channel_from(node))

    def link_between(self, node_a: Node, node_b: Node) -> Link:
        """Return the link connecting two nodes."""
        data = self.graph.get_edge_data(node_a.node_id, node_b.node_id)
        if data is None:
            raise KeyError(f"no link between {node_a.name} and {node_b.name}")
        return data["link"]

    def total_drops(self) -> int:
        """Sum of queue drops over every channel in the network."""
        return sum(
            channel.queue.stats.dropped
            for link in self.links
            for channel in (link.forward, link.backward)
        )
