"""The lint rule registry.

Mirrors the scenario/stage registries (`repro.api.registry`,
`repro.api.stages`): rules are plain functions registered under a
unique name via a decorator, the registry is the single source of truth
the CLI and the engine enumerate, and registering a duplicate name is
an error unless explicitly replacing.  Adding a rule is therefore the
same gesture as adding a scenario:

    @register_rule(
        "my-rule",
        severity="error",
        description="what invariant this protects",
        scopes=("serve/",),
    )
    def check_my_rule(module: SourceModule) -> list[Finding]:
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from .context import SourceModule
from .findings import SEVERITIES, Finding

__all__ = ["LintRule", "LintRuleRegistry", "LINT_RULES", "register_rule"]

RuleCheck = Callable[[SourceModule], List[Finding]]


@dataclass(frozen=True)
class LintRule:
    """A registered rule: metadata plus its check function.

    ``scopes`` is a tuple of path prefixes (relative to the lint root,
    posix separators) the rule applies to; empty means every file.
    """

    name: str
    severity: str
    description: str
    check: RuleCheck
    scopes: tuple = field(default=())

    def applies_to(self, scope_path: str) -> bool:
        if not self.scopes:
            return True
        # Segment-aware: "serve/" matches both "serve/http.py" (fixture
        # trees) and "repro/serve/http.py" (the real package).
        probe = "/" + scope_path
        return any(f"/{prefix}" in probe for prefix in self.scopes)


class LintRuleRegistry:
    """Name -> :class:`LintRule` mapping with decorator registration."""

    def __init__(self):
        self._entries: dict[str, LintRule] = {}

    def register(
        self,
        name: str,
        *,
        severity: str = "error",
        description: str = "",
        scopes: tuple = (),
        replace_existing: bool = False,
    ) -> Callable[[RuleCheck], RuleCheck]:
        if severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {severity!r}; choose from {SEVERITIES}"
            )
        if name in self._entries and not replace_existing:
            raise ValueError(f"lint rule {name!r} is already registered")

        def decorator(check: RuleCheck) -> RuleCheck:
            self._entries[name] = LintRule(
                name=name,
                severity=severity,
                description=description or (check.__doc__ or "").strip(),
                check=check,
                scopes=tuple(scopes),
            )
            return check

        return decorator

    def get(self, name: str) -> LintRule:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown lint rule {name!r}; choose from {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entries(self) -> list[LintRule]:
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide registry the CLI and engine consult.
LINT_RULES = LintRuleRegistry()


def register_rule(
    name: str,
    *,
    severity: str = "error",
    description: str = "",
    scopes: tuple = (),
    replace_existing: bool = False,
):
    """Register a rule in the shared :data:`LINT_RULES` registry."""
    return LINT_RULES.register(
        name,
        severity=severity,
        description=description,
        scopes=scopes,
        replace_existing=replace_existing,
    )
