"""Clean determinism fixture: sanctioned randomness and clocks only."""

import time

import numpy as np


def make_rng(seed):
    root = np.random.SeedSequence(seed)
    child = root.spawn(1)[0]
    return np.random.default_rng(child)


def draw(rng, shape):
    return rng.normal(size=shape)


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def cache_key(items, stable_hash):
    return stable_hash(sorted(set(items)))
