"""Stable content hashing for experiment artifacts.

Artifact keys must be identical across processes and machines for the
:class:`~repro.api.store.ArtifactStore` to hit disk instead of
re-simulating, so hashing goes through a canonical JSON form rather than
``hash()`` (randomised per process) or ``repr`` (contains object ids).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from repro.version import __version__

__all__ = ["to_jsonable", "canonical_json", "stable_hash"]

#: Bump when the on-disk artifact layout changes; stale cache entries
#: are then simply never looked up again.  The package version is also
#: folded into every hash, so released code changes invalidate caches;
#: between releases, ``repro cache clear`` is the dev-workflow escape
#: hatch after editing simulator/model code.
SCHEMA_VERSION = 1


def to_jsonable(obj):
    """Recursively convert ``obj`` into deterministic JSON-able data.

    Dataclasses and plain objects are tagged with their class name so
    two configs of different types never collide; numpy scalars become
    Python numbers; tuples become lists.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; json.dumps uses it too.
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload = {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        payload["__class__"] = type(obj).__name__
        return payload
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    if hasattr(obj, "__dict__"):
        payload = {key: to_jsonable(value) for key, value in vars(obj).items()}
        payload["__class__"] = type(obj).__name__
        return payload
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for hashing")


def canonical_json(obj) -> str:
    """Deterministic JSON text (sorted keys, no whitespace)."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def stable_hash(obj, length: int = 16) -> str:
    """Hex digest of the canonical JSON form, prefixed with the schema
    version so layout changes invalidate old cache entries."""
    payload = canonical_json(
        {"schema": SCHEMA_VERSION, "version": __version__, "value": obj}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:length]
