"""``repro.serve`` — the high-throughput prediction service.

The "millions of users" leg of the roadmap: the training stack produces
self-describing checkpoints (``repro.api.Predictor``), and this package
serves them at traffic scale —

* :class:`~repro.serve.manager.ModelManager` — resolves checkpoints by
  path or artifact-store key, memory-maps their payloads, and keeps an
  LRU of warm models (per-model load locks, PR 5 precision policy
  applied at load time);
* :class:`~repro.serve.batcher.MicroBatcher` — coalesces concurrent
  prediction requests into single fused no-grad forward passes
  (asyncio futures; size/age flush rules) and splits results per
  caller;
* :class:`~repro.serve.http.PredictionServer` — the stdlib-asyncio
  HTTP front (``/predict``, ``/models``, ``/healthz``, ``/metrics``)
  behind ``repro serve``;
* :class:`~repro.serve.metrics.ServingMetrics` — predictions/sec,
  batch-occupancy histograms and p50/p95/p99 request latency;
* :class:`~repro.serve.client.ServingClient` / ``run_load`` — the sync
  client facade and the in-repo load generator driving the serving
  benchmark and CI smoke job.

Quickstart::

    from repro.serve import PredictionServer, ServerConfig, ServerHandle

    config = ServerConfig(models=("ntt_checkpoint.npz",), port=0)
    with ServerHandle(PredictionServer(config)) as handle:
        from repro.serve import ServingClient
        client = ServingClient(handle.host, handle.port)
        delays = client.predict(features, receiver)
"""

from repro.serve.batcher import BatcherConfig, BatcherSaturated, MicroBatcher
from repro.serve.http import PredictionServer, ServerConfig, ServerHandle
from repro.serve.manager import ModelManager, ModelNotFound, STORE_PREFIX
from repro.serve.metrics import ServingMetrics

# The client exports resolve lazily (PEP 562) so that running the load
# generator as ``python -m repro.serve.client`` does not import the
# module twice (runpy warns when the package import already executed it).
_CLIENT_EXPORTS = ("LoadResult", "ServingClient", "run_load")


def __getattr__(name: str):
    if name in _CLIENT_EXPORTS:
        from repro.serve import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatcherConfig",
    "BatcherSaturated",
    "MicroBatcher",
    "LoadResult",
    "ServingClient",
    "run_load",
    "PredictionServer",
    "ServerConfig",
    "ServerHandle",
    "ModelManager",
    "ModelNotFound",
    "STORE_PREFIX",
    "ServingMetrics",
]
