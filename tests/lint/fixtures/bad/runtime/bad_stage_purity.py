"""Known-bad stage-purity fixture: an impure registered stage body."""

import os
import shutil

CACHE = {}


def register_stage(name, **kwargs):
    def wrap(fn):
        return fn

    return wrap


@register_stage("bad_stage")
def run(spec, store):
    flag = os.environ.get("REPRO_FLAG")
    CACHE[spec] = flag
    with open("/tmp/out.txt", "w") as fh:
        fh.write("x")
    shutil.rmtree("/tmp/stuff")
    return store.put(spec, flag)


@register_stage("bad_global_stage")
def run_global(spec, store):
    global CACHE
    CACHE = {}
    return store.put(spec, None)
