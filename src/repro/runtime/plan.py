"""Campaign planning: specs → a deduplicated stage-task graph.

A campaign turns a set of :class:`~repro.api.spec.ExperimentSpec`\\ s
into :class:`StageTask`\\ s along the experiment pipeline.  The standard
pipeline::

    traces → bundle → pretrain → finetune → evaluate

is no longer hard-coded: every stage — built-in, extension or
user-registered — lives in the
:data:`~repro.api.stages.STAGE_REGISTRY`, and the planner reads stage
sets, cache kinds, keys and versions from it.  A spec may also carry its
own ``pipeline`` (any sweepable registered stages) plus per-stage
``stage_params``; both participate in the spec's content hash.

Tasks are deduplicated by the same content-addressed keys the
:class:`~repro.api.store.ArtifactStore` uses, so two specs sharing a
pre-training environment plan *one* pretrain task, not two.  The plan
is purely declarative — executing it (serially or on a worker pool) is
the :class:`~repro.runtime.engine.CampaignEngine`'s job, and the actual
caching still happens inside the store, so a slightly conservative plan
can never cause recomputation.

Every task is assigned an independent :class:`numpy.random.SeedSequence`
via ``spawn`` at planning time (deterministic in the plan, independent
of execution order), covering engine-level randomness such as retry
backoff.  Stage-level randomness always comes from the spec itself —
that is what keys the cache.

The pre-registry stage tuples (``DEFAULT_STAGES``, ``SWEEP_STAGES``,
``STAGES``) remain importable as deprecation shims computed from the
registry at access time; new code should call the registry directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# Importing the module registers the built-in stages.
import repro.runtime.stages  # noqa: F401
from repro.api.hashing import stable_hash
from repro.api.spec import ExperimentSpec
from repro.api.stages import STAGE_REGISTRY
from repro.api.store import (
    evaluation_key,
    finetuned_key,
    precision_key,
    pretrained_key,
    scratch_key,
    traces_key,
)
from repro.core.finetune import FinetuneMode
from repro.netsim.scenarios import ScenarioKind
from repro.runtime.stages import resolve_variant

__all__ = [
    "StageTask",
    "CampaignPlan",
    "plan_campaign",
    "plan_table",
    "spec_for_scale",
    "resolve_variant",
    "DEFAULT_STAGES",
    "SWEEP_STAGES",
    "STAGES",
]

#: Stage names whose planning is orchestrated as one chain by
#: :func:`_plan_spec` (conditional dependencies, ablation coupling);
#: every other registered stage plans generically via its entry.
_CHAIN_STAGES = ("traces", "bundle", "pretrain", "finetune", "evaluate", "trace_stats")


def __getattr__(name: str):
    # Deprecation shims: the pre-registry tuples, now derived from the
    # registry so late-registered stages (extensions, user plugins)
    # appear automatically.
    if name == "DEFAULT_STAGES":
        return STAGE_REGISTRY.default_pipeline()
    if name == "SWEEP_STAGES":
        return STAGE_REGISTRY.sweep_stages()
    if name == "STAGES":
        return STAGE_REGISTRY.all_stages()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _versioned(stage_name: str, base: str | None) -> str | None:
    """A stage's cache key with its registered version folded in."""
    return STAGE_REGISTRY.get(stage_name).versioned_key(base)


def spec_for_scale(scale, seed: int = 0, scenario: str = "pretrain") -> ExperimentSpec:
    """A fully spelled-out spec equivalent to an :class:`ExperimentScale`.

    The table runners receive ``(scale, context)``; campaign planning
    needs a spec, so the scale's resolved settings become explicit
    overrides (hashing identically to the short form when the scale is
    an unmodified preset).
    """
    return ExperimentSpec(
        scenario=scenario,
        scale=scale.name,
        seed=seed,
        n_runs=scale.n_runs,
        window=scale.window,
        model=scale.model,
        pretrain=scale.pretrain_settings,
        finetune=scale.finetune_settings,
        fine_fraction=scale.fine_fraction,
    )


@dataclass
class StageTask:
    """One schedulable unit of campaign work."""

    id: str
    stage: str
    spec: ExperimentSpec
    params: dict = field(default_factory=dict)
    #: store kind + key backing this task (``None`` → not cacheable).
    kind: str | None = None
    key: str | None = None
    deps: tuple[str, ...] = ()
    #: hashes of every spec that contributed this task (dedup record).
    spec_hashes: tuple[str, ...] = ()
    #: ``SeedSequence`` spawn key assigned at planning time.
    spawn_key: tuple[int, ...] = ()
    #: module defining the stage's ``run`` (worker-process provenance).
    module: str = ""

    def payload(
        self,
        store_root: str | None,
        seed: int,
        attempt: int = 0,
        inputs: dict | None = None,
    ) -> dict:
        """The picklable/JSON form handed to workers.

        ``attempt`` counts prior failures; workers apply a jittered
        backoff (derived from the task's spawned seed sequence, so it is
        reproducible) before a retry executes.  ``inputs`` maps this
        task's dependency ids to their result dictionaries.
        """
        return {
            "id": self.id,
            "stage": self.stage,
            "spec": self.spec.to_dict(),
            "params": self.params,
            "key": self.key,
            "kind": self.kind,
            "store_root": store_root,
            "seed_entropy": seed,
            "spawn_key": list(self.spawn_key),
            "attempt": attempt,
            "inputs": dict(inputs or {}),
            "stage_module": self.module,
        }


class CampaignPlan:
    """An ordered, deduplicated task graph for one campaign."""

    def __init__(self, specs: list[ExperimentSpec], seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self.tasks: dict[str, StageTask] = {}
        #: the campaign-level stage selection, recorded by
        #: :func:`plan_campaign` so journals can re-plan the identical
        #: graph on resume; ``None`` for bespoke plans (tables, tests),
        #: which journal records but are not resumable.
        self.stages: tuple[str, ...] | None = None

    def __len__(self) -> int:
        return len(self.tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.tasks

    @property
    def campaign_id(self) -> str:
        """Content hash of the whole plan (used to key the manifest)."""
        return stable_hash({"campaign": sorted(self.tasks)})

    def add(
        self,
        stage: str,
        spec: ExperimentSpec,
        params: dict | None = None,
        kind: str | None = None,
        key: str | None = None,
        deps: tuple[str, ...] = (),
    ) -> str:
        """Add (or merge into) a task; returns its id.

        ``stage`` must be registered.  Tasks are identified by ``stage``
        + cache key — the same key planned from two specs collapses into
        one task whose ``spec_hashes`` records both.
        """
        entry = STAGE_REGISTRY.get(stage)  # raises with registered names
        params = dict(params or {})
        digest = key if key is not None else stable_hash(
            {"spec": spec.spec_hash, "params": params}
        )
        task_id = f"{stage}:{digest[:12]}"
        spec_hash = spec.spec_hash
        existing = self.tasks.get(task_id)
        if existing is not None:
            if spec_hash not in existing.spec_hashes:
                existing.spec_hashes += (spec_hash,)
            existing.deps = tuple(dict.fromkeys(existing.deps + tuple(deps)))
            return task_id
        params["key"] = key
        self.tasks[task_id] = StageTask(
            id=task_id,
            stage=stage,
            spec=spec,
            params=params,
            kind=kind,
            key=key,
            deps=tuple(dict.fromkeys(deps)),
            spec_hashes=(spec_hash,),
            module=entry.module,
        )
        return task_id

    def finalise(self) -> "CampaignPlan":
        """Assign each task an independent spawned seed sequence."""
        children = np.random.SeedSequence(self.seed).spawn(len(self.tasks))
        for task, child in zip(self.tasks.values(), children):
            task.spawn_key = tuple(int(part) for part in child.spawn_key)
        return self

    def ordered(self) -> list[StageTask]:
        """Tasks in execution order (insertion order is topological:
        dependencies are always added before their dependents)."""
        return list(self.tasks.values())

    def describe(self, store=None) -> str:
        """Human-readable plan listing (the ``--dry-run`` output)."""
        lines = [
            f"campaign {self.campaign_id}: "
            f"{len(self.specs)} spec(s) -> {len(self.tasks)} task(s)"
        ]
        for task in self.ordered():
            cached = ""
            # Bundles are deduplicated on a planning surrogate (the real
            # key embeds the data-dependent receiver index), so their
            # cache state is only knowable at execution time.
            if (
                store is not None
                and task.kind is not None
                and task.key is not None
                and task.kind != "bundles"
            ):
                cached = "  [cached]" if store.is_current(task.kind, task.key) else ""
            shared = f"  (shared by {len(task.spec_hashes)} specs)" if len(task.spec_hashes) > 1 else ""
            deps = f"  <- {', '.join(task.deps)}" if task.deps else ""
            lines.append(f"  {task.id:26s}{deps}{shared}{cached}")
        return "\n".join(lines)


# -- sweep planning ---------------------------------------------------------------


def plan_campaign(
    specs: list[ExperimentSpec],
    stages: tuple[str, ...] | None = None,
    seed: int = 0,
) -> CampaignPlan:
    """Plan the pipeline for every spec, deduplicated by key.

    ``stages`` restricts the pipeline (e.g. ``("traces",)`` plans a
    simulation-only sweep, ``("trace_stats",)`` a statistics fan-out,
    ``("federated_pretrain",)`` a registered extension stage); the
    default is the registry's standard pipeline.  A spec carrying its
    own ``pipeline`` overrides the campaign-level selection for that
    spec.
    """
    if stages is None:
        stages = STAGE_REGISTRY.default_pipeline()
    _validate_sweep_stages(tuple(stages))
    plan = CampaignPlan(specs, seed=seed)
    plan.stages = tuple(stages)
    for spec in specs:
        pipeline = tuple(spec.pipeline) if spec.pipeline is not None else tuple(stages)
        if spec.pipeline is not None:
            _validate_sweep_stages(pipeline)
        before = len(plan.tasks)
        _plan_spec(plan, spec, set(pipeline))
        shared = any(
            spec.spec_hash in task.spec_hashes for task in plan.tasks.values()
        )
        if len(plan.tasks) == before and not shared:
            # e.g. stages=("evaluate",) without the model stages: refuse
            # to "succeed" with an empty campaign.
            raise ValueError(
                f"stages {pipeline} plan no work for spec "
                f"{spec.scenario!r}; downstream stages need their "
                f"upstream stages (try the default "
                f"{STAGE_REGISTRY.default_pipeline()})"
            )
    return plan.finalise()


def _validate_sweep_stages(stages: tuple[str, ...]) -> None:
    """Reject stage names that are unregistered or table-only, listing
    the registered sweepable stages."""
    allowed = STAGE_REGISTRY.sweep_stages()
    unknown = set(stages) - set(allowed)
    if unknown:
        raise ValueError(
            f"unknown stages {sorted(unknown)}; choose from the registered "
            f"sweep stages {allowed}"
        )


def _stage_params(spec: ExperimentSpec, name: str) -> dict:
    """The spec's declared parameters for one stage (may be empty)."""
    return spec.params_for(name)


def _plan_traces(plan: CampaignPlan, spec: ExperimentSpec, scenario: str) -> str:
    scale = spec.to_scale()
    return plan.add(
        "traces",
        spec,
        {"scenario": scenario},
        kind="traces",
        key=_versioned("traces", traces_key(spec.scenario_config(scenario), scale.n_runs)),
    )


def _plan_bundle(
    plan: CampaignPlan, spec: ExperimentSpec, scenario: str, stages: set
) -> str:
    """Plan a bundle task (plus its traces and, for fine-tuning
    scenarios, the pre-training bundle that donates receiver ids).

    The real bundle key depends on the pre-training receiver index — a
    value only known once traces exist — so planning dedups on a
    surrogate key over the same inputs; the store still content-addresses
    the artifact exactly.
    """
    scale = spec.to_scale()
    deps = []
    if "traces" in stages:
        deps.append(_plan_traces(plan, spec, scenario))
    if scenario != ScenarioKind.PRETRAIN:
        deps.append(_plan_bundle(plan, spec, ScenarioKind.PRETRAIN, stages))
    surrogate = stable_hash(
        {
            "plan": "bundle",
            "scenario": spec.scenario_config(scenario),
            "window": scale.window,
            "n_runs": scale.n_runs,
            "pretrain": None
            if scenario == ScenarioKind.PRETRAIN
            else spec.scenario_config(ScenarioKind.PRETRAIN),
        }
    )
    return plan.add(
        "bundle",
        spec,
        {"scenario": scenario},
        kind="bundles",
        key=_versioned("bundle", surrogate),
        deps=tuple(deps),
    )


def _stage_precision(spec: ExperimentSpec, stage: str) -> str:
    """The spec's compute-precision knob for one training stage."""
    return spec.params_for(stage).get("precision", "float64")


def _base_pretrained_key(spec: ExperimentSpec, features=None, aggregation=None) -> str:
    scale = spec.to_scale()
    feature_spec, aggregation_spec = resolve_variant(scale, features, aggregation)
    base = _versioned(
        "pretrain",
        pretrained_key(
            spec.scenario_config(ScenarioKind.PRETRAIN),
            scale.window,
            scale.n_runs,
            scale.model_config(features=feature_spec, aggregation=aggregation_spec),
            scale.pretrain_settings,
        ),
    )
    # Ablation variants always train at the default precision — the
    # spec-level knob addresses only the shared pre-trained model.
    if features is None and aggregation is None:
        base = precision_key(base, _stage_precision(spec, "pretrain"))
    return base


def _plan_pretrain(
    plan: CampaignPlan,
    spec: ExperimentSpec,
    stages: set,
    features: str | None = None,
    aggregation: str | None = None,
) -> str:
    deps = []
    if "bundle" in stages:
        deps.append(_plan_bundle(plan, spec, ScenarioKind.PRETRAIN, stages))
    params = {"features": features, "aggregation": aggregation}
    if features is None and aggregation is None:
        precision = _stage_precision(spec, "pretrain")
        if precision != "float64":
            params["precision"] = precision
    return plan.add(
        "pretrain",
        spec,
        params,
        kind="checkpoints",
        key=_base_pretrained_key(spec, features, aggregation),
        deps=tuple(deps),
    )


def _plan_finetune(
    plan: CampaignPlan,
    spec: ExperimentSpec,
    scenario: str,
    stages: set,
    task: str = "delay",
    mode: str = FinetuneMode.DECODER_ONLY,
    fraction: float | None = None,
    features: str | None = None,
    aggregation: str | None = None,
) -> str:
    scale = spec.to_scale()
    deps = [_plan_pretrain(plan, spec, stages, features, aggregation)]
    if "bundle" in stages:
        deps.append(_plan_bundle(plan, spec, scenario, stages))
    precision = _stage_precision(spec, "finetune")
    key = precision_key(
        _versioned(
            "finetune",
            finetuned_key(
                _base_pretrained_key(spec, features, aggregation),
                spec.scenario_config(scenario),
                task,
                mode,
                fraction,
                scale.finetune_settings,
            ),
        ),
        precision,
    )
    params = {
        "scenario": scenario,
        "task": task,
        "mode": mode,
        "fraction": fraction,
        "features": features,
        "aggregation": aggregation,
    }
    if precision != "float64":
        params["precision"] = precision
    return plan.add(
        "finetune",
        spec,
        params,
        kind="checkpoints",
        key=key,
        deps=tuple(deps),
    )


def _plan_spec(plan: CampaignPlan, spec: ExperimentSpec, stages: set) -> None:
    """Plan one spec: the built-in chain for the stages it covers, then
    every other registered stage generically."""
    scenario = spec.scenario
    if "trace_stats" in stages:
        plan.add("trace_stats", spec, {"scenario": scenario})
    model_task = None
    if "pretrain" in stages:
        model_task = _plan_pretrain(plan, spec, stages)
    elif "bundle" in stages:
        _plan_bundle(plan, spec, scenario, stages)
    elif "traces" in stages:
        _plan_traces(plan, spec, scenario)
    if (
        "finetune" in stages
        and model_task is not None
        and scenario != ScenarioKind.PRETRAIN
    ):
        model_task = _plan_finetune(plan, spec, scenario, stages)
    if "evaluate" in stages and model_task is not None:
        model_key = plan.tasks[model_task].key
        plan.add(
            "evaluate",
            spec,
            {"scenario": scenario, "task": "delay"},
            kind="evaluations",
            key=_versioned(
                "evaluate",
                evaluation_key(model_key, spec.scenario_config(scenario), "delay"),
            ),
            deps=(model_task,),
        )
    # Registered non-chain stages (extensions, user plugins), planned in
    # registration order for determinism.
    for name in STAGE_REGISTRY.all_stages():
        if name in stages and name not in _CHAIN_STAGES:
            _plan_registered(plan, spec, name)


def _plan_registered(plan: CampaignPlan, spec: ExperimentSpec, name: str) -> str:
    """Generic planning for a registered stage: plan its declared
    dependencies recursively, then add one task keyed by the stage's
    versioned content address."""
    stage = STAGE_REGISTRY.get(name)
    if stage.plan_fn is not None:
        return stage.plan_fn(plan, spec, _stage_params(spec, name))
    deps = tuple(_plan_dep(plan, spec, dep) for dep in stage.deps)
    params = _stage_params(spec, name)
    key = stage.task_key(spec, params)
    return plan.add(name, spec, params, kind=stage.kind, key=key, deps=deps)


def _plan_dep(plan: CampaignPlan, spec: ExperimentSpec, name: str) -> str:
    """Plan one dependency stage for a spec.

    Chain stages route through their bespoke planners with the full
    standard pipeline active (a custom stage depending on ``pretrain``
    gets the whole traces→bundle→pretrain chain); other registered
    stages recurse through :func:`_plan_registered`.
    """
    chain = set(STAGE_REGISTRY.default_pipeline())
    if name == "traces":
        return _plan_traces(plan, spec, spec.scenario)
    if name == "bundle":
        return _plan_bundle(plan, spec, spec.scenario, chain)
    if name == "pretrain":
        return _plan_pretrain(plan, spec, chain)
    if name == "finetune":
        return _plan_finetune(plan, spec, spec.scenario, chain)
    if name in _CHAIN_STAGES:
        raise ValueError(
            f"stage {name!r} cannot be declared as a dependency; depend on "
            "'traces', 'bundle', 'pretrain' or 'finetune' instead"
        )
    return _plan_registered(plan, spec, name)


# -- table planning ---------------------------------------------------------------


def plan_table(table: int, spec: ExperimentSpec, seed: int = 0):
    """Plan one of the paper's tables as a campaign.

    Returns ``(plan, layout)`` where ``layout`` maps logical unit names
    (used by the table assemblers in :mod:`repro.core.pipeline`) to task
    ids.
    """
    planners = {1: _plan_table1, 2: _plan_table2, 3: _plan_table3}
    try:
        planner = planners[int(table)]
    except (KeyError, ValueError):
        raise ValueError(f"unknown table {table!r}; choose from {sorted(planners)}") from None
    plan = CampaignPlan([spec], seed=seed)
    layout = planner(plan, spec)
    return plan.finalise(), layout


def _plan_scratch(
    plan: CampaignPlan,
    spec: ExperimentSpec,
    scenario: str,
    task: str,
    fraction: float | None,
    stages: set,
) -> str:
    scale = spec.to_scale()
    deps = [_plan_pretrain(plan, spec, stages)]  # donates the fitted pipeline
    deps.append(_plan_bundle(plan, spec, scenario, stages))
    key = _versioned(
        "scratch",
        scratch_key(
            _base_pretrained_key(spec),
            spec.scenario_config(scenario),
            task,
            fraction,
            scale.model_config(),
            scale.finetune_settings,
        ),
    )
    return plan.add(
        "scratch",
        spec,
        {"scenario": scenario, "task": task, "fraction": fraction},
        kind="checkpoints",
        key=key,
        deps=tuple(deps),
    )


def _plan_baselines(plan: CampaignPlan, spec: ExperimentSpec, scenario: str, stages: set) -> str:
    scale = spec.to_scale()
    deps = (_plan_bundle(plan, spec, scenario, stages),)
    key = _versioned(
        "baselines",
        evaluation_key(
            "baselines",
            {
                "scenario": spec.scenario_config(scenario),
                "window": scale.window,
                "n_runs": scale.n_runs,
            },
            "baselines",
        ),
    )
    return plan.add(
        "baselines",
        spec,
        {"scenario": scenario},
        kind="evaluations",
        key=key,
        deps=deps,
    )


#: Table 1's ablation rows → symbolic variant tokens.
TABLE1_VARIANTS = {
    "no_aggregation": {"aggregation": "none"},
    "fixed_aggregation": {"aggregation": "fixed"},
    "without_packet_size": {"features": "without_size"},
    "without_delay": {"features": "without_delay"},
}


def _plan_table1(plan: CampaignPlan, spec: ExperimentSpec) -> dict:
    stages = set(STAGE_REGISTRY.default_pipeline())
    fraction = spec.to_scale().fine_fraction
    case1 = ScenarioKind.CASE1
    layout = {
        "pretrain": _plan_pretrain(plan, spec, stages),
        "ft_delay": _plan_finetune(plan, spec, case1, stages, task="delay", fraction=fraction),
        "ft_mct": _plan_finetune(plan, spec, case1, stages, task="mct", fraction=fraction),
        "scratch_delay": _plan_scratch(plan, spec, case1, "delay", fraction, stages),
        "scratch_mct": _plan_scratch(plan, spec, case1, "mct", fraction, stages),
        "baselines_pretrain": _plan_baselines(plan, spec, ScenarioKind.PRETRAIN, stages),
        "baselines_case1": _plan_baselines(plan, spec, case1, stages),
        "variants": {},
    }
    for name, tokens in TABLE1_VARIANTS.items():
        layout["variants"][name] = {
            "pretrain": _plan_pretrain(plan, spec, stages, **tokens),
            "ft_delay": _plan_finetune(
                plan, spec, case1, stages, task="delay", fraction=fraction, **tokens
            ),
            "ft_mct": _plan_finetune(
                plan, spec, case1, stages, task="mct", fraction=fraction, **tokens
            ),
        }
    return layout


def _plan_table2(plan: CampaignPlan, spec: ExperimentSpec) -> dict:
    stages = set(STAGE_REGISTRY.default_pipeline())
    fraction = spec.to_scale().fine_fraction
    case1 = ScenarioKind.CASE1
    return {
        "pretrain": _plan_pretrain(plan, spec, stages),
        "pretrained_full": _plan_finetune(plan, spec, case1, stages, fraction=None),
        "pretrained_10pct": _plan_finetune(plan, spec, case1, stages, fraction=fraction),
        "scratch_full": _plan_scratch(plan, spec, case1, "delay", None, stages),
        "scratch_10pct": _plan_scratch(plan, spec, case1, "delay", fraction, stages),
    }


def _plan_table3(plan: CampaignPlan, spec: ExperimentSpec) -> dict:
    stages = set(STAGE_REGISTRY.default_pipeline())
    fraction = spec.to_scale().fine_fraction
    case2 = ScenarioKind.CASE2
    full = FinetuneMode.FULL
    return {
        "pretrain": _plan_pretrain(plan, spec, stages),
        "pretrained_full": _plan_finetune(plan, spec, case2, stages, mode=full, fraction=None),
        "pretrained_10pct": _plan_finetune(plan, spec, case2, stages, mode=full, fraction=fraction),
        "scratch_full": _plan_scratch(plan, spec, case2, "delay", None, stages),
        "scratch_10pct": _plan_scratch(plan, spec, case2, "delay", fraction, stages),
        "baselines_case2": _plan_baselines(plan, spec, case2, stages),
        "without_receiver_id": _plan_finetune(
            plan, spec, case2, stages, mode=full, fraction=None, features="without_receiver"
        ),
    }
