"""Serving throughput — micro-batched concurrent predictions vs
sequential per-request calls.

The serving scenario from the roadmap: many concurrent clients, each
carrying **one** feature window (a flow asking for its next-delay
estimate).  Three measurements land in ``bench_results/serving.json``:

* **engine** — the gated claim.  Sequential per-request
  ``Predictor.predict`` calls versus the same requests submitted
  concurrently through the :class:`~repro.serve.batcher.MicroBatcher`
  (asyncio + the server's 1-thread prediction lane, flushes of
  ``_FLUSH_WINDOWS``).  Micro-batching amortises the per-call Python
  graph overhead across the fused forward, which is exactly the
  regime serving traffic lives in.
* **engine_float32** — the same harness under the opt-in precision
  policy (documented tolerance, no bit-identity claim).
* **http** — the full stack driven by the in-repo load generator
  (:func:`repro.serve.client.run_load`): requests/sec through parse +
  batch + forward + respond, client-observed p50/p95/p99 latency, and
  the server's batch-occupancy histogram.  Reported, not gated: on a
  single shared core the JSON/HTTP front and the load generator
  contend with the prediction lane, so these numbers measure the
  deployment, not the batching idea.

Equivalence gates run **before** any number is reported:

* The micro-batched float64 predictions must be **bit-identical** to a
  direct ``Predictor`` run with the same batch grouping (both execute
  the same >=2-row gemm kernels, so bit-equality is exact, not a
  tolerance).
* Against a single full-batch forward — a *different* BLAS grouping —
  served and sequential results must agree to 1e-12 relative: BLAS
  accumulation order may shift the last ulp between groupings (the
  sequential baseline's 1-row forwards take the gemv path; see the
  batcher docstring), and anything beyond that fails the run.
* The float32 row must match the float64 reference to the documented
  ``_FLOAT32_RTOL``.

The served model is the **smoke-scale** pre-trained NTT at every bench
scale: serving throughput is a property of the batching engine against
a fixed model, and the benchmark scale grows the *traffic* instead
(request counts, load-generator volume, measurement rounds).  The
scale's own model is still measured — the ``scale_model`` section
reports the same engine comparison for it, ungated, which documents
the compute-bound regime where batching stops paying (its forward is
BLAS-dominated, so there is little per-call overhead to amortise).
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from benchmarks.conftest import save_results
from repro.api import Experiment, ExperimentSpec, Predictor
from repro.serve import (
    BatcherConfig,
    MicroBatcher,
    PredictionServer,
    ServerConfig,
    ServerHandle,
    run_load,
)

#: Windows per fused forward (the server's default flush size).
_FLUSH_WINDOWS = 64

#: Age flush rule for the benchmark batchers/server.
_MAX_WAIT_US = 2000.0

#: Concurrent engine requests per round, by scale.
_N_REQUESTS = {"smoke": 256, "small": 1024, "paper": 2048}

#: Load-generator requests per round / keep-alive connections, by scale.
_HTTP_REQUESTS = {"smoke": 128, "small": 512, "paper": 1024}
_HTTP_CONCURRENCY = {"smoke": 8, "small": 16, "paper": 32}

#: Interleaved best-of rounds, by scale.
_ROUNDS = {"smoke": 3, "small": 5, "paper": 3}

#: Engine speedup gates (micro-batched windows/s over sequential).
#: Measured ~5x on a quiet single core at flush 64; the smoke gate is a
#: sanity bound for shared CI runners, the committed small-scale number
#: is the >=3x claim.
_MIN_ENGINE_SPEEDUP = {"smoke": 1.8, "small": 3.0, "paper": 3.0}

#: Documented tolerance for the float32 precision-policy row.
_FLOAT32_RTOL = 1e-3


@pytest.fixture(scope="module")
def serving_assets(experiment, scale, tmp_path_factory):
    """The served checkpoint + a request workload, at this bench scale.

    Returns ``(checkpoint_path, features, receiver)`` where the arrays
    hold one window per request, tiled from the smoke experiment's real
    test windows.
    """
    if scale.name == "smoke":
        smoke_experiment = experiment
    else:
        spec = ExperimentSpec(scenario="pretrain", scale="smoke")
        if os.environ.get("REPRO_BENCH_NO_CACHE"):
            smoke_experiment = Experiment.uncached(spec)
        else:
            smoke_experiment = Experiment(spec)
    result = smoke_experiment.pretrained()
    path = tmp_path_factory.mktemp("serving") / "serving_model.npz"
    Predictor(result.model, result.pipeline).save(path, compress=False)

    test = smoke_experiment.bundle().test
    n_requests = _N_REQUESTS.get(scale.name, 256)
    repeats = -(-n_requests // len(test))  # ceil division
    features = np.tile(test.features, (repeats, 1, 1))[:n_requests]
    receiver = np.tile(test.receiver, (repeats, 1))[:n_requests]
    return path, features, receiver


def _sequential_seconds(predictor, features, receiver) -> tuple[float, np.ndarray]:
    """Wall seconds for one-request-at-a-time serving (plus the outputs)."""
    outputs = []
    start = time.monotonic()
    for index in range(len(features)):
        outputs.append(
            predictor.predict(features[index:index + 1], receiver[index:index + 1])
        )
    return time.monotonic() - start, np.concatenate(outputs)


def _batched_seconds(predictor, features, receiver) -> tuple[float, np.ndarray]:
    """Wall seconds for the same requests through the micro-batcher."""
    executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="bench-predict")
    config = BatcherConfig(
        max_batch_windows=_FLUSH_WINDOWS, max_wait_us=_MAX_WAIT_US
    )

    async def drive():
        batcher = MicroBatcher(predictor, config, executor=executor)
        start = time.monotonic()
        results = await asyncio.gather(
            *(
                batcher.submit(
                    features[index:index + 1], receiver[index:index + 1]
                )
                for index in range(len(features))
            )
        )
        return time.monotonic() - start, np.concatenate(results)

    try:
        return asyncio.run(drive())
    finally:
        executor.shutdown(wait=True)


def _engine_rows(checkpoint, features, receiver, rounds, precision="float64"):
    """Best-of-rounds sequential vs micro-batched engine comparison."""
    predictor = Predictor.from_checkpoint(
        checkpoint, batch_size=1024, precision=precision, mmap=True
    )
    # Warm: caches, BLAS, the lazily-mapped checkpoint pages.
    predictor.predict(features[:_FLUSH_WINDOWS], receiver[:_FLUSH_WINDOWS])

    sequential_s = batched_s = None
    sequential_out = batched_out = None
    for _ in range(rounds):
        elapsed, out = _sequential_seconds(predictor, features, receiver)
        if sequential_s is None or elapsed < sequential_s:
            sequential_s, sequential_out = elapsed, out
        elapsed, out = _batched_seconds(predictor, features, receiver)
        if batched_s is None or elapsed < batched_s:
            batched_s, batched_out = elapsed, out

    n = len(features)
    return {
        "requests": n,
        "windows_per_request": 1,
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "sequential_windows_per_s": n / sequential_s,
        "batched_windows_per_s": n / batched_s,
        "speedup": sequential_s / batched_s,
    }, sequential_out, batched_out


def test_serving_throughput(scale, serving_assets):
    """Micro-batched concurrent serving >= _MIN_ENGINE_SPEEDUP x
    sequential per-request calls, bit-identically."""
    checkpoint, features, receiver = serving_assets
    rounds = _ROUNDS.get(scale.name, 3)

    engine, sequential_out, batched_out = _engine_rows(
        checkpoint, features, receiver, rounds
    )

    # -- equivalence gates, before anything is reported -----------------
    grouped = Predictor.from_checkpoint(checkpoint, batch_size=_FLUSH_WINDOWS)
    grouped_reference = grouped.predict(features, receiver)
    assert np.array_equal(batched_out, grouped_reference), (
        "micro-batched predictions are not bit-identical to the "
        "identically-grouped direct Predictor run"
    )
    full = Predictor.from_checkpoint(checkpoint, batch_size=len(features))
    full_reference = full.predict(features, receiver)
    np.testing.assert_allclose(
        batched_out, full_reference, rtol=1e-12, atol=0,
        err_msg="micro-batched predictions drifted past BLAS regrouping ulps",
    )
    np.testing.assert_allclose(
        sequential_out, full_reference, rtol=1e-12, atol=0,
        err_msg="sequential baseline drifted past the documented gemv ulps",
    )
    engine["bit_identical_float64"] = True
    engine["cross_grouping_rtol"] = 1e-12

    # -- the opt-in float32 policy row (documented tolerance) -----------
    engine_float32, __, float32_out = _engine_rows(
        checkpoint, features, receiver, rounds, precision="float32"
    )
    float32_rel = float(
        np.max(np.abs(float32_out - full_reference) / np.abs(full_reference))
    )
    assert float32_rel < _FLOAT32_RTOL, (
        f"float32 serving drifted {float32_rel:.2e} from the float64 "
        f"reference (documented tolerance {_FLOAT32_RTOL})"
    )
    engine_float32["max_rel_diff"] = float32_rel
    engine_float32["tolerance_rtol"] = _FLOAT32_RTOL

    # -- the full HTTP stack, driven by the in-repo load generator ------
    n_http = _HTTP_REQUESTS.get(scale.name, 128)
    concurrency = _HTTP_CONCURRENCY.get(scale.name, 8)
    requests = [
        {
            "features": features[index:index + 1].tolist(),
            "receiver": receiver[index:index + 1].tolist(),
        }
        for index in range(min(n_http, len(features)))
    ]
    config = ServerConfig(
        models=(str(checkpoint),),
        port=0,
        max_batch_windows=_FLUSH_WINDOWS,
        max_wait_us=_MAX_WAIT_US,
    )
    with ServerHandle(PredictionServer(config)) as handle:
        run_load(handle.host, handle.port, requests, concurrency)  # warm
        best = None
        for _ in range(rounds):
            result = run_load(handle.host, handle.port, requests, concurrency)
            assert result.errors == 0
            if best is None or result.wall_s < best.wall_s:
                best = result
        snapshot = handle.server.metrics.snapshot()
    served = np.asarray(
        [row for rows in best.predictions for row in rows], dtype=np.float64
    )
    np.testing.assert_allclose(
        served, full_reference[: len(served)], rtol=1e-12, atol=0,
        err_msg="HTTP-served predictions drifted past BLAS regrouping ulps",
    )
    http = {
        "requests": len(requests),
        "concurrency": concurrency,
        "requests_per_s": best.requests_per_s,
        "predictions_per_s": best.predictions_per_s,
        "latency_ms": best.latency_percentiles_ms(),
        "errors": best.errors,
        "batches_total": snapshot["batches_total"],
        "mean_batch_windows": snapshot["mean_batch_windows"],
        "batch_occupancy": snapshot["batch_occupancy"],
    }

    serving_model = Predictor.from_checkpoint(checkpoint)
    payload = {
        "serving_model": {
            "config": "smoke-scale pre-trained NTT (fixed across scales)",
            "window_len": serving_model.model.config.aggregation.seq_len,
            "parameters": serving_model.model.num_parameters(),
            "checkpoint": "stored (memory-mapped)",
        },
        "workload": {
            "flush_windows": _FLUSH_WINDOWS,
            "max_wait_us": _MAX_WAIT_US,
            "rounds": rounds,
        },
        "engine": engine,
        "engine_float32": engine_float32,
        "http": http,
    }

    # -- the scale's own model: the compute-bound regime, ungated -------
    if scale.name != "smoke":
        scale_engine = _scale_model_row(scale, rounds)
        if scale_engine is not None:
            payload["scale_model"] = scale_engine

    save_results("serving", payload)

    print(
        f"\nserving ({scale.name}): sequential "
        f"{engine['sequential_windows_per_s']:.0f} windows/s -> micro-batched "
        f"{engine['batched_windows_per_s']:.0f} windows/s "
        f"({engine['speedup']:.2f}x, bit-identical; float32 "
        f"{engine_float32['batched_windows_per_s']:.0f} windows/s); http "
        f"{http['requests_per_s']:.0f} req/s, p99 "
        f"{http['latency_ms']['p99']:.1f} ms"
    )

    minimum = _MIN_ENGINE_SPEEDUP.get(scale.name, 1.8)
    assert engine["speedup"] >= minimum, (
        f"micro-batched serving only {engine['speedup']:.2f}x over "
        f"sequential per-request calls (expected >= {minimum}x; committed "
        "small-scale results show >= 3x)"
    )
    assert engine_float32["speedup"] >= minimum, (
        f"float32 micro-batched serving only {engine_float32['speedup']:.2f}x "
        f"(expected >= {minimum}x)"
    )


def _scale_model_row(scale, rounds):
    """The engine comparison for this scale's own (bigger) model.

    Documents the compute-bound end of the spectrum; reported without a
    speedup gate — when the forward is BLAS-dominated there is little
    per-call overhead for batching to win back.
    """
    spec = ExperimentSpec(scenario="pretrain", scale=scale.name)
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        experiment = Experiment.uncached(spec)
    else:
        experiment = Experiment(spec)
    result = experiment.pretrained()
    test = experiment.bundle().test
    if len(test) == 0:
        return None
    n_requests = min(_N_REQUESTS.get(scale.name, 256) // 4, 256)
    repeats = -(-n_requests // len(test))
    features = np.tile(test.features, (repeats, 1, 1))[:n_requests]
    receiver = np.tile(test.receiver, (repeats, 1))[:n_requests]

    predictor = Predictor(result.model, result.pipeline, batch_size=1024)
    predictor.predict(features[:8], receiver[:8])  # warm
    sequential_s, _ = _sequential_seconds(predictor, features, receiver)
    batched_s, _ = _batched_seconds(predictor, features, receiver)
    return {
        "config": f"{scale.name}-scale pre-trained NTT",
        "window_len": predictor.model.config.aggregation.seq_len,
        "parameters": predictor.model.num_parameters(),
        "requests": n_requests,
        "sequential_windows_per_s": n_requests / sequential_s,
        "batched_windows_per_s": n_requests / batched_s,
        "speedup": sequential_s / batched_s,
        "gated": False,
    }
