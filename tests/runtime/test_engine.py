"""Tests for the campaign engine: execution, retries, skips, manifest."""

import pytest

from repro.api import ArtifactStore, ExperimentSpec, TrainSettings
from repro.api.stages import STAGE_REGISTRY
from repro.runtime import CampaignEngine, expand_grid, plan_campaign, run_campaign

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


def fast_specs(scenarios=("pretrain",), seeds=(0,)):
    return expand_grid(
        scenarios=scenarios, scales=["smoke"], seeds=seeds, pretrain=FAST, finetune=FAST
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestSerialExecution:
    def test_full_chain_without_store(self):
        result = run_campaign(fast_specs(["case1"]), store=None)
        assert result.ok
        assert result.summary == {
            "total": 7, "done": 7, "failed": 0, "skipped": 0,
            "cache_hits": 0, "executed": 7,
        }
        assert result.manifest_path is None

    def test_manifest_written_through_store(self, store):
        result = run_campaign(fast_specs(), store=store)
        assert result.manifest_path is not None
        stored = store.get_manifest(result.manifest["campaign_id"])
        assert stored["summary"] == result.summary
        assert {row["stage"] for row in stored["tasks"]} == {
            "traces", "bundle", "pretrain", "evaluate",
        }

    def test_rerun_serves_everything_from_store(self, store):
        first = run_campaign(fast_specs(["case1"]), store=store)
        assert first.summary["cache_hits"] == 0
        second = run_campaign(fast_specs(["case1"]), store=store)
        assert second.summary["cache_hits"] == second.summary["total"]
        assert second.summary["executed"] == 0
        # Cached metrics match the freshly computed ones exactly.
        for task_id, payload in first.results.items():
            if "test_mse" in payload:
                assert second.results[task_id]["test_mse"] == payload["test_mse"]

    def test_evaluate_results_include_baselines(self, store):
        result = run_campaign(fast_specs(["case1"]), store=store)
        evaluations = [
            payload for task_id, payload in result.results.items()
            if task_id.startswith("evaluate:")
        ]
        assert evaluations
        for row in evaluations:
            assert row["model_mse"] >= 0
            assert "ewma" in row["baselines"]


class TestFailureHandling:
    @pytest.fixture
    def flaky_stage(self, monkeypatch, tmp_path):
        """A trace_stats stage that fails on its first N calls."""
        marker = tmp_path / "failures-left"

        def install(failures: int):
            marker.write_text(str(failures))
            entry = STAGE_REGISTRY.get("trace_stats")
            original = entry.run

            def stage(experiment, inputs, params):
                remaining = int(marker.read_text())
                if remaining > 0:
                    marker.write_text(str(remaining - 1))
                    raise RuntimeError("synthetic stage failure")
                return original(experiment, inputs, params)

            monkeypatch.setattr(entry, "run", stage)

        return install

    def test_retry_recovers(self, flaky_stage):
        flaky_stage(1)
        result = run_campaign(fast_specs(), stages=("trace_stats",), store=None, retries=1)
        assert result.ok
        (row,) = result.manifest["tasks"]
        assert row["attempts"] == 2

    def test_exhausted_retries_fail(self, flaky_stage):
        flaky_stage(5)
        result = run_campaign(fast_specs(), stages=("trace_stats",), store=None, retries=1)
        assert not result.ok
        (row,) = result.manifest["tasks"]
        assert row["status"] == "error"
        assert "synthetic stage failure" in row["error"]
        assert row["attempts"] == 2

    def test_failed_dependency_skips_downstream(self, monkeypatch, store):
        def broken(experiment, inputs, params):
            raise RuntimeError("simulator exploded")

        monkeypatch.setattr(STAGE_REGISTRY.get("traces"), "run", broken)
        result = run_campaign(fast_specs(), store=store, retries=0)
        statuses = {row["id"]: row["status"] for row in result.manifest["tasks"]}
        assert sorted(statuses.values()) == ["error", "skipped", "skipped", "skipped"]
        skipped = [row for row in result.manifest["tasks"] if row["status"] == "skipped"]
        assert all("skipped_because" in row for row in skipped)
        assert not result.ok

    def test_failed_table_campaign_raises(self, monkeypatch, store):
        from repro.core.pipeline import ExperimentContext, get_scale, run_table2

        def broken(experiment, inputs, params):
            raise RuntimeError("simulator exploded")

        monkeypatch.setattr(STAGE_REGISTRY.get("traces"), "run", broken)
        context = ExperimentContext(get_scale("smoke"), store=store)
        with pytest.raises(RuntimeError, match="campaign failed"):
            run_table2(get_scale("smoke"), context)


class TestEngineConfiguration:
    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            CampaignEngine(store=None, workers=0)

    def test_invalid_retries_rejected(self):
        with pytest.raises(ValueError):
            CampaignEngine(store=None, retries=-1)

    def test_storeless_pool_downgrades_to_serial(self):
        engine = CampaignEngine(store=None, workers=4)
        plan = plan_campaign(fast_specs(["case1"]))
        assert engine.effective_workers(plan.ordered()) == 1

    def test_storeless_downgrade_warns_and_lands_in_manifest(self):
        engine = CampaignEngine(store=None, workers=4)
        plan = plan_campaign(fast_specs(["case1"]))
        with pytest.warns(RuntimeWarning, match="runs serially"):
            result = engine.run(plan)
        assert result.ok
        assert result.manifest["downgraded_to_serial"] is True
        assert result.manifest["workers"] == 1

    def test_no_downgrade_flag_when_store_present(self, store):
        result = run_campaign(fast_specs(), store=store)
        assert result.manifest["downgraded_to_serial"] is False

    def test_storeless_trace_stats_pool_does_not_warn(self, recwarn):
        engine = CampaignEngine(store=None, workers=2)
        plan = plan_campaign(fast_specs(["pretrain", "case1"]), stages=("trace_stats",))
        result = engine.run(plan)
        assert result.ok
        assert result.manifest["downgraded_to_serial"] is False
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]

    def test_storeless_independent_tasks_keep_pool(self):
        engine = CampaignEngine(store=None, workers=2)
        plan = plan_campaign(fast_specs(["pretrain", "case1"]), stages=("trace_stats",))
        assert engine.effective_workers(plan.ordered()) == 2

    def test_workers_capped_by_plan_size(self, store):
        engine = CampaignEngine(store=store, workers=32)
        plan = plan_campaign(fast_specs())
        assert engine.effective_workers(plan.ordered()) == len(plan)

    def test_shared_context_rejected_for_multi_spec_plans(self):
        from repro.core.pipeline import ExperimentContext, get_scale

        plan = plan_campaign(fast_specs(seeds=(0, 1)))
        context = ExperimentContext(get_scale("smoke"))
        with pytest.raises(ValueError, match="multi-spec"):
            CampaignEngine(store=None).run(plan, context=context)

    def test_shared_context_seed_mismatch_rejected(self):
        from repro.core.pipeline import ExperimentContext, get_scale

        plan = plan_campaign(fast_specs(seeds=(1,)))
        context = ExperimentContext(get_scale("smoke"), seed=0)
        with pytest.raises(ValueError, match="seed"):
            CampaignEngine(store=None).run(plan, context=context)

    def test_shared_context_scale_mismatch_rejected(self, store):
        # A smoke-trained context bound to a small-scale plan would
        # persist smoke artifacts under small-scale cache keys.
        from repro.core.pipeline import ExperimentContext, get_scale
        from repro.runtime import spec_for_scale, plan_table

        plan, _layout = plan_table(2, spec_for_scale(get_scale("small")))
        context = ExperimentContext(get_scale("smoke"), store=store)
        with pytest.raises(ValueError, match="scale"):
            CampaignEngine(store=store).run(plan, context=context)
