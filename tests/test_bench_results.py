"""Benchmark result-artifact hygiene.

Smoke-scale benchmark runs must never overwrite the committed
small/paper-scale ``bench_results/*.json``, and every saved payload must
carry its scale so downstream readers (``scripts/fill_experiments.py``)
can tell paper-grade numbers from CI smoke output.
"""

import json

import pytest

import benchmarks.conftest as bench_conftest


@pytest.fixture
def results_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(bench_conftest, "RESULTS_DIR", tmp_path)
    return tmp_path


def test_smoke_results_routed_to_subdir(results_dir, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    path = bench_conftest.save_results("attention_scaling", {"ratio": 1.0})
    assert path == results_dir / "smoke" / "attention_scaling.json"
    assert not (results_dir / "attention_scaling.json").exists()


def test_small_results_written_in_place(results_dir, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
    path = bench_conftest.save_results("table1", {"rows": {}})
    assert path == results_dir / "table1.json"


def test_payload_stamped_with_scale(results_dir, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
    path = bench_conftest.save_results("attention_scaling", {"ratio": 1.0})
    data = json.loads(path.read_text())
    assert data == {"scale": "smoke", "ratio": 1.0}


def test_throughput_smoke_results_never_overwrite_committed(results_dir, monkeypatch):
    """CI's smoke-scale netsim throughput runs must not clobber the
    committed small-scale numbers."""
    committed = results_dir / "netsim_throughput.json"
    committed.write_text(json.dumps({"scale": "small", "speedup": 3.0}))
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    path = bench_conftest.save_results("netsim_throughput", {"speedup": 2.5})
    assert path == results_dir / "smoke" / "netsim_throughput.json"
    assert json.loads(committed.read_text())["speedup"] == 3.0
