"""Tests for Linear, activations, Dropout, Embedding, Sequential."""

import numpy as np
import pytest

from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    Identity,
    Linear,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.tensor import Tensor
from repro.nn.testing import gradcheck


class TestLinear:
    def test_output_shape_2d(self, rng):
        layer = Linear(4, 7, rng)
        assert layer(Tensor(np.ones((3, 4)))).shape == (3, 7)

    def test_output_shape_3d(self, rng):
        layer = Linear(4, 7, rng)
        assert layer(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 7)

    def test_affine_correctness(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_wrong_input_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(3, 2, rng)(Tensor(np.ones((2, 4))))

    def test_invalid_features_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 2, rng)

    def test_gradcheck_through_layer(self, rng):
        layer = Linear(3, 2, rng)

        def fn(tensors):
            out = tensors[0] @ layer.weight + layer.bias
            return out.sum()

        gradcheck(fn, [rng.normal(size=(2, 3))])

    def test_accepts_ndarray_input(self, rng):
        out = Linear(3, 2, rng)(np.ones((2, 3)))
        assert isinstance(out, Tensor)


class TestActivations:
    def test_relu_values(self, rng):
        out = ReLU()(Tensor(np.array([-1.0, 0.0, 2.0])))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_gelu_close_to_relu_for_large_positive(self):
        out = GELU()(Tensor(np.array([10.0])))
        assert out.data[0] == pytest.approx(10.0, abs=1e-3)

    def test_gelu_negative_saturation(self):
        out = GELU()(Tensor(np.array([-10.0])))
        assert out.data[0] == pytest.approx(0.0, abs=1e-3)

    def test_tanh_module(self):
        out = Tanh()(Tensor(np.array([0.0])))
        assert out.data[0] == 0.0

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x


class TestDropout:
    def test_eval_mode_passthrough(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = Tensor(np.ones(100))
        assert layer(x) is x

    def test_train_mode_zeroes_some(self, rng):
        layer = Dropout(0.5, rng)
        out = layer(Tensor(np.ones(1000)))
        zero_fraction = np.mean(out.data == 0)
        assert 0.3 < zero_fraction < 0.7

    def test_expected_value_preserved(self, rng):
        layer = Dropout(0.3, rng)
        out = layer(Tensor(np.ones(20_000)))
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        table = Embedding(10, 4, rng)
        out = table(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values(self, rng):
        table = Embedding(10, 4, rng)
        out = table(np.array([3]))
        assert np.allclose(out.data[0], table.weight.data[3])

    def test_gradient_accumulates_on_repeats(self, rng):
        table = Embedding(5, 2, rng)
        out = table(np.array([1, 1, 1]))
        out.sum().backward()
        assert np.allclose(table.weight.grad[1], 3.0)

    def test_out_of_range_rejected(self, rng):
        table = Embedding(5, 2, rng)
        with pytest.raises(IndexError):
            table(np.array([5]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            Embedding(0, 4, rng)


class TestSequential:
    def test_chains_layers(self, rng):
        model = Sequential(Linear(3, 5, rng), ReLU(), Linear(5, 2, rng))
        assert model(Tensor(np.ones((4, 3)))).shape == (4, 2)

    def test_len_and_getitem(self, rng):
        model = Sequential(Linear(3, 5, rng), ReLU())
        assert len(model) == 2
        assert isinstance(model[0], Linear)

    def test_registers_all_parameters(self, rng):
        model = Sequential(Linear(3, 5, rng), ReLU(), Linear(5, 2, rng))
        assert len(model.parameters()) == 4
