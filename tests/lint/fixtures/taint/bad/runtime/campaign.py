"""Known-bad: host identity crossing modules into a task key."""

from api.hashing import stable_hash
from runtime.ident import host_tag


def task_key(spec):
    tag = host_tag()
    return stable_hash({"spec": spec, "host": tag})
