"""The campaign engine: execute a task graph serially or on a pool.

:class:`CampaignEngine` takes a :class:`~repro.runtime.plan.CampaignPlan`
and runs its tasks in dependency order — in-process when ``workers <= 1``
(or when there is no artifact store to share artifacts through), on a
``ProcessPoolExecutor`` otherwise.  Both paths execute the *same* stage
implementations (:mod:`repro.runtime.worker`), so interactive runs,
sweeps and benchmarks cannot drift apart.

Failed tasks are retried (with a small jittered backoff drawn from the
task's own spawned seed sequence, so campaign behaviour is reproducible)
and their dependents are skipped once retries are exhausted.  Every run
produces a JSON campaign manifest — per-task status, timings and cache
hit/miss — written through the store under ``manifests/<campaign_id>``.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

import repro.obs as obs
from repro.api.store import ArtifactStore
from repro.runtime.plan import CampaignPlan, StageTask, plan_campaign
from repro.runtime.worker import run_task
from repro.utils.clock import utc_now_iso, wall_time_unix

__all__ = ["CampaignEngine", "CampaignResult", "run_campaign"]

#: Sentinel: "no store argument given" (``None`` means "no store").
_DEFAULT_STORE = object()


@dataclass
class CampaignResult:
    """Outcome of one engine run."""

    manifest: dict
    results: dict = field(default_factory=dict)
    manifest_path: Path | None = None

    @property
    def summary(self) -> dict:
        return self.manifest["summary"]

    @property
    def ok(self) -> bool:
        return self.summary["failed"] == 0 and self.summary["skipped"] == 0

    @property
    def cache_hits(self) -> int:
        return self.summary["cache_hits"]

    def failed_tasks(self) -> list[dict]:
        return [task for task in self.manifest["tasks"] if task["status"] == "error"]

    def __getitem__(self, task_id: str) -> dict:
        """Result payload of one completed task."""
        return self.results[task_id]

    def format_summary(self) -> str:
        summary = self.summary
        lines = [
            f"campaign {self.manifest['campaign_id']}: "
            f"{summary['done']}/{summary['total']} task(s) done, "
            f"{summary['cache_hits']} cache hit(s), "
            f"{summary['failed']} failed, {summary['skipped']} skipped "
            f"in {self.manifest['wall_time_s']:.1f}s "
            f"({self.manifest['workers']} worker(s))"
        ]
        for task in self.failed_tasks():
            last_line = task["error"].strip().splitlines()[-1]
            lines.append(f"  FAILED {task['id']}: {last_line}")
        if self.manifest_path is not None:
            lines.append(f"manifest: {self.manifest_path}")
        return "\n".join(lines)


class CampaignEngine:
    """Plans' executor: worker pool, retries, manifest.

    Args:
        store: artifact store shared by all tasks; defaults to the
            environment store.  ``store=None`` disables persistence and
            forces in-process execution (separate processes could not
            exchange artifacts).
        workers: worker processes; ``<= 1`` runs in-process.
        retries: how many times a failed task is re-attempted.
    """

    def __init__(self, store=_DEFAULT_STORE, workers: int = 1, retries: int = 1):
        self.store = ArtifactStore.from_env() if store is _DEFAULT_STORE else store
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.retries = retries

    def effective_workers(self, tasks: list[StageTask]) -> int:
        """The worker count this plan can actually use.

        Without a store, processes have no way to exchange artifacts, so
        any plan with dependencies or cacheable stages runs in-process;
        an embarrassingly parallel, uncacheable plan (e.g. a
        ``trace_stats`` fan-out) may still use the pool.
        """
        if self.store is None and any(task.deps or task.kind for task in tasks):
            return 1
        return max(1, min(self.workers, len(tasks)))

    def run(self, plan: CampaignPlan, context=None) -> CampaignResult:
        """Execute every task; returns results plus the manifest.

        ``context`` (serial path only) shares one
        :class:`~repro.core.pipeline.ExperimentContext`'s in-memory
        caches across tasks — the table runners pass theirs so
        interactive runs keep working without a store.  A context binds
        a single seed/scale, so it is only accepted for single-spec
        plans whose spec agrees with it.
        """
        if context is not None:
            hashes = {spec.spec_hash for spec in plan.specs}
            if len(hashes) > 1:
                raise ValueError(
                    "a shared context binds one seed/scale; multi-spec plans "
                    "must run without `context` (each task builds its own)"
                )
            if plan.specs and plan.specs[0].seed != context.seed:
                raise ValueError(
                    f"context seed {context.seed} does not match the plan's "
                    f"spec seed {plan.specs[0].seed}"
                )
            if plan.specs and not _scales_agree(plan.specs[0].to_scale(), context.scale):
                raise ValueError(
                    f"context scale {context.scale.name!r} does not resolve to the "
                    f"plan's spec scale {plan.specs[0].scale!r}; a mismatch would "
                    "store artifacts under the wrong cache keys"
                )
        # One wall-clock stamp for "when" (ISO-8601 UTC) and one
        # monotonic origin for every duration and per-task offset —
        # wall-clock steps (NTP, DST) can never corrupt timings.
        started_unix = wall_time_unix()
        started_at = utc_now_iso()
        clock = time.perf_counter()
        tasks = plan.ordered()
        workers = self.effective_workers(tasks)
        # Derived from the actual decision (not a restatement of the
        # effective_workers policy): serial despite a multi-task plan
        # that a pool could otherwise have used.
        downgraded = workers == 1 and self.workers > 1 and len(tasks) > 1
        engine_events: list[dict] = []
        if downgraded:
            # Structured event first (registry event log + tracer
            # instant + manifest), then the warning for compatibility
            # with callers filtering RuntimeWarning.
            event = obs.record_event(
                "runtime.downgraded_to_serial",
                campaign_id=plan.campaign_id,
                requested_workers=self.workers,
                reason="no artifact store shares artifacts across processes",
            )
            engine_events.append(
                event
                or {
                    "event": "runtime.downgraded_to_serial",
                    "time_unix": wall_time_unix(),
                    "campaign_id": plan.campaign_id,
                    "requested_workers": self.workers,
                    "reason": "no artifact store shares artifacts across processes",
                }
            )
            warnings.warn(
                f"campaign requested {self.workers} workers but runs serially: "
                "without an artifact store, processes cannot exchange artifacts "
                "for plans with dependencies or cacheable stages; pass a store "
                "(or ArtifactStore.from_env()) to parallelise",
                RuntimeWarning,
                stacklevel=2,
            )
        store_root = None if self.store is None else str(self.store.root)
        if workers <= 1:
            records = self._run_serial(plan, tasks, store_root, context, clock)
        else:
            records = self._run_pool(plan, tasks, store_root, workers, clock)
        ordered_records = [records[task.id] for task in tasks]
        manifest = self._manifest(plan, ordered_records, workers, started_unix, started_at)
        manifest["downgraded_to_serial"] = downgraded
        manifest["events"] = engine_events
        manifest["wall_time_s"] = time.perf_counter() - clock
        if obs.enabled():
            manifest["observability"] = self._observability(
                plan, ordered_records, workers, started_unix, manifest["wall_time_s"]
            )
        path = None
        if self.store is not None:
            path = self.store.put_manifest(plan.campaign_id, manifest)
        results = {
            record["id"]: record["result"]
            for record in ordered_records
            if record["status"] == "done"
        }
        return CampaignResult(manifest=manifest, results=results, manifest_path=path)

    # -- execution paths ----------------------------------------------------------

    def _attempts(self) -> int:
        return self.retries + 1

    @staticmethod
    def _dep_inputs(task: StageTask, records: dict) -> dict:
        """Completed dependency results, keyed by dependency task id
        (the ``inputs`` argument of the stage contract)."""
        inputs = {}
        for dep in task.deps:
            record = records.get(dep)
            if record is not None and record["status"] == "done":
                inputs[dep] = record["result"]
        return inputs

    def _execute_with_retry(self, plan, task, store_root, experiment, inputs) -> dict:
        record = None
        for attempt in range(self._attempts()):
            record = run_task(
                task.payload(store_root, plan.seed, attempt, inputs=inputs),
                experiment=experiment,
            )
            record["attempts"] = attempt + 1
            if record["status"] == "done":
                break
        return record

    def _run_serial(self, plan, tasks, store_root, context, clock) -> dict:
        experiments: dict[str, object] = {}
        records: dict[str, dict] = {}
        for task in self._topological(tasks):
            blocker = self._blocking_dep(task, records)
            if blocker is not None:
                records[task.id] = _skip_record(task, blocker, time.perf_counter() - clock)
                continue
            spec_hash = task.spec.spec_hash
            if spec_hash not in experiments:
                from repro.api.experiment import Experiment

                if context is not None:
                    experiments[spec_hash] = Experiment(task.spec, context=context)
                else:
                    experiments[spec_hash] = Experiment(task.spec, store=self.store)
            started_offset = time.perf_counter() - clock
            record = self._execute_with_retry(
                plan, task, store_root, experiments[spec_hash],
                self._dep_inputs(task, records),
            )
            record["started_offset_s"] = started_offset
            record["ended_offset_s"] = time.perf_counter() - clock
            records[task.id] = record
        return records

    def _run_pool(self, plan, tasks, store_root, workers, clock) -> dict:
        records: dict[str, dict] = {}
        attempts: dict[str, int] = {}
        waiting = {task.id: set(task.deps) for task in tasks}
        by_id = {task.id: task for task in tasks}
        dependents: dict[str, list[str]] = {task.id: [] for task in tasks}
        for task in tasks:
            for dep in task.deps:
                dependents[dep].append(task.id)

        ready = [task.id for task in tasks if not waiting[task.id]]
        in_flight = {}
        # Offsets observed on the engine's campaign clock (worker
        # perf_counters are not comparable across processes): first
        # submit → started, final settle → ended.
        submit_offsets: dict[str, float] = {}

        def resolve(task_id: str, record: dict) -> list[str]:
            """Record a final status; returns newly ready tasks."""
            now_offset = time.perf_counter() - clock
            record.setdefault("started_offset_s", submit_offsets.get(task_id, now_offset))
            record.setdefault("ended_offset_s", now_offset)
            records[task_id] = record
            newly_ready = []
            for child in dependents[task_id]:
                if record["status"] == "done":
                    waiting[child].discard(task_id)
                    if not waiting[child] and child not in records:
                        newly_ready.append(child)
                elif child not in records:
                    # Cascade the skip through the whole subtree.
                    newly_ready.extend(
                        resolve(child, _skip_record(by_id[child], task_id, now_offset))
                    )
            return newly_ready

        with ProcessPoolExecutor(max_workers=workers) as pool:
            while ready or in_flight:
                for task_id in ready:
                    if task_id in records:
                        continue
                    attempt = attempts.get(task_id, 0)
                    attempts[task_id] = attempt + 1
                    task = by_id[task_id]
                    submit_offsets.setdefault(task_id, time.perf_counter() - clock)
                    future = pool.submit(
                        run_task,
                        task.payload(
                            store_root, plan.seed, attempt,
                            inputs=self._dep_inputs(task, records),
                        ),
                    )
                    in_flight[future] = task_id
                ready = []
                if not in_flight:
                    continue
                done, _pending = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    task_id = in_flight.pop(future)
                    record = future.result()
                    record["attempts"] = attempts[task_id]
                    if record["status"] == "done":
                        ready.extend(resolve(task_id, record))
                    elif attempts[task_id] <= self.retries:
                        ready.append(task_id)  # retry
                    else:
                        ready.extend(resolve(task_id, record))
        return records

    @staticmethod
    def _topological(tasks: list[StageTask]) -> list[StageTask]:
        """Dependency-respecting order (plan order is already close)."""
        placed: set[str] = set()
        remaining = list(tasks)
        ordered = []
        while remaining:
            progressed = False
            deferred = []
            for task in remaining:
                if all(dep in placed for dep in task.deps):
                    ordered.append(task)
                    placed.add(task.id)
                    progressed = True
                else:
                    deferred.append(task)
            if not progressed:
                cycle = ", ".join(task.id for task in deferred)
                raise ValueError(f"dependency cycle in campaign plan: {cycle}")
            remaining = deferred
        return ordered

    @staticmethod
    def _blocking_dep(task: StageTask, records: dict) -> str | None:
        for dep in task.deps:
            record = records.get(dep)
            if record is not None and record["status"] != "done":
                return dep
        return None

    # -- manifest -----------------------------------------------------------------

    def _manifest(self, plan, records, workers, started_unix, started_at) -> dict:
        done = sum(1 for record in records if record["status"] == "done")
        failed = sum(1 for record in records if record["status"] == "error")
        skipped = sum(1 for record in records if record["status"] == "skipped")
        hits = sum(1 for record in records if record.get("cache_hit"))
        task_rows = []
        by_id = {task.id: task for task in plan.ordered()}
        for record in records:
            task = by_id[record["id"]]
            row = {
                "id": record["id"],
                "stage": record["stage"],
                "key": task.key,
                "kind": task.kind,
                "specs": list(task.spec_hashes),
                "status": record["status"],
                "attempts": record.get("attempts", 0),
                "cache_hit": bool(record.get("cache_hit")),
                "wall_time_s": record.get("wall_time_s", 0.0),
                "started_offset_s": record.get("started_offset_s", 0.0),
                "ended_offset_s": record.get("ended_offset_s", 0.0),
            }
            if record["status"] == "done":
                row["result"] = record["result"]
            elif record["status"] == "error":
                row["error"] = record["error"]
            else:
                row["skipped_because"] = record["skipped_because"]
            task_rows.append(row)
        return {
            "campaign_id": plan.campaign_id,
            "created_unix": started_unix,
            "started_at": started_at,
            "workers": workers,
            "retries": self.retries,
            "seed": plan.seed,
            "specs": [
                {"hash": spec.spec_hash, "spec": spec.to_dict()} for spec in plan.specs
            ],
            "tasks": task_rows,
            "summary": {
                "total": len(records),
                "done": done,
                "failed": failed,
                "skipped": skipped,
                "cache_hits": hits,
                "executed": done - hits,
            },
        }

    def _observability(self, plan, records, workers, started_unix, wall_s) -> dict:
        """The manifest's telemetry block: one campaign root span over
        every task's span tree, plus the merged worker metrics.

        Task records carry ``spans``/``metrics`` produced inside
        whichever process executed them (:func:`~repro.runtime.worker.run_task`);
        merging the per-task registry deltas yields the same counter
        totals whether the campaign ran serially or on a pool.  Pool
        deltas are additionally folded into this process's live
        registry so a long-lived host sees campaign totals too (serial
        tasks already recorded into it directly).
        """
        merged = obs.merge_snapshots(
            *(record.pop("metrics", None) or {} for record in records)
        )
        if workers > 1:
            obs.get_registry().merge(merged)
        children = []
        for record in records:
            children.extend(record.pop("spans", None) or ())
        root = {
            "name": f"campaign:{plan.campaign_id}",
            "start_us": started_unix * 1e6,
            "dur_us": wall_s * 1e6,
            "attrs": {
                "campaign_id": plan.campaign_id,
                "workers": workers,
                "tasks": len(records),
            },
            "children": children,
        }
        return {"metrics": merged, "spans": [root]}


def _scales_agree(spec_scale, context_scale) -> bool:
    """Whether two scales produce the same cache keys.

    Compares exactly the fields the artifact-store keys depend on, so a
    context trained at one scale can never persist artifacts under
    another scale's keys.
    """
    return (
        spec_scale.window == context_scale.window
        and spec_scale.n_runs == context_scale.n_runs
        and spec_scale.model_config() == context_scale.model_config()
        and spec_scale.pretrain_settings == context_scale.pretrain_settings
        and spec_scale.finetune_settings == context_scale.finetune_settings
        and spec_scale.fine_fraction == context_scale.fine_fraction
    )


def _skip_record(task: StageTask, blocker: str, offset_s: float = 0.0) -> dict:
    return {
        "id": task.id,
        "stage": task.stage,
        "status": "skipped",
        "skipped_because": blocker,
        "cache_hit": False,
        "attempts": 0,
        "wall_time_s": 0.0,
        "started_offset_s": offset_s,
        "ended_offset_s": offset_s,
    }


def run_campaign(
    specs,
    stages=None,
    store=_DEFAULT_STORE,
    workers: int = 1,
    retries: int = 1,
    seed: int = 0,
    context=None,
) -> CampaignResult:
    """Plan and run the standard pipeline over ``specs`` in one call."""
    plan = plan_campaign(specs, stages=None if stages is None else tuple(stages), seed=seed)
    engine = CampaignEngine(store=store, workers=workers, retries=retries)
    return engine.run(plan, context=context)
