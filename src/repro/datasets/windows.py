"""Sliding windows over packet traces.

Every training example is a window of ``window_len`` consecutive packets
ending at a "current" packet whose delay the model predicts (the paper's
pre-training task masks exactly that delay).  Windows never straddle
simulation runs.

Raw (unnormalised) feature columns, one row per packet:

0. ``rel_time`` — send time of the packet minus the send time of the
   window's last packet (non-positive; 0 for the last packet).  Using
   relative time keeps features stationary across a run.
1. ``size`` — packet size in bytes.
2. ``delay`` — end-to-end delay in seconds (the masked feature).

Receiver IDs ride in a parallel integer array; labels and message
metadata are per-window scalars about the *last* packet.  Two auxiliary
per-packet arrays (``mct_seq``, ``end_seq``) carry message-completion
information for the in-window baselines of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.trace import Trace

__all__ = ["WindowConfig", "WindowDataset", "windows_from_trace", "RAW_FEATURES"]

#: Order of the continuous feature columns.
RAW_FEATURES = ("rel_time", "size", "delay")


@dataclass(frozen=True)
class WindowConfig:
    """Windowing parameters.

    Args:
        window_len: packets per window (the paper uses 1024; the scaled
            default is 512).
        stride: spacing between consecutive window ends.  A stride above
            1 decorrelates examples and shrinks datasets to trainable
            sizes.
    """

    window_len: int = 512
    stride: int = 8

    def __post_init__(self):
        if self.window_len < 2:
            raise ValueError(f"window_len must be at least 2, got {self.window_len}")
        if self.stride < 1:
            raise ValueError(f"stride must be positive, got {self.stride}")


class WindowDataset:
    """Array-backed windows.

    Attributes:
        features: float64 ``(n, window_len, 3)`` raw feature columns.
        receiver: int64 ``(n, window_len)`` receiver ids (contiguous
            indices into the model's embedding table).
        delay_target: float64 ``(n,)`` true delay of each window's last
            packet, seconds.
        mct_target: float64 ``(n,)`` completion time of the last packet's
            message, seconds (``nan`` when unknown).
        message_size: float64 ``(n,)`` size of that message, bytes.
        mct_seq: float64 ``(n, window_len)`` per-packet message completion
            times (``nan`` when unknown).
        end_seq: bool ``(n, window_len)`` True where a packet ends its
            message.
    """

    def __init__(
        self,
        features: np.ndarray,
        receiver: np.ndarray,
        delay_target: np.ndarray,
        mct_target: np.ndarray,
        message_size: np.ndarray,
        mct_seq: np.ndarray | None = None,
        end_seq: np.ndarray | None = None,
    ):
        self.features = np.asarray(features, dtype=np.float64)
        self.receiver = np.asarray(receiver, dtype=np.int64)
        self.delay_target = np.asarray(delay_target, dtype=np.float64)
        self.mct_target = np.asarray(mct_target, dtype=np.float64)
        self.message_size = np.asarray(message_size, dtype=np.float64)
        n, window_len = self.features.shape[0], self.features.shape[1] if self.features.ndim == 3 else 0
        if mct_seq is None:
            mct_seq = np.full((n, window_len), np.nan)
        if end_seq is None:
            end_seq = np.zeros((n, window_len), dtype=bool)
        self.mct_seq = np.asarray(mct_seq, dtype=np.float64)
        self.end_seq = np.asarray(end_seq, dtype=bool)
        for name in ("receiver", "delay_target", "mct_target", "message_size", "mct_seq", "end_seq"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")
        if self.features.ndim != 3 or self.features.shape[2] != len(RAW_FEATURES):
            raise ValueError(
                f"features must be (n, window_len, {len(RAW_FEATURES)}), got {self.features.shape}"
            )

    def __len__(self) -> int:
        return len(self.features)

    @property
    def window_len(self) -> int:
        return self.features.shape[1]

    def subset(self, indices) -> "WindowDataset":
        """Select windows by integer index array or boolean mask."""
        return WindowDataset(
            self.features[indices],
            self.receiver[indices],
            self.delay_target[indices],
            self.mct_target[indices],
            self.message_size[indices],
            self.mct_seq[indices],
            self.end_seq[indices],
        )

    def sample_fraction(self, fraction: float, rng: np.random.Generator) -> "WindowDataset":
        """Uniformly subsample a fraction of windows (the paper's "10%"
        fine-tuning datasets)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(len(self) * fraction)))
        indices = rng.choice(len(self), size=count, replace=False)
        indices.sort()
        return self.subset(indices)

    @staticmethod
    def concatenate(datasets: list["WindowDataset"]) -> "WindowDataset":
        """Concatenate windows from several runs."""
        if not datasets:
            raise ValueError("need at least one dataset to concatenate")
        return WindowDataset(
            np.concatenate([d.features for d in datasets]),
            np.concatenate([d.receiver for d in datasets]),
            np.concatenate([d.delay_target for d in datasets]),
            np.concatenate([d.mct_target for d in datasets]),
            np.concatenate([d.message_size for d in datasets]),
            np.concatenate([d.mct_seq for d in datasets]),
            np.concatenate([d.end_seq for d in datasets]),
        )

    def with_completed_messages_only(self) -> "WindowDataset":
        """Drop windows whose MCT label is unknown (message truncated by
        the end of the simulation)."""
        mask = np.isfinite(self.mct_target) & (self.mct_target > 0)
        return self.subset(mask)


def windows_from_trace(
    trace: Trace,
    config: WindowConfig,
    receiver_index: dict[int, int],
) -> WindowDataset:
    """Slice one trace into windows.

    ``receiver_index`` maps raw receiver node ids to contiguous embedding
    indices; it must be shared across *all* traces of an experiment so a
    given receiver keeps its identity between pre-training and
    fine-tuning.
    """
    n_packets = len(trace)
    window_len = config.window_len
    if n_packets < window_len:
        return WindowDataset(
            np.zeros((0, window_len, len(RAW_FEATURES))),
            np.zeros((0, window_len), dtype=np.int64),
            np.zeros(0),
            np.zeros(0),
            np.zeros(0),
            np.zeros((0, window_len)),
            np.zeros((0, window_len), dtype=bool),
        )
    delays = trace.delay
    # Vectorised receiver-id remapping: look raw ids up in the sorted
    # key table (every id is guaranteed present in ``receiver_index``).
    keys = np.fromiter(receiver_index.keys(), dtype=np.int64, count=len(receiver_index))
    values = np.fromiter(
        receiver_index.values(), dtype=np.int64, count=len(receiver_index)
    )
    key_order = np.argsort(keys)
    sorted_keys = keys[key_order]
    raw_ids = trace.receiver_id.astype(np.int64)
    if not len(sorted_keys):
        raise KeyError(int(raw_ids[0]))
    positions = np.searchsorted(sorted_keys, raw_ids).clip(0, len(sorted_keys) - 1)
    unknown = sorted_keys[positions] != raw_ids
    if unknown.any():
        raise KeyError(int(raw_ids[unknown][0]))
    receiver_mapped = values[key_order][positions]
    ends = np.arange(window_len - 1, n_packets, config.stride)
    n_windows = len(ends)

    def window_view(column: np.ndarray) -> np.ndarray:
        """Zero-copy ``(n_windows, window_len)`` strided view of a trace
        column (the windows all start ``stride`` packets apart)."""
        sliding = np.lib.stride_tricks.sliding_window_view(column, window_len)
        return sliding[:: config.stride][:n_windows]

    features = np.empty((n_windows, window_len, len(RAW_FEATURES)), dtype=np.float64)
    send = window_view(trace.send_time)
    features[:, :, 0] = send
    features[:, :, 0] -= send[:, -1:]
    features[:, :, 1] = window_view(trace.size)
    features[:, :, 2] = window_view(delays)
    receiver = np.ascontiguousarray(window_view(receiver_mapped))
    # ``astype`` on the strided view materialises a fresh contiguous
    # array in one copy.
    mct_seq = window_view(trace.mct).astype(np.float64)
    end_seq = window_view(trace.is_message_end).astype(bool)
    delay_target = delays[ends].astype(np.float64)
    mct_target = trace.mct[ends].astype(np.float64)
    message_size = trace.message_size[ends].astype(np.float64)
    return WindowDataset(
        features, receiver, delay_target, mct_target, message_size, mct_seq, end_seq
    )
