"""Telemetry monitors.

The paper's future-work section (§5) discusses collecting telemetry such
as buffer occupancy alongside traces.  These monitors sample simulator
state periodically; they are used by tests, examples and the Fig. 4
trace-statistics benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.core import Simulator
from repro.netsim.link import Channel

__all__ = ["QueueMonitor", "ThroughputMonitor"]


class QueueMonitor:
    """Samples a channel's queue occupancy every ``interval`` seconds."""

    def __init__(self, sim: Simulator, channel: Channel, interval: float = 0.01):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.channel = channel
        self.interval = float(interval)
        self.times: list[float] = []
        self.occupancy: list[int] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling (first sample taken immediately)."""
        if self._running:
            raise RuntimeError("QueueMonitor already started")
        self._running = True
        self._sample()

    def _sample(self) -> None:
        self.times.append(self.sim.now)
        self.occupancy.append(self.channel.queue.occupancy)
        self.sim.schedule(self.interval, self._sample)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, occupancy)`` as numpy arrays."""
        return np.asarray(self.times), np.asarray(self.occupancy, dtype=np.int64)

    @property
    def mean_occupancy(self) -> float:
        return float(np.mean(self.occupancy)) if self.occupancy else 0.0

    @property
    def max_occupancy(self) -> int:
        return int(np.max(self.occupancy)) if self.occupancy else 0


class ThroughputMonitor:
    """Tracks bytes delivered through a channel per sampling window."""

    def __init__(self, sim: Simulator, channel: Channel, interval: float = 0.1):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.channel = channel
        self.interval = float(interval)
        self.times: list[float] = []
        self.throughput_bps: list[float] = []
        self._last_bytes = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            raise RuntimeError("ThroughputMonitor already started")
        self._running = True
        self._last_bytes = self.channel.bytes_sent
        self.sim.schedule(self.interval, self._sample)

    def _sample(self) -> None:
        sent = self.channel.bytes_sent
        delta = sent - self._last_bytes
        self._last_bytes = sent
        self.times.append(self.sim.now)
        self.throughput_bps.append(delta * 8.0 / self.interval)
        self.sim.schedule(self.interval, self._sample)

    @property
    def mean_throughput_bps(self) -> float:
        return float(np.mean(self.throughput_bps)) if self.throughput_bps else 0.0
