"""Known-bad lock fixture: cross-thread writes without the lock."""

import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = None
        self.status = "idle"

    def start(self):
        self._thread = threading.Thread(target=self._run)
        self.status = "starting"
        self._thread.start()

    def _run(self):
        self.status = "running"
