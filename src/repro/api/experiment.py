"""The experiment facade: one object from spec to results.

:class:`Experiment` ties a declarative
:class:`~repro.api.spec.ExperimentSpec` to an
:class:`~repro.api.store.ArtifactStore` and exposes the whole workflow —
traces, dataset bundles, the shared pre-trained NTT, fine-tuned models,
a serving :class:`~repro.api.predictor.Predictor` and the paper's table
runners — behind a handful of methods.  Every expensive step is
content-addressed, so re-running the same spec is served from disk.

    >>> from repro.api import Experiment, ExperimentSpec
    >>> exp = Experiment(ExperimentSpec(scenario="case1", scale="smoke"))
    >>> pre = exp.pretrained()          # trains once, then cache hits
    >>> predictor = exp.predictor()     # batched serving facade
"""

from __future__ import annotations

from repro.core.finetune import (
    FinetuneMode,
    FinetuneResult,
    finetune_delay,
    finetune_mct,
)
from repro.core.pipeline import (
    ExperimentContext,
    run_table1,
    run_table2,
    run_table3,
)
from repro.core.pretrain import PretrainResult
from repro.datasets.generation import DatasetBundle
from repro.netsim.scenarios import ScenarioKind
from repro.netsim.trace import Trace

from repro.api.predictor import Predictor
from repro.api.spec import ExperimentSpec
from repro.api.store import ArtifactStore, finetuned_key, pretrained_key

__all__ = ["Experiment"]

_TABLE_RUNNERS = {1: run_table1, 2: run_table2, 3: run_table3}

#: Sentinel: "no store argument given" (``None`` means "no store").
_DEFAULT_STORE = object()


class Experiment:
    """Spec-driven, store-backed experiment runner.

    Args:
        spec: the declarative experiment description; keyword arguments
            are accepted as a shorthand (``Experiment(scale="smoke")``).
        store: artifact store; when omitted the shared on-disk store
            (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) is used.  Pass
            ``store=None`` to disable persistence entirely.
    """

    def __init__(
        self,
        spec: ExperimentSpec | None = None,
        store=_DEFAULT_STORE,
        context: ExperimentContext | None = None,
        **spec_kwargs,
    ):
        if spec is None:
            spec = ExperimentSpec(**spec_kwargs)
        elif spec_kwargs:
            raise TypeError("pass either a spec or keyword fields, not both")
        self.spec = spec
        self.scale = spec.to_scale()
        if context is not None:
            # Bind to an existing context (the campaign engine's serial
            # path shares one context's in-memory caches across tasks).
            self.store = context.store if store is _DEFAULT_STORE else store
            self.context = context
        else:
            self.store = ArtifactStore.from_env() if store is _DEFAULT_STORE else store
            self.context = ExperimentContext(self.scale, store=self.store, seed=spec.seed)

    @classmethod
    def uncached(cls, spec: ExperimentSpec | None = None, **spec_kwargs) -> "Experiment":
        """An experiment that never touches the on-disk store."""
        return cls(spec, store=None, **spec_kwargs)

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash

    def __repr__(self) -> str:
        return (
            f"Experiment(scenario={self.spec.scenario!r}, scale={self.spec.scale!r}, "
            f"seed={self.spec.seed}, hash={self.spec_hash})"
        )

    # -- simulation ---------------------------------------------------------------

    def traces(self, scenario: str | None = None) -> list[Trace]:
        """Raw simulation traces for a scenario (store-backed)."""
        return self.context.traces(scenario or self.spec.scenario)

    # -- datasets -----------------------------------------------------------------

    def bundle(self, scenario: str | None = None) -> DatasetBundle:
        """The windowed dataset for this spec's (or a named) scenario."""
        return self.context.bundle(scenario or self.spec.scenario)

    # -- models -------------------------------------------------------------------

    def pretrained(self, precision: str | None = None) -> PretrainResult:
        """The shared pre-trained NTT (store-backed).

        ``precision`` defaults to the spec's ``stage_params`` knob
        (``{"pretrain": {"precision": "float32"}}``); float64 keeps the
        pre-policy behaviour and cache keys exactly.
        """
        if precision is None:
            precision = self.spec.params_for("pretrain").get("precision", "float64")
        return self.context.pretrained(precision=precision)

    def pretrain_variant(self, **overrides) -> PretrainResult:
        """An ablated pre-training variant (see
        :meth:`ExperimentContext.pretrain_variant`)."""
        return self.context.pretrain_variant(**overrides)

    def finetuned(
        self,
        scenario: str | None = None,
        task: str = "delay",
        mode: str = FinetuneMode.DECODER_ONLY,
        fraction: float | None = None,
        features=None,
        aggregation=None,
        precision: str | None = None,
    ) -> FinetuneResult:
        """Fine-tune the shared pre-trained model (store-backed).

        Args:
            scenario: target environment (default: the spec's scenario).
            task: ``delay`` or ``mct``.
            mode: which parameters train (``decoder_only`` / ``full``).
            fraction: subsample the fine-tuning data (the paper's 10%
                datasets); ``None`` uses the full bundle.
            features: :class:`FeatureSpec` ablation override — the base
                model becomes the corresponding pre-training variant.
            aggregation: :class:`AggregationSpec` ablation override.
            precision: compute dtype for the fine-tune (defaults to the
                spec's ``stage_params["finetune"]["precision"]`` knob,
                then float64).  Non-default precisions key their own
                cached checkpoints; float64 keys are untouched.
        """
        result, _pipeline = self._finetuned_with_pipeline(
            scenario, task, mode, fraction,
            features=features, aggregation=aggregation, precision=precision,
        )
        return result

    def _finetuned_with_pipeline(
        self, scenario, task, mode, fraction, features=None, aggregation=None,
        precision=None,
    ):
        """Fine-tune (or restore) a model plus the pipeline that feeds it."""
        if task not in ("delay", "mct"):
            raise ValueError(f"unknown task {task!r}; choose 'delay' or 'mct'")
        scenario = scenario or self.spec.scenario
        if precision is None:
            precision = self.spec.params_for("finetune").get("precision", "float64")
        # Ablation variants always pre-train at the default precision;
        # the spec-level knob addresses only the shared model (mirrors
        # repro.runtime.plan._base_pretrained_key).
        pretrain_precision = "float64"
        if features is None and aggregation is None:
            pretrain_precision = self.spec.params_for("pretrain").get(
                "precision", "float64"
            )
        settings = self.scale.finetune_settings
        base_config = self.scale.model_config(features=features, aggregation=aggregation)
        key = None
        if self.store is not None:
            from repro.api.stages import versioned_key
            from repro.api.store import precision_key

            base_key = precision_key(
                versioned_key(
                    "pretrain",
                    pretrained_key(
                        self.spec.scenario_config(ScenarioKind.PRETRAIN),
                        self.scale.window,
                        self.scale.n_runs,
                        base_config,
                        self.scale.pretrain_settings,
                    ),
                ),
                pretrain_precision,
            )
            key = precision_key(
                versioned_key(
                    "finetune",
                    finetuned_key(
                        base_key, self.spec.scenario_config(scenario), task, mode, fraction, settings
                    ),
                ),
                precision,
            )
            cached = self.store.get_finetuned(key)
            if cached is not None:
                return cached
        if features is None and aggregation is None:
            pre = self.pretrained(precision=pretrain_precision)
        else:
            pre = self.pretrain_variant(features=features, aggregation=aggregation)
        bundle = self.bundle(scenario)
        if fraction is not None:
            bundle = bundle.small_fraction(fraction)
        import copy

        if task == "delay":
            pipeline = pre.pipeline
            result = finetune_delay(
                copy.deepcopy(pre.model), pipeline, bundle, settings=settings, mode=mode,
                precision=precision,
            )
        else:
            # A fresh MCT scaler per fine-tune: finetune_mct fits it on
            # the first dataset it sees, so reusing the shared pipeline
            # would make the stored artifact depend on in-process call
            # order rather than on the cache key alone.
            from repro.core.features import FeaturePipeline

            pipeline = FeaturePipeline()
            pipeline.feature_scaler = pre.pipeline.feature_scaler
            pipeline.message_size_scaler = pre.pipeline.message_size_scaler
            result = finetune_mct(
                copy.deepcopy(pre.model), pre.model.config, pipeline, bundle,
                settings=settings, mode=mode, precision=precision,
            )
        if self.store is not None:
            self.store.put_finetuned(key, result, pipeline)
        return result, pipeline

    # -- serving ------------------------------------------------------------------

    def predictor(
        self,
        scenario: str | None = None,
        task: str = "delay",
        mode: str | None = None,
        fraction: float | None = None,
        batch_size: int = 256,
    ) -> Predictor:
        """A batched :class:`Predictor` over the fine-tuned model for
        this spec's scenario.

        When the scenario *is* the pre-training environment and the
        fine-tune options are left at their defaults, the pre-trained
        model is served directly; passing ``mode`` (even the
        ``decoder_only`` default) or ``fraction`` explicitly always
        triggers a real fine-tune.
        """
        scenario = scenario or self.spec.scenario
        is_default_finetune = mode is None and fraction is None
        mode = FinetuneMode.DECODER_ONLY if mode is None else mode
        if scenario == ScenarioKind.PRETRAIN and task == "delay" and is_default_finetune:
            pre = self.pretrained()
            return Predictor(pre.model, pre.pipeline, task="delay", batch_size=batch_size)
        result, pipeline = self._finetuned_with_pipeline(scenario, task, mode, fraction)
        return Predictor(result.model, pipeline, task=task, batch_size=batch_size)

    def save_checkpoint(self, path, task: str = "delay", **finetune_kwargs) -> None:
        """Export a self-describing checkpoint loadable by
        :meth:`Predictor.from_checkpoint` (and ``repro predict``)."""
        self.predictor(task=task, **finetune_kwargs).save(path)

    # -- the paper's evaluation ---------------------------------------------------

    def run_table(self, table: int) -> dict:
        """Run one of the paper's tables (1, 2 or 3) on this context."""
        try:
            runner = _TABLE_RUNNERS[int(table)]
        except (KeyError, ValueError):
            raise ValueError(
                f"unknown table {table!r}; choose from {sorted(_TABLE_RUNNERS)}"
            ) from None
        return runner(self.scale, self.context)
