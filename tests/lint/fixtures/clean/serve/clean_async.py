"""Clean asyncio fixture: only non-blocking primitives in async def."""

import asyncio


async def handler(reader, writer):
    await asyncio.sleep(0.01)
    data = await reader.read(1024)
    writer.write(data)
    await writer.drain()
    return data


async def fanout(jobs):
    return await asyncio.gather(*(asyncio.create_task(job()) for job in jobs))
