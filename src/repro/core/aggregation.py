"""Multi-timescale packet aggregation (§3, "Learning packet aggregation").

Attention cost grows quadratically with sequence length, so the NTT
aggregates a long packet history into a short element sequence *before*
the encoder: recent packets stay raw, older packets are aggregated once,
the oldest twice.  Aggregation is **learned** — each level owns a linear
projection over the concatenated embeddings of its block, like ViT's
patch embedding.

The paper aggregates 1024 packets → 48 elements but does not publish
block sizes; :class:`AggregationSpec` is the general mechanism, with
solved defaults documented in DESIGN.md:

* paper scale: ``[(10, 81), (22, 9), (16, 1)]`` — 10·81 + 22·9 + 16·1
  = 1024 packets → 48 elements (aggregation factor 9, applied twice for
  the oldest level).
* scaled default: ``[(8, 49), (14, 7), (22, 1)]`` — 8·49 + 14·7 + 22·1
  = 512 packets → 44 elements (factor 7).

Ablations from Table 1:

* *no aggregation* — ``AggregationSpec.none(n)``: the last ``n`` packets,
  each its own element (little history).
* *fixed aggregation* — ``AggregationSpec.fixed(count, block)``: uniform
  blocks (long history, no packet-level detail); the paper used 48
  aggregates of 21 packets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor, concat

__all__ = ["AggregationLevel", "AggregationSpec", "Aggregator"]


@dataclass(frozen=True)
class AggregationLevel:
    """``count`` output elements, each aggregating ``block`` packets."""

    count: int
    block: int

    def __post_init__(self):
        if self.count <= 0 or self.block <= 0:
            raise ValueError(f"count and block must be positive, got {self}")

    @property
    def packets(self) -> int:
        return self.count * self.block


@dataclass(frozen=True)
class AggregationSpec:
    """Ordered aggregation levels, **oldest first**."""

    levels: tuple[AggregationLevel, ...]

    def __post_init__(self):
        if not self.levels:
            raise ValueError("AggregationSpec needs at least one level")
        blocks = [level.block for level in self.levels]
        if blocks != sorted(blocks, reverse=True):
            raise ValueError(
                "levels must be ordered oldest (largest block) to newest "
                f"(smallest block); got blocks {blocks}"
            )

    @property
    def seq_len(self) -> int:
        """Packets consumed from the end of each window."""
        return sum(level.packets for level in self.levels)

    @property
    def out_len(self) -> int:
        """Elements handed to the transformer encoder."""
        return sum(level.count for level in self.levels)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs) -> "AggregationSpec":
        """Build from ``[(count, block), ...]`` oldest-first."""
        return cls(tuple(AggregationLevel(count, block) for count, block in pairs))

    @classmethod
    def multi_timescale_512(cls) -> "AggregationSpec":
        """Scaled default: 512 packets → 44 elements."""
        return cls.from_pairs([(8, 49), (14, 7), (22, 1)])

    @classmethod
    def multi_timescale_paper(cls) -> "AggregationSpec":
        """Paper scale: 1024 packets → 48 elements."""
        return cls.from_pairs([(10, 81), (22, 9), (16, 1)])

    @classmethod
    def none(cls, n_packets: int = 44) -> "AggregationSpec":
        """Table 1 "no aggregation": the last ``n_packets`` raw packets."""
        return cls.from_pairs([(n_packets, 1)])

    @classmethod
    def fixed(cls, count: int = 42, block: int = 12) -> "AggregationSpec":
        """Table 1 "fixed aggregation": uniform ``count`` x ``block``.

        Defaults give 42·12 = 504 packets → 42 elements at the scaled
        window; the paper used 48 aggregates of 21 packets (1008).
        """
        return cls.from_pairs([(count, block)])

    @classmethod
    def fixed_paper(cls) -> "AggregationSpec":
        return cls.from_pairs([(48, 21)])

    def describe(self) -> str:
        inner = ", ".join(f"{lv.count}x{lv.block}" for lv in self.levels)
        return f"[{inner}] ({self.seq_len} pkts -> {self.out_len} elems)"


class Aggregator(Module):
    """Learned hierarchical aggregation.

    Input: embedded packets ``(batch, seq_len, d_emb)`` where ``seq_len``
    matches the spec.  Each level reshapes its slice into blocks and
    projects the concatenated block embedding to ``d_model``.  Output:
    ``(batch, out_len, d_model)``, oldest elements first.
    """

    def __init__(self, spec: AggregationSpec, d_emb: int, d_model: int, rng: np.random.Generator):
        super().__init__()
        self.spec = spec
        self.d_emb = d_emb
        self.d_model = d_model
        self.projections = ModuleList(
            Linear(level.block * d_emb, d_model, rng) for level in spec.levels
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[1] != self.spec.seq_len or x.shape[2] != self.d_emb:
            raise ValueError(
                f"Aggregator expected (batch, {self.spec.seq_len}, {self.d_emb}), "
                f"got {x.shape}"
            )
        batch = x.shape[0]
        outputs = []
        offset = 0
        for level, projection in zip(self.spec.levels, self.projections):
            chunk = x[:, offset : offset + level.packets, :]
            offset += level.packets
            grouped = chunk.reshape(batch, level.count, level.block * self.d_emb)
            outputs.append(projection(grouped))
        return concat(outputs, axis=1)

    def __repr__(self) -> str:
        return f"Aggregator({self.spec.describe()}, d_model={self.d_model})"
