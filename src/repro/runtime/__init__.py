"""``repro.runtime`` — the parallel campaign engine.

The layer between the :mod:`repro.api` facade and the training
pipeline: it takes *many* experiment specs, plans them as one
deduplicated task graph (traces → bundle → pretrain → finetune →
evaluate, collapsed by artifact-store key so shared stages run once),
and executes the graph either in-process or on a worker pool, with
retries, per-task spawned seed sequences and a JSON campaign manifest.

Pipelines are composed of *registered stages*
(:data:`~repro.api.stages.STAGE_REGISTRY`): the built-in chain, the
§5 extension stages (``federated_pretrain``, ``drift_monitor``) and any
stage registered through :func:`~repro.api.stages.register_stage` all
plan, cache, parallelise and manifest identically.

Quickstart::

    from repro.runtime import expand_grid, run_campaign

    specs = expand_grid(scenarios=["pretrain", "case1"], seeds=[0, 1],
                        scales=["smoke"])
    result = run_campaign(specs, workers=2)
    print(result.format_summary())          # statuses, timings, hits
    print(result.manifest_path)             # the JSON manifest

The same engine backs ``repro sweep``, the paper's table runners and
the benchmark fan-outs.  The legacy stage tuples (``DEFAULT_STAGES``,
``SWEEP_STAGES``, ``STAGES``) remain importable as deprecation shims
derived from the registry.
"""

from repro.api.stages import STAGE_REGISTRY, Stage, register_stage
from repro.runtime.engine import CampaignEngine, CampaignResult, run_campaign
from repro.runtime.journal import CampaignJournal, JournalState, read_journal
from repro.runtime.plan import (
    CampaignPlan,
    StageTask,
    plan_campaign,
    plan_table,
    spec_for_scale,
)
from repro.runtime.policy import RetryPolicy
from repro.runtime.sweep import expand_grid, specs_from_file
from repro.runtime.worker import execute_stage, run_task

__all__ = [
    "CampaignEngine",
    "CampaignResult",
    "run_campaign",
    "RetryPolicy",
    "CampaignJournal",
    "JournalState",
    "read_journal",
    "CampaignPlan",
    "StageTask",
    "plan_campaign",
    "plan_table",
    "spec_for_scale",
    "expand_grid",
    "specs_from_file",
    "execute_stage",
    "run_task",
    "Stage",
    "STAGE_REGISTRY",
    "register_stage",
    "DEFAULT_STAGES",
    "SWEEP_STAGES",
    "STAGES",
]


def __getattr__(name: str):
    # Deprecation shims: live views of the registry (see repro.runtime.plan).
    if name in ("DEFAULT_STAGES", "SWEEP_STAGES", "STAGES"):
        from repro.runtime import plan

        return getattr(plan, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
