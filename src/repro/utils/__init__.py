"""Shared utilities: seeded RNG management, running statistics, logging."""

from repro.utils.rng import RngFactory, new_rng
from repro.utils.stats import OnlineStats, ewma, percentile_summary

__all__ = ["RngFactory", "new_rng", "OnlineStats", "ewma", "percentile_summary"]
