"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scenario == "pretrain"
        assert args.scale == "smoke"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "bogus"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["--version"])
        assert exit_info.value.code == 0


class TestCommands:
    def test_simulate_prints_report(self, capsys):
        assert main(["simulate", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "delays (ms)" in out

    def test_simulate_saves_trace(self, tmp_path, capsys):
        output = tmp_path / "trace.npz"
        assert main(["simulate", "--scale", "smoke", "--output", str(output)]) == 0
        assert output.exists()
        from repro.netsim.trace import Trace

        assert len(Trace.load(output)) > 0

    def test_report_prints_dataset(self, capsys):
        assert main(["report", "--scale", "smoke"]) == 0
        assert "windows" in capsys.readouterr().out

    def test_pretrain_then_evaluate_roundtrip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--scale", "smoke", "--epochs", "1", "--output", str(checkpoint),
        ]) == 0
        assert checkpoint.exists()
        assert main([
            "evaluate", str(checkpoint), "--scale", "smoke", "--scenario", "case1",
        ]) == 0
        out = capsys.readouterr().out
        assert "checkpoint delay MSE" in out
        assert "baseline last_observed" in out
