"""Tests for losses, optimizers, schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn.losses import huber_loss, l1_loss, mse_loss
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.schedule import constant, step_decay, warmup_cosine, warmup_linear
from repro.nn.tensor import Tensor
from repro.nn.testing import gradcheck


class TestLosses:
    def test_mse_zero_for_equal(self):
        x = Tensor(np.ones((3, 2)))
        assert mse_loss(x, Tensor(np.ones((3, 2)))).item() == 0.0

    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert mse_loss(pred, target).item() == pytest.approx(5.0)

    def test_mse_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.ones((3, 1))), Tensor(np.ones(3)))

    def test_l1_value(self):
        pred = Tensor(np.array([2.0, -2.0]))
        target = Tensor(np.zeros(2))
        assert l1_loss(pred, target).item() == pytest.approx(2.0)

    def test_huber_quadratic_region(self):
        pred = Tensor(np.array([0.5]))
        target = Tensor(np.array([0.0]))
        assert huber_loss(pred, target, delta=1.0).item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        pred = Tensor(np.array([3.0]))
        target = Tensor(np.array([0.0]))
        assert huber_loss(pred, target, delta=1.0).item() == pytest.approx(2.5)

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(Tensor(np.ones(2)), Tensor(np.ones(2)), delta=0.0)

    def test_mse_gradcheck(self, rng):
        target = rng.normal(size=(4, 2))
        gradcheck(lambda t: mse_loss(t[0], Tensor(target)), [rng.normal(size=(4, 2))])

    def test_huber_gradcheck(self, rng):
        target = np.zeros((3,))
        # Stay away from the |e| = delta kink.
        pred = np.array([0.2, 2.5, -3.0])
        gradcheck(lambda t: huber_loss(t[0], Tensor(target)), [pred])


def quadratic_problem(optimizer_factory, steps=200):
    """Minimise ||x - 3||²; returns the final parameter value."""
    x = Parameter(np.zeros(4))
    optimizer = optimizer_factory([x])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((x - 3.0) * (x - 3.0)).sum()
        loss.backward()
        optimizer.step()
    return x.data


class TestOptimizers:
    def test_sgd_converges(self):
        final = quadratic_problem(lambda p: SGD(p, lr=0.1))
        assert np.allclose(final, 3.0, atol=1e-3)

    def test_sgd_momentum_converges(self):
        final = quadratic_problem(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert np.allclose(final, 3.0, atol=1e-2)

    def test_adam_converges(self):
        final = quadratic_problem(lambda p: Adam(p, lr=0.1), steps=400)
        assert np.allclose(final, 3.0, atol=1e-2)

    def test_adamw_decays_weights(self):
        x = Parameter(np.full(3, 10.0))
        optimizer = AdamW([x], lr=0.01, weight_decay=0.5)
        x.grad = np.zeros(3)
        optimizer.steps = 0
        optimizer.step()
        assert np.all(np.abs(x.data) < 10.0)

    def test_skip_parameters_without_grad(self):
        x = Parameter(np.ones(2))
        optimizer = SGD([x], lr=0.1)
        optimizer.step()  # no grad: no change, no crash
        assert np.allclose(x.data, 1.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.9))

    def test_adam_first_step_bias_correction(self):
        """After one step with unit gradient, Adam moves by ~lr exactly."""
        x = Parameter(np.zeros(1))
        optimizer = Adam([x], lr=0.5)
        x.grad = np.ones(1)
        optimizer.step()
        assert x.data[0] == pytest.approx(-0.5, rel=1e-6)

    def test_zero_grad_via_optimizer(self):
        x = Parameter(np.ones(2))
        x.grad = np.ones(2)
        SGD([x], lr=0.1).zero_grad()
        assert x.grad is None


class TestClipGradNorm:
    def test_no_clipping_below_threshold(self):
        x = Parameter(np.ones(4))
        x.grad = np.full(4, 0.1)
        norm = clip_grad_norm([x], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        assert np.allclose(x.grad, 0.1)

    def test_clipping_scales_to_max(self):
        x = Parameter(np.ones(4))
        x.grad = np.full(4, 10.0)
        clip_grad_norm([x], max_norm=1.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0, rel=1e-6)

    def test_empty_grads(self):
        assert clip_grad_norm([Parameter(np.ones(2))], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedules:
    def test_constant(self):
        schedule = constant()
        assert schedule(0) == schedule(1000) == 1.0

    def test_warmup_cosine_shape(self):
        schedule = warmup_cosine(10, 100)
        assert schedule(0) < schedule(9)
        assert schedule(9) == pytest.approx(1.0)
        assert schedule(99) < 0.01
        assert schedule(500) >= 0.0  # beyond total: clamped

    def test_warmup_cosine_floor(self):
        schedule = warmup_cosine(5, 50, floor=0.1)
        assert schedule(49) >= 0.1

    def test_warmup_cosine_validation(self):
        with pytest.raises(ValueError):
            warmup_cosine(100, 50)

    def test_warmup_linear(self):
        schedule = warmup_linear(10, 110)
        assert schedule(10) == pytest.approx(1.0, abs=0.1)
        assert schedule(110) == pytest.approx(0.0, abs=1e-9)

    def test_step_decay(self):
        schedule = step_decay(10, factor=0.5)
        assert schedule(5) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            step_decay(0)
        with pytest.raises(ValueError):
            step_decay(10, factor=0.0)
