"""Clients for the serving runtime: a sync facade and a load generator.

Two callers, two tools:

* :class:`ServingClient` — a synchronous ``http.client`` wrapper for
  scripts and tests: ``healthz()``, ``models()``, ``metrics()``,
  ``predict()``.
* :func:`run_load` — the in-repo load generator behind the serving
  benchmark and the CI smoke job: ``concurrency`` keep-alive
  connections fire a prepared request list at the server as fast as it
  answers, measuring per-request latency client-side.  Request bodies
  are JSON-encoded **before** the clock starts, so the measurement is
  the serving system (parse + batch + forward + respond), not the
  generator.

``python -m repro.serve.client --host H --port P --seconds 3`` runs a
synthetic smoke load against a live server and prints a JSON report —
the CI serving job greps it for non-empty metrics.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import sys
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["ServingClient", "LoadResult", "run_load", "main"]


class ServingClient:
    """Minimal synchronous client for one serving endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            document = json.loads(response.read().decode("utf-8"))
            if response.status != 200:
                raise RuntimeError(
                    f"{method} {path} -> {response.status}: "
                    f"{document.get('error', document)}"
                )
            return document
        finally:
            connection.close()

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def models(self) -> dict:
        return self._request("GET", "/models")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def predict(
        self,
        features,
        receiver,
        message_size=None,
        model: str | None = None,
    ) -> np.ndarray:
        body = {
            "features": np.asarray(features).tolist(),
            "receiver": np.asarray(receiver).tolist(),
        }
        if message_size is not None:
            body["message_size"] = np.asarray(message_size).tolist()
        if model is not None:
            body["model"] = model
        document = self._request("POST", "/predict", body)
        return np.asarray(document["predictions"], dtype=np.float64)

    def wait_ready(self, timeout: float = 30.0, interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the server answers (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (OSError, RuntimeError, json.JSONDecodeError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)


@dataclass
class LoadResult:
    """What one load-generator run measured."""

    predictions: list  # per request, in request order
    latencies_s: np.ndarray
    wall_s: float
    requests: int
    windows: int
    errors: int

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def predictions_per_s(self) -> float:
        return self.windows / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentiles_ms(self) -> dict:
        if self.latencies_s.size == 0:
            return {"p50": None, "p95": None, "p99": None}
        p50, p95, p99 = np.percentile(self.latencies_s, (50.0, 95.0, 99.0))
        return {"p50": p50 * 1e3, "p95": p95 * 1e3, "p99": p99 * 1e3}

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "windows": self.windows,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "requests_per_s": self.requests_per_s,
            "predictions_per_s": self.predictions_per_s,
            "latency_ms": self.latency_percentiles_ms(),
        }


async def _read_http_response(reader) -> tuple[int, bytes]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _load_worker(
    host: str,
    port: int,
    bodies: list[bytes],
    queue: "asyncio.Queue[int]",
    results: list,
    latencies: list,
    errors: list,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        while True:
            try:
                index = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            body = bodies[index]
            head = (
                f"POST /predict HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("latin-1")
            started = time.monotonic()
            writer.write(head + body)
            await writer.drain()
            status, payload = await _read_http_response(reader)
            latencies.append(time.monotonic() - started)
            if status == 200:
                results[index] = json.loads(payload.decode("utf-8"))["predictions"]
            else:
                errors.append((index, status))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _run_load_async(
    host: str, port: int, bodies: list[bytes], concurrency: int
) -> LoadResult:
    queue: asyncio.Queue[int] = asyncio.Queue()
    for index in range(len(bodies)):
        queue.put_nowait(index)
    results: list = [None] * len(bodies)
    latencies: list = []
    errors: list = []
    started = time.monotonic()
    workers = [
        _load_worker(host, port, bodies, queue, results, latencies, errors)
        for _ in range(min(concurrency, len(bodies)))
    ]
    await asyncio.gather(*workers)
    wall = time.monotonic() - started
    windows = sum(len(row) for row in results if row is not None)
    return LoadResult(
        predictions=results,
        latencies_s=np.asarray(latencies, dtype=np.float64),
        wall_s=wall,
        requests=len(bodies),
        windows=windows,
        errors=len(errors),
    )


def run_load(
    host: str,
    port: int,
    requests: list[dict],
    concurrency: int = 8,
) -> LoadResult:
    """Fire a prepared request list at a server, concurrently.

    Args:
        host/port: a live serving endpoint.
        requests: one dict per request — the ``/predict`` JSON schema
            (``features`` / ``receiver`` lists, optional
            ``message_size`` / ``model``).
        concurrency: simultaneous keep-alive connections.

    Returns a :class:`LoadResult`; ``predictions[i]`` answers
    ``requests[i]`` regardless of completion order.
    """
    bodies = [json.dumps(request).encode("utf-8") for request in requests]
    return asyncio.run(_run_load_async(host, port, bodies, concurrency))


def _synthetic_requests(
    n_requests: int, windows_per_request: int, window_len: int, rng
) -> list[dict]:
    """Random pretrain-shaped request bodies (load-smoke traffic)."""
    requests = []
    for _ in range(n_requests):
        requests.append(
            {
                "features": np.abs(
                    rng.normal(0.0, 1.0, size=(windows_per_request, window_len, 3))
                ).tolist(),
                "receiver": rng.integers(
                    0, 4, size=(windows_per_request, window_len)
                ).tolist(),
            }
        )
    return requests


def main(argv: list[str] | None = None) -> int:
    """CLI load smoke: hammer a live server, print a JSON report."""
    parser = argparse.ArgumentParser(description="repro.serve load generator")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--seconds", type=float, default=3.0,
                        help="keep firing batches of requests for this long")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--requests", type=int, default=64,
                        help="requests per firing round")
    parser.add_argument("--windows", type=int, default=4,
                        help="feature windows per request")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    client = ServingClient(args.host, args.port)
    health = client.wait_ready()
    models = client.models()
    window_len = models["models"][0].get("min_window_len", 64)
    rng = np.random.default_rng(args.seed)
    requests = _synthetic_requests(args.requests, args.windows, window_len, rng)

    rounds = []
    deadline = time.monotonic() + args.seconds
    while time.monotonic() < deadline:
        rounds.append(run_load(args.host, args.port, requests, args.concurrency))
    total_requests = sum(r.requests for r in rounds)
    total_windows = sum(r.windows for r in rounds)
    total_errors = sum(r.errors for r in rounds)
    wall = sum(r.wall_s for r in rounds)
    latencies = np.concatenate([r.latencies_s for r in rounds]) if rounds else np.zeros(0)
    merged = LoadResult(
        predictions=[],
        latencies_s=latencies,
        wall_s=wall,
        requests=total_requests,
        windows=total_windows,
        errors=total_errors,
    )
    report = {
        "health": health,
        "rounds": len(rounds),
        "load": merged.summary(),
        "server_metrics": client.metrics(),
    }
    print(json.dumps(report, indent=2))
    if total_errors or total_windows == 0:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI serving job
    sys.exit(main())
