"""Asyncio HTTP front for the serving runtime (stdlib only).

A :class:`PredictionServer` glues the pieces together: the
:class:`~repro.serve.manager.ModelManager` resolves and warms models,
one :class:`~repro.serve.batcher.MicroBatcher` per model coalesces
concurrent requests, and a 1-thread prediction lane runs the fused
forwards while the event loop keeps accepting traffic.

Endpoints (all JSON):

* ``POST /predict`` — body ``{"model": <ref, optional>, "features":
  [[[...]]], "receiver": [[...]], "message_size": [...]}``; response
  ``{"model": ..., "task": ..., "predictions": [...], "windows": n,
  "served_ms": t}``.
* ``GET /models`` — configured refs, per-model descriptions, warm-LRU
  state and load/eviction counters.
* ``GET /healthz`` — liveness (``{"status": "ok", ...}``).
* ``GET /metrics`` — the :class:`~repro.serve.metrics.ServingMetrics`
  snapshot: predictions/sec, batch-occupancy histogram, p50/p95/p99
  request latency.  JSON by default; the Prometheus text exposition
  (0.0.4) when the request asks for it via ``?format=prometheus`` or
  an ``Accept: text/plain`` header — the text form also folds in the
  process-global ``repro.obs`` registry, so one scrape covers
  everything the process recorded.

The HTTP layer itself is a deliberately small HTTP/1.1 subset —
request line + headers + ``Content-Length`` body, keep-alive by
default — implemented on ``asyncio`` streams so the server needs no
dependency beyond the standard library.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.serve.batcher import BatcherConfig, BatcherSaturated, MicroBatcher
from repro.serve.manager import ModelManager, ModelNotFound
from repro.serve.metrics import ServingMetrics

__all__ = ["ServerConfig", "PredictionServer", "ServerHandle"]

_MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` configures."""

    models: tuple[str, ...]
    host: str = "127.0.0.1"
    port: int = 8080
    precision: str = "float64"
    lru_capacity: int = 4
    max_batch_windows: int = 64
    max_wait_us: float = 2000.0
    batch_size: int = 1024
    max_pending_windows: int = 4096

    def __post_init__(self):
        if not self.models:
            raise ValueError("the server needs at least one model ref")


class _RequestError(Exception):
    """A client-caused failure: reported as an HTTP 4xx JSON body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class PredictionServer:
    """The long-lived serving runtime behind ``repro serve``."""

    def __init__(self, config: ServerConfig, manager: ModelManager | None = None):
        self.config = config
        self.manager = manager or ModelManager(
            capacity=config.lru_capacity,
            precision=config.precision,
            batch_size=config.batch_size,
        )
        self.metrics = ServingMetrics()
        self.batcher_config = BatcherConfig(
            max_batch_windows=config.max_batch_windows,
            max_wait_us=config.max_wait_us,
            max_pending_windows=config.max_pending_windows,
        )
        self.executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="predict")
        self.default_model = config.models[0]
        self._batchers: dict[str, MicroBatcher] = {}
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 picks a free one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drain in-flight micro-batches, release the lane."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for batcher in self._batchers.values():
            await batcher.drain()
        self.executor.shutdown(wait=True)

    # -- connection handling ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, body, keep_alive, headers = request
                started = time.monotonic()
                if method == "POST" and target == "/predict":
                    status, payload, extra_headers = await self._predict(body)
                    self.metrics.record_request(
                        time.monotonic() - started, error=status != 200
                    )
                else:
                    status, payload = self._route_get(method, target, headers)
                    extra_headers = None
                self._write_response(writer, status, payload, keep_alive, extra_headers)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            _RequestError,
        ):
            pass  # client went away or spoke garbage; drop the connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader):
        """One parsed request, or ``None`` on a cleanly closed connection."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _RequestError(400, "malformed request line")
        method, target, version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _RequestError(400, "bad Content-Length") from None
        if not 0 <= length <= _MAX_BODY_BYTES:
            raise _RequestError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "").lower() != "close" and (
            version != "HTTP/1.0"
        )
        return method, target, body, keep_alive, headers

    @staticmethod
    def _write_response(
        writer, status: int, payload, keep_alive: bool, extra_headers: dict | None = None
    ) -> None:
        """``dict`` payloads go out as JSON; ``str`` payloads as the
        Prometheus text exposition (0.0.4)."""
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        extras = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extras}"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)

    # -- routing ------------------------------------------------------------------

    def _route_get(self, method: str, target: str, headers: dict) -> tuple[int, dict | str]:
        path, _, query = target.partition("?")
        if path == "/predict":
            return 405, {"error": "POST JSON to /predict"}
        if method != "GET":
            return 405, {"error": f"unsupported method {method}"}
        if path == "/healthz":
            return 200, {
                "status": "ok",
                "default_model": self.default_model,
                "uptime_s": self.metrics.snapshot()["uptime_s"],
            }
        if path == "/metrics":
            if self._wants_prometheus(query, headers):
                extras = [self._manager_snapshot()]
                if obs.enabled():
                    extras.append(obs.get_registry().snapshot())
                return 200, self.metrics.to_prometheus(*extras)
            snapshot = self.metrics.snapshot()
            snapshot["model_loads_total"] = self.manager.loads_total
            snapshot["model_evictions_total"] = self.manager.evictions_total
            return 200, snapshot
        if target == "/models":
            rows = []
            for ref in self.config.models:
                try:
                    rows.append(self.manager.describe(ref))
                except ModelNotFound as error:
                    rows.append({"ref": ref, "error": str(error)})
            return 200, {
                "models": rows,
                "default": self.default_model,
                "warm": self.manager.warm_refs(),
                "loads_total": self.manager.loads_total,
                "evictions_total": self.manager.evictions_total,
            }
        return 404, {"error": f"no route {target!r}"}

    @staticmethod
    def _wants_prometheus(query: str, headers: dict) -> bool:
        """``?format=prometheus`` wins; else an ``Accept`` preferring
        plain text (what ``curl -H 'Accept: text/plain'`` and a
        Prometheus scraper send) selects the text exposition."""
        if "format=prometheus" in query.split("&"):
            return True
        if "format=json" in query.split("&"):
            return False
        accept = headers.get("accept", "")
        return "text/plain" in accept or "openmetrics" in accept

    def _manager_snapshot(self) -> dict:
        """The model manager's counters as a registry-shaped snapshot."""
        counters = {}
        for name, value in (
            ("serve.model_loads_total", self.manager.loads_total),
            ("serve.model_evictions_total", self.manager.evictions_total),
        ):
            counters[name] = {"name": name, "labels": {}, "value": value}
        return {"counters": counters}

    async def _predict(self, body: bytes) -> tuple[int, dict, dict | None]:
        try:
            payload = self._parse_predict(body)
        except _RequestError as error:
            return error.status, {"error": str(error)}, None
        ref, features, receiver, message_size = payload
        started = time.monotonic()
        try:
            predictor = self.manager.get(ref)
            batcher = self._batcher_for(ref, predictor)
            predictions = await batcher.submit(features, receiver, message_size)
        except ModelNotFound as error:
            return 404, {"error": str(error)}, None
        except BatcherSaturated as error:
            retry_after = max(1, math.ceil(error.retry_after_s))
            return (
                503,
                {"error": str(error), "retry_after_s": error.retry_after_s},
                {"Retry-After": str(retry_after)},
            )
        except ValueError as error:
            return 400, {"error": str(error)}, None
        return 200, {
            "model": ref,
            "task": predictor.task,
            "precision": predictor.precision,
            "predictions": predictions.tolist(),
            "windows": len(predictions),
            "served_ms": (time.monotonic() - started) * 1e3,
        }, None

    def _parse_predict(self, body: bytes):
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _RequestError(400, "request body is not valid JSON") from None
        if not isinstance(document, dict):
            raise _RequestError(400, "request body must be a JSON object")
        ref = document.get("model", self.default_model)
        if not isinstance(ref, str):
            raise _RequestError(400, "'model' must be a string ref")
        if "features" not in document or "receiver" not in document:
            raise _RequestError(400, "'features' and 'receiver' are required")
        try:
            features = np.asarray(document["features"], dtype=np.float64)
            receiver = np.asarray(document["receiver"], dtype=np.int64)
        except (TypeError, ValueError):
            raise _RequestError(
                400, "'features'/'receiver' must be rectangular numeric arrays"
            ) from None
        if features.size == 0 and receiver.size == 0:
            # JSON flattens empty arrays to [] and loses their shape;
            # normalise to the documented empty request.
            features = features.reshape(0, 0, 3)
            receiver = receiver.reshape(0, 0)
        message_size = None
        if document.get("message_size") is not None:
            try:
                message_size = np.asarray(document["message_size"], dtype=np.float64)
            except (TypeError, ValueError):
                raise _RequestError(400, "'message_size' must be numeric") from None
        return ref, features, receiver, message_size

    def _batcher_for(self, ref: str, predictor) -> MicroBatcher:
        batcher = self._batchers.get(ref)
        if batcher is None or batcher.predictor is not predictor:
            # First sight of this model, or the LRU evicted and reloaded
            # it — either way the batcher follows the warm instance.
            batcher = MicroBatcher(
                predictor,
                config=self.batcher_config,
                metrics=self.metrics,
                executor=self.executor,
            )
            self._batchers[ref] = batcher
        return batcher


class ServerHandle:
    """A server running on a background thread (examples, tests, benchmarks).

    The asyncio loop lives on the thread; :meth:`stop` drains the
    batchers and joins it.  Usable as a context manager.
    """

    def __init__(self, server: PredictionServer):
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop_event: asyncio.Event | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-serve")
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("serving thread failed to start in time")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main():
            # asyncio.start_server begins accepting as soon as it binds;
            # this coroutine only has to stay alive until stop() flips
            # the event, then shut down inside the loop (no cross-thread
            # coroutine scheduling races).
            self._stop_event = asyncio.Event()
            await self.server.start()
            self._started.set()
            await self._stop_event.wait()
            await self.server.stop()
            pending = [
                task for task in asyncio.all_tasks() if task is not asyncio.current_task()
            ]
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)
        if self._thread.is_alive():  # pragma: no cover - diagnostics only
            raise RuntimeError("serving thread failed to stop in time")

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
