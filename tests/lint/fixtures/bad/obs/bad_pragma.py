"""Known-bad pragma fixture: malformed `# repro:` comments."""

VALUE = 1  # repro: allow(determinism)
OTHER = 2  # repro: allow(made-up-rule): looks justified but names no rule
THIRD = 3  # repro: frobnicate
