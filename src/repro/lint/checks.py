"""The built-in lint rules.

Each rule encodes one repo convention that is otherwise enforced only
dynamically (golden gates, bit-identity tests) or not at all:

- ``determinism``: seeded ``np.random.Generator``/``SeedSequence`` are
  the only sanctioned randomness, and ``repro.utils.clock`` the only
  sanctioned wall-clock read, in code that feeds cache keys or traces.
- ``stage-purity``: registered stage bodies must be pure functions of
  their spec + store (that is what makes cache keys sound).
- ``hot-loop-alloc``: regions marked ``# repro: hot`` must not allocate
  per call — the PR 5 fused kernels and pooled scratch buffers exist
  precisely to avoid that.
- ``async-blocking``: nothing in a ``serve/`` coroutine may block the
  event loop.
- ``lock-discipline``: attributes written both from a thread entry
  point and from other methods in ``serve/``/``obs/`` must be written
  under a lock.
- ``pragma``: malformed ``# repro:`` comments are findings themselves,
  so a typo cannot silently disable a check.

All checks are name-based AST analysis: no imports are executed and no
type information exists, so the rules aim for high-signal conventions
(``np.random.seed``, ``time.time``, ``self._lock``) rather than full
alias analysis.  That is the right trade for a lint gate: cheap, zero
dependencies, and wrong rarely enough that ``allow()`` justifications
stay meaningful.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from .context import SourceModule
from .findings import Finding
from .rules import register_rule

__all__ = []  # rules register themselves; nothing to import by name

_NP_ROOTS = {"np", "numpy"}


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``np.random.seed`` -> ["np", "random", "seed"]; None if not a
    plain Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _call_chain(call: ast.Call) -> Optional[List[str]]:
    return _attr_chain(call.func)


def _iter_own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class
    definitions (each gets its own visit from the caller)."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

_NP_RANDOM_STATEFUL = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "bytes", "uniform", "normal", "standard_normal", "choice",
    "shuffle", "permutation", "get_state", "set_state",
}
_TIME_BANNED = {"time", "time_ns"}
_DATETIME_BANNED = {"now", "utcnow", "today"}
_KEY_FUNC_SUFFIX = "_key"

_DETERMINISM_SCOPES = (
    "analysis/", "api/", "core/", "datasets/", "extensions/",
    "netsim/", "nn/", "obs/", "runtime/", "testing/", "utils/", "lint/",
)


@register_rule(
    "determinism",
    severity="error",
    description=(
        "no module-level np.random state, stdlib random, or raw wall-clock "
        "reads in stage/kernel/netsim code; use RngFactory/SeedSequence and "
        "repro.utils.clock"
    ),
    scopes=_DETERMINISM_SCOPES,
)
def check_determinism(module: SourceModule) -> List[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    findings.append(module.finding(
                        node, "determinism",
                        "stdlib `random` is process-global state; draw from a "
                        "seeded np.random.Generator (SeedSequence-spawned) instead",
                    ))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                findings.append(module.finding(
                    node, "determinism",
                    "stdlib `random` is process-global state; draw from a "
                    "seeded np.random.Generator (SeedSequence-spawned) instead",
                ))
        elif isinstance(node, ast.Call):
            chain = _call_chain(node)
            if not chain:
                continue
            if len(chain) == 2 and chain[0] == "random":
                findings.append(module.finding(
                    node, "determinism",
                    f"`random.{chain[1]}()` uses the process-global RNG; use a "
                    "seeded np.random.Generator",
                ))
            elif (
                len(chain) == 3
                and chain[0] in _NP_ROOTS
                and chain[1] == "random"
                and chain[2] in _NP_RANDOM_STATEFUL
            ):
                findings.append(module.finding(
                    node, "determinism",
                    f"`np.random.{chain[2]}()` mutates/reads numpy's global RNG "
                    "state; use np.random.default_rng / SeedSequence spawning",
                ))
            elif (
                len(chain) == 2
                and chain[0] == "time"
                and chain[1] in _TIME_BANNED
            ):
                findings.append(module.finding(
                    node, "determinism",
                    "`time.time()` reads the wall clock; durations use "
                    "time.perf_counter(), timestamp metadata goes through "
                    "repro.utils.clock.wall_time_unix()",
                ))
            elif (
                len(chain) >= 2
                and chain[-1] in _DATETIME_BANNED
                and ("datetime" in chain[:-1] or "date" in chain[:-1])
            ):
                findings.append(module.finding(
                    node, "determinism",
                    f"`{'.'.join(chain)}()` reads the wall clock; timestamp "
                    "metadata goes through repro.utils.clock.utc_now_iso()",
                ))
            elif chain[-1] == "stable_hash" or chain[-1].endswith(_KEY_FUNC_SUFFIX):
                findings.extend(_set_order_in_key_args(module, node))
    return findings


def _set_order_in_key_args(module: SourceModule, call: ast.Call) -> List[Finding]:
    """Sets feeding a key/hash function: iteration order is salted per
    process, so the same logical inputs can hash differently.  A set
    wrapped in ``sorted(...)`` is order-neutralized and sanctioned."""
    findings = []

    def visit(node: ast.AST) -> None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            return  # sorted() erases iteration order; its subtree is fine
        is_set_node = isinstance(node, (ast.Set, ast.SetComp))
        is_set_call = (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )
        if is_set_node or is_set_call:
            chain = _call_chain(call) or ["<key>"]
            findings.append(module.finding(
                node, "determinism",
                f"set iteration order feeds `{chain[-1]}(...)`; sort it "
                "first so the key is byte-stable across processes",
            ))
        for child in ast.iter_child_nodes(node):
            visit(child)

    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        visit(arg)
    return findings


# ---------------------------------------------------------------------------
# stage-purity
# ---------------------------------------------------------------------------

_OS_FS_MUTATING = {
    "remove", "unlink", "rename", "replace", "mkdir", "makedirs", "rmdir",
    "removedirs", "symlink", "link", "chmod", "truncate", "putenv", "unsetenv",
}
_PATH_RW_METHODS = {
    "write_text", "write_bytes", "read_text", "read_bytes", "mkdir",
    "unlink", "touch", "rename", "replace", "symlink_to",
}
_MUTATOR_METHODS = {
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "insert", "remove", "discard", "write",
}


def _is_stage_registration(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    func = decorator.func
    if isinstance(func, ast.Name):
        return func.id == "register_stage"
    if isinstance(func, ast.Attribute):
        return func.attr in ("register_stage", "register")
    return False


def _module_level_names(tree: ast.Module) -> set:
    names = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _chain_touches_store(chain: List[str]) -> bool:
    return any("store" in part.lower() for part in chain)


@register_rule(
    "stage-purity",
    severity="error",
    description=(
        "registered stage bodies must be pure functions of spec + store: "
        "no os.environ, no module-global mutation, no filesystem access "
        "outside the ArtifactStore"
    ),
)
def check_stage_purity(module: SourceModule) -> List[Finding]:
    findings = []
    module_names = _module_level_names(module.tree)
    for fn in _functions(module.tree):
        if not any(_is_stage_registration(d) for d in fn.decorator_list):
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and node.attr == "environ":
                chain = _attr_chain(node)
                if chain and chain[0] == "os":
                    findings.append(module.finding(
                        node, "stage-purity",
                        "stage bodies must not read os.environ — environment "
                        "state is invisible to the cache key; thread it "
                        "through the spec instead",
                    ))
            elif isinstance(node, ast.Global):
                findings.append(module.finding(
                    node, "stage-purity",
                    "stage bodies must not rebind module globals; results "
                    "flow through the ArtifactStore",
                ))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    root = target
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if (
                        isinstance(root, ast.Name)
                        and root.id in module_names
                        and root is not target
                    ):
                        findings.append(module.finding(
                            node, "stage-purity",
                            f"stage body mutates module-level `{root.id}`; "
                            "stages must be pure so cached reruns are "
                            "indistinguishable from fresh ones",
                        ))
            elif isinstance(node, ast.Call):
                findings.extend(_stage_fs_call(module, node))
    return findings


def _stage_fs_call(module: SourceModule, call: ast.Call) -> List[Finding]:
    chain = _call_chain(call)
    if chain is None:
        return []
    if chain == ["open"]:
        return [module.finding(
            call, "stage-purity",
            "stage bodies must not open files directly; read/write through "
            "the ArtifactStore so outputs are content-addressed",
        )]
    if _chain_touches_store(chain):
        return []
    if chain[0] == "os" and chain[-1] in _OS_FS_MUTATING:
        return [module.finding(
            call, "stage-purity",
            f"`{'.'.join(chain)}()` touches the filesystem outside the "
            "ArtifactStore",
        )]
    if chain[0] == "shutil":
        return [module.finding(
            call, "stage-purity",
            f"`{'.'.join(chain)}()` touches the filesystem outside the "
            "ArtifactStore",
        )]
    if len(chain) >= 2 and chain[-1] in _PATH_RW_METHODS:
        return [module.finding(
            call, "stage-purity",
            f"`.{chain[-1]}()` reads/writes a path outside the ArtifactStore",
        )]
    return []


# ---------------------------------------------------------------------------
# hot-loop-alloc
# ---------------------------------------------------------------------------

_NP_ALLOCATORS = {
    "empty", "zeros", "ones", "full", "empty_like", "zeros_like",
    "ones_like", "full_like", "array", "asarray", "ascontiguousarray",
    "copy", "concatenate", "stack", "vstack", "hstack", "dstack",
    "column_stack", "tile", "repeat", "arange", "linspace", "logspace",
    "eye", "identity", "outer", "pad", "diff", "cumsum", "cumprod",
    "sort", "argsort", "unique",
}
_NP_UFUNCS_WANT_OUT = {
    "add", "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "power", "mod", "remainder", "sqrt", "exp", "log", "log1p", "expm1",
    "tanh", "sinh", "cosh", "sin", "cos", "abs", "absolute", "square",
    "negative", "reciprocal", "maximum", "minimum", "clip", "matmul", "dot",
    "where",
}
#: Attribute tails that are ndarrays by repo convention (Parameter.data /
#: Parameter.grad hold the training tensors).
_ARRAY_ATTR_TAILS = {"data", "grad"}
_ARRAY_METHOD_TAILS = {"copy", "astype", "reshape", "ravel", "view", "transpose"}


def _annotation_is_array(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:
        return False
    return "ndarray" in text


def _scope_array_names(scope: ast.AST) -> set:
    """Names bound to arrays within ``scope``, by forward syntactic
    inference (annotations, np.* results, scratch buffers, aliases)."""
    names: set = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if _annotation_is_array(arg.annotation):
                names.add(arg.arg)

    def produces_array(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in names
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            return bool(chain) and chain[-1] in _ARRAY_ATTR_TAILS
        if isinstance(expr, ast.Subscript):
            return produces_array(expr.value)
        if isinstance(expr, ast.BinOp):
            return produces_array(expr.left) or produces_array(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return produces_array(expr.operand)
        if isinstance(expr, ast.Call):
            chain = _call_chain(expr)
            if not chain:
                return False
            if chain[0] in _NP_ROOTS:
                return True
            if "scratch" in chain[-1]:
                return True
            if chain[-1] in _ARRAY_METHOD_TAILS and len(chain) >= 2:
                return chain[0] in names or chain[0] == "self"
            return False
        return False

    # Two passes so aliases of later-assigned arrays still resolve.
    for _ in range(2):
        for node in _iter_own_nodes(scope):
            if isinstance(node, ast.Assign) and produces_array(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_is_array(node.annotation) or (
                    node.value is not None and produces_array(node.value)
                ):
                    names.add(node.target.id)
    return names


def _binop_has_array_leaf(expr: ast.expr, names: set) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and sub.id in names:
            return True
        if isinstance(sub, ast.Attribute):
            chain = _attr_chain(sub)
            if chain and chain[-1] in _ARRAY_ATTR_TAILS:
                return True
    return False


@register_rule(
    "hot-loop-alloc",
    severity="warning",
    description=(
        "no fresh-array numpy calls, missing out=, or operator-form array "
        "temporaries inside `# repro: hot` regions; use the fastpath "
        "scratch pools and out= kernels"
    ),
)
def check_hot_loop_alloc(module: SourceModule) -> List[Finding]:
    if not module.hot_regions:
        return []
    findings = []
    scopes = [module.tree] + list(_functions(module.tree))
    for scope in scopes:
        scope_line = getattr(scope, "lineno", 1)
        scope_end = getattr(scope, "end_lineno", len(module.lines))
        if not any(
            module.in_hot_region(ln)
            for ln in (scope_line, scope_end)
        ) and not module.in_hot_region((scope_line + scope_end) // 2):
            continue
        names = _scope_array_names(scope)
        for node in _iter_own_nodes(scope):
            lineno = getattr(node, "lineno", None)
            if lineno is None or not module.in_hot_region(lineno):
                continue
            if isinstance(node, ast.Call):
                chain = _call_chain(node)
                if not chain or chain[0] not in _NP_ROOTS or len(chain) != 2:
                    continue
                if chain[1] in _NP_ALLOCATORS:
                    findings.append(module.finding(
                        node, "hot-loop-alloc",
                        f"`np.{chain[1]}(...)` allocates a fresh array in a "
                        "hot region; reuse a fastpath scratch buffer",
                        severity="warning",
                    ))
                elif chain[1] in _NP_UFUNCS_WANT_OUT and not any(
                    kw.arg == "out" for kw in node.keywords
                ):
                    findings.append(module.finding(
                        node, "hot-loop-alloc",
                        f"`np.{chain[1]}(...)` without out= allocates its "
                        "result in a hot region; pass out=<scratch>",
                        severity="warning",
                    ))
            elif isinstance(node, (ast.Assign, ast.Return)):
                value = node.value
                if isinstance(value, ast.BinOp) and _binop_has_array_leaf(
                    value, names
                ):
                    findings.append(module.finding(
                        node, "hot-loop-alloc",
                        "operator-form array arithmetic creates temporaries "
                        "in a hot region; use the out= ufunc forms",
                        severity="warning",
                    ))
    return findings


# ---------------------------------------------------------------------------
# async-blocking
# ---------------------------------------------------------------------------

_BLOCKING_ROOTS = {"socket", "urllib", "requests", "subprocess"}
_OS_BLOCKING = _OS_FS_MUTATING | {"read", "write", "popen", "system"}
_PATH_BLOCKING = {"read_text", "read_bytes", "write_text", "write_bytes"}


@register_rule(
    "async-blocking",
    severity="error",
    description=(
        "no synchronous sleep/file/socket calls inside async def in serve/; "
        "use asyncio primitives or run_in_executor"
    ),
    scopes=("serve/",),
)
def check_async_blocking(module: SourceModule) -> List[Finding]:
    findings = []
    for fn in _functions(module.tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for node in _iter_own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = _call_chain(node)
            if chain is None:
                continue
            dotted = ".".join(chain)
            if chain == ["time", "sleep"]:
                findings.append(module.finding(
                    node, "async-blocking",
                    "time.sleep() blocks the event loop; use "
                    "`await asyncio.sleep(...)`",
                ))
            elif chain == ["open"]:
                findings.append(module.finding(
                    node, "async-blocking",
                    "open() blocks the event loop; do file IO in "
                    "run_in_executor or before entering the coroutine",
                ))
            elif chain[0] in _BLOCKING_ROOTS:
                findings.append(module.finding(
                    node, "async-blocking",
                    f"`{dotted}()` is synchronous IO inside async def; use "
                    "asyncio streams or run_in_executor",
                ))
            elif chain[0] == "os" and chain[-1] in _OS_BLOCKING:
                findings.append(module.finding(
                    node, "async-blocking",
                    f"`{dotted}()` is synchronous IO inside async def; use "
                    "asyncio primitives or run_in_executor",
                ))
            elif len(chain) >= 2 and chain[-1] in _PATH_BLOCKING:
                findings.append(module.finding(
                    node, "async-blocking",
                    f"`.{chain[-1]}()` is synchronous file IO inside async "
                    "def; use run_in_executor",
                ))
    return findings


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


def _thread_entry_targets(cls: ast.ClassDef) -> set:
    """Method names handed to another thread: Thread(target=self.X),
    executor.submit(self.X, ...), loop.run_in_executor(_, self.X, ...),
    asyncio.to_thread(self.X, ...), call_soon_threadsafe(self.X, ...)."""
    entries = set()

    def self_method(expr: ast.expr) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        chain = _call_chain(node)
        if chain is None:
            continue
        tail = chain[-1]
        if tail == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    method = self_method(kw.value)
                    if method:
                        entries.add(method)
        elif tail in ("submit", "to_thread", "call_soon_threadsafe"):
            if node.args:
                method = self_method(node.args[0])
                if method:
                    entries.add(method)
        elif tail == "run_in_executor":
            if len(node.args) >= 2:
                method = self_method(node.args[1])
                if method:
                    entries.add(method)
    return entries


def _lock_guarded_ranges(fn: ast.AST) -> List:
    """(start, end) line ranges inside `with <something named *lock*>:`."""
    ranges = []
    for node in ast.walk(fn):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            chain = _attr_chain(expr)
            if chain and any("lock" in part.lower() for part in chain):
                ranges.append((node.lineno, node.end_lineno or node.lineno))
                break
    return ranges


def _self_call_lines(method: ast.AST) -> List:
    """(callee method name, call line) for every ``self.x(...)`` /
    ``cls.x(...)`` call in ``method``'s own body."""
    calls = []
    for node in _iter_own_nodes(method):
        if not isinstance(node, ast.Call):
            continue
        chain = _call_chain(node)
        if chain and len(chain) == 2 and chain[0] in ("self", "cls"):
            calls.append((chain[1], node.lineno))
    return calls


def _entry_reachable(entries: set, calls_by_method: dict) -> set:
    """Methods reachable from a thread entry point through ``self.x()``
    call edges — every one of them runs on the spawned thread."""
    reachable = set(entries)
    frontier = list(entries)
    while frontier:
        current = frontier.pop()
        for callee, _ in calls_by_method.get(current, []):
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    return reachable


def _guard_covered(
    methods: dict, calls_by_method: dict, guarded_ranges: dict, entries: set
) -> set:
    """Methods whose *every* in-class call site holds the lock, directly
    (the call is inside ``with ...lock:``) or transitively (the caller
    is itself guard-covered).  A write in such a method is effectively
    guarded even though the ``with`` block lives one frame up."""
    sites: dict = {}
    for caller, calls in calls_by_method.items():
        for callee, line in calls:
            if callee in methods:
                sites.setdefault(callee, []).append((caller, line))
    covered = set()
    for _ in range(len(methods) + 1):
        next_covered = set()
        for name in methods:
            if name in entries or not sites.get(name):
                continue  # entry points and never-called methods run bare
            if all(
                any(
                    start <= line <= end
                    for start, end in guarded_ranges.get(caller, [])
                )
                or (caller in covered and caller != name)
                for caller, line in sites[name]
            ):
                next_covered.add(name)
        if next_covered == covered:
            break
        covered = next_covered
    return covered


@register_rule(
    "lock-discipline",
    severity="error",
    description=(
        "attributes written from both the thread-entry call graph and "
        "other methods in serve//obs//runtime/ must be written under a "
        "lock, including writes in helpers reached from the entry point"
    ),
    scopes=("serve/", "obs/", "runtime/"),
)
def check_lock_discipline(module: SourceModule) -> List[Finding]:
    findings = []
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        entries = _thread_entry_targets(cls)
        if not entries:
            continue
        methods = {
            node.name: node
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        calls_by_method = {
            name: _self_call_lines(method) for name, method in methods.items()
        }
        guarded_ranges = {
            name: _lock_guarded_ranges(method)
            for name, method in methods.items()
        }
        thread_side = _entry_reachable(entries, calls_by_method)
        covered = _guard_covered(
            methods, calls_by_method, guarded_ranges, entries
        )
        # attr -> method name -> list of (node, guarded)
        writes: dict = {}
        for name, method in methods.items():
            if name == "__init__":
                continue  # runs before any thread is spawned
            for node in _iter_own_nodes(method):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        guarded = any(
                            start <= node.lineno <= end
                            for start, end in guarded_ranges.get(name, [])
                        ) or name in covered
                        writes.setdefault(target.attr, {}).setdefault(
                            name, []
                        ).append((node, guarded))
        for attr, by_method in writes.items():
            from_entry = sorted(m for m in by_method if m in thread_side)
            from_other = sorted(m for m in by_method if m not in thread_side)
            if not from_entry or not from_other:
                continue
            for method_name, sites in sorted(by_method.items()):
                for node, guarded in sites:
                    if guarded:
                        continue
                    via = (
                        ""
                        if method_name in entries
                        or method_name not in thread_side
                        else (
                            " (reached from the entry point through "
                            "self-calls)"
                        )
                    )
                    findings.append(module.finding(
                        node, "lock-discipline",
                        f"`self.{attr}` is written from thread entry point "
                        f"`{'/'.join(from_entry)}` and from "
                        f"`{'/'.join(from_other)}`; this write in "
                        f"`{method_name}`{via} must hold a lock",
                    ))
    return findings


# ---------------------------------------------------------------------------
# pragma + parse
# ---------------------------------------------------------------------------


@register_rule(
    "pragma",
    severity="error",
    description=(
        "malformed `# repro:` comments (unknown verb/rule, or allow() "
        "without the required justification) are findings themselves"
    ),
)
def check_pragma(module: SourceModule) -> List[Finding]:
    return [
        module.finding((err.line, err.col), "pragma", err.message)
        for err in module.pragma_errors
    ]


@register_rule(
    "parse",
    severity="error",
    description="files under lint must parse with ast; emitted by the engine "
    "on SyntaxError",
)
def check_parse(module: SourceModule) -> List[Finding]:
    return []  # the engine emits parse findings before rules run
