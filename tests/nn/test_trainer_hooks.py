"""Trainer telemetry hooks: observation without interference."""

import numpy as np
import pytest

import repro.obs as obs
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import Linear
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer
from repro.obs.hooks import TrainerHook, TrainerObsHook, default_trainer_hooks


class RecordingHook(TrainerHook):
    def __init__(self):
        self.steps = []
        self.epochs = []
        self.evaluations = []

    def on_step(self, step, loss, lr, seconds):
        self.steps.append((step, loss, lr, seconds))

    def on_epoch_end(self, epoch, mean_loss, mean_lr, seconds, steps):
        self.epochs.append((epoch, mean_loss, mean_lr, seconds, steps))

    def on_evaluate(self, loss, count, seconds):
        self.evaluations.append((loss, count, seconds))


def _data(n: int = 32, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = x @ rng.normal(size=(4, 1))
    return DataLoader(ArrayDataset(x, y), batch_size=8)


def _trainer(hooks):
    model = Linear(4, 1, np.random.default_rng(1))
    return Trainer(
        model, Adam(model.parameters(), lr=1e-2), mse_loss,
        grad_clip=None, hooks=hooks,
    )


class TestHookCallbacks:
    def test_steps_epochs_and_evaluations_are_reported(self):
        hook = RecordingHook()
        trainer = _trainer([hook])
        loader = _data()
        trainer.train_epoch(loader)
        trainer.train_epoch(loader)
        trainer.evaluate(loader)
        assert [record[0] for record in hook.steps] == list(range(8))
        assert [record[0] for record in hook.epochs] == [0, 1]
        epoch, mean_loss, mean_lr, seconds, steps = hook.epochs[0]
        assert steps == 4
        assert mean_lr == pytest.approx(1e-2)
        assert mean_loss == pytest.approx(
            float(np.mean([record[1] for record in hook.steps[:4]]))
        )
        assert seconds > 0
        ((eval_loss, count, eval_seconds),) = hook.evaluations
        assert count == 32
        assert eval_seconds > 0
        assert np.isfinite(eval_loss)

    def test_training_is_bit_identical_with_and_without_hooks(self):
        plain = _trainer(())
        hooked = _trainer([RecordingHook()])
        loader = _data()
        losses_plain = [plain.train_epoch(loader) for _ in range(2)]
        losses_hooked = [hooked.train_epoch(loader) for _ in range(2)]
        assert losses_plain == losses_hooked
        for a, b in zip(plain.model.parameters(), hooked.model.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_explicit_empty_hooks_opt_out(self):
        trainer = _trainer(())
        assert trainer.hooks == ()


class TestDefaultHooks:
    def test_enabled_installs_the_obs_hook(self):
        with obs.scope(True):
            hooks = default_trainer_hooks()
        assert len(hooks) == 1
        assert isinstance(hooks[0], TrainerObsHook)

    def test_disabled_installs_nothing(self):
        with obs.scope(False):
            assert default_trainer_hooks() == ()


class TestObsHook:
    def test_metrics_and_spans_flow_to_the_registry(self):
        obs.reset()
        with obs.scope(True):
            trainer = _trainer(None)  # defaults -> TrainerObsHook
            loader = _data()
            trainer.train_epoch(loader)
            trainer.evaluate(loader)
            snapshot = obs.get_registry().snapshot()
            spans = obs.get_tracer().finished()
        obs.reset()
        counters = {
            entry["name"]: entry["value"]
            for entry in snapshot["counters"].values()
        }
        assert counters["nn.train.steps_total"] == 4
        assert counters["nn.train.epochs_total"] == 1
        assert counters["nn.eval.passes_total"] == 1
        histograms = {
            entry["name"]: entry for entry in snapshot["histograms"].values()
        }
        assert histograms["nn.train.step_seconds"]["count"] == 4
        gauges = {entry["name"] for entry in snapshot["gauges"].values()}
        assert {"nn.train.loss", "nn.train.lr", "nn.eval.loss"} <= gauges
        names = [span["name"] for span in spans]
        assert "nn.train_epoch" in names
        assert "nn.evaluate" in names
