"""Micro-benchmarks: attention scaling, training step cost, windowing.

These back the paper's §3 design argument: attention cost grows
quadratically with sequence length, which is *why* the NTT aggregates
1024 packets into 48 elements before the encoder.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_results
from repro.nn.attention import MultiHeadAttention
from repro.nn.tensor import Tensor, no_grad


@pytest.mark.parametrize("seq_len", [16, 48, 128, 256])
def test_attention_cost_vs_sequence_length(benchmark, seq_len):
    """Forward cost of one attention layer as the sequence grows."""
    rng = np.random.default_rng(0)
    mha = MultiHeadAttention(64, 4, rng)
    mha.eval()
    x = Tensor(rng.normal(size=(8, seq_len, 64)))

    def run():
        with no_grad():
            return mha(x)

    benchmark(run)


def test_attention_quadratic_scaling():
    """Measured attention time must grow super-linearly with seq_len —
    the design motivation for aggregation (§3)."""
    import time

    rng = np.random.default_rng(0)
    mha = MultiHeadAttention(64, 4, rng)
    mha.eval()

    def time_seq(seq_len: int) -> float:
        x = Tensor(rng.normal(size=(8, seq_len, 64)))
        with no_grad():
            mha(x)  # warm up
        start = time.perf_counter()
        for _ in range(5):
            with no_grad():
                mha(x)
        return (time.perf_counter() - start) / 5

    short, long = time_seq(64), time_seq(512)
    ratio = long / short
    save_results("attention_scaling", {"t64_s": short, "t512_s": long, "ratio": ratio})
    # 8x longer sequence: at least ~3x cost even with BLAS overheads
    # hiding constants; strictly super-linear.
    assert ratio > 3.0


def test_training_step_cost(benchmark):
    """One optimizer step of the scaled NTT on a realistic batch."""
    from repro.core.model import NTTConfig, NTTForDelay
    from repro.nn.losses import mse_loss
    from repro.nn.optim import Adam

    rng = np.random.default_rng(0)
    config = NTTConfig.smoke()
    model = NTTForDelay(config)
    optimizer = Adam(model.parameters(), lr=1e-3)
    window = config.aggregation.seq_len
    features = rng.normal(size=(32, window, 3))
    receiver = rng.integers(0, 4, size=(32, window))
    target = Tensor(rng.normal(size=32))

    def step():
        optimizer.zero_grad()
        loss = mse_loss(model(features, receiver), target)
        loss.backward()
        optimizer.step()
        return loss.item()

    benchmark(step)


def test_windowing_throughput(benchmark, scale):
    """Packets-to-windows conversion speed."""
    from repro.datasets.windows import WindowConfig, windows_from_trace
    from repro.netsim.scenarios import ScenarioKind, build_scenario

    trace = build_scenario(scale.scenario(ScenarioKind.PRETRAIN)).run()
    index = {int(r): i for i, r in enumerate(sorted(set(trace.receiver_id.tolist())))}
    config = WindowConfig(window_len=min(64, len(trace) // 2), stride=4)

    def run():
        return len(windows_from_trace(trace, config, index))

    count = benchmark(run)
    assert count > 0
