"""Content-addressed on-disk artifact store.

Simulation and pre-training dominate experiment wall time.  The store
keys every expensive artifact — raw traces, windowed
:class:`~repro.datasets.generation.DatasetBundle`\\ s and trained
checkpoints — by a stable content hash of everything that produced it,
so a repeated run hits disk instead of re-simulating or re-training.

Layout (one ``.npz`` per artifact, one ``.json`` per record)::

    <root>/traces/<key>-run<i>.npz   (+ <key>.meta.json sidecar)
    <root>/bundles/<key>.npz
    <root>/checkpoints/<key>.npz
    <root>/evaluations/<key>.json
    <root>/manifests/<name>.json

The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.  Writes
go through a temp file + atomic rename so concurrent readers never
observe a partial artifact, and a lost publish race against another
worker writing the same key counts as success — content-addressed
artifacts with the same key are interchangeable.

Every payload is stamped with :data:`ARTIFACT_SCHEMA_VERSION`; a stored
artifact whose stamp does not match the running code is treated as a
cache miss, so stale artifacts written by older code are never silently
served (cache *keys* cover configs, not code).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.api.hashing import stable_hash
from repro.api.spec import (
    ntt_config_from_dict,
    ntt_config_to_dict,
    scenario_config_from_dict,
    scenario_config_to_dict,
    window_config_from_dict,
    window_config_to_dict,
)
from repro.core.features import FeaturePipeline
from repro.core.finetune import FinetuneResult
from repro.core.model import NTT, NTTConfig, NTTForDelay, NTTForMCT
from repro.core.pretrain import PretrainResult, TrainSettings
from repro.datasets.generation import DatasetBundle
from repro.datasets.normalize import FeatureScaler
from repro.datasets.windows import WindowConfig, WindowDataset
from repro.netsim.scenarios import ScenarioConfig
from repro.netsim.trace import Trace
from repro.nn.serialize import load_state, save_checkpoint
from repro.nn.trainer import TrainingHistory

__all__ = [
    "ArtifactStore",
    "ARTIFACT_SCHEMA_VERSION",
    "traces_key",
    "bundle_key",
    "pretrained_key",
    "finetuned_key",
    "scratch_key",
    "evaluation_key",
    "precision_key",
]

#: Environment variable selecting the store root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Version of the on-disk artifact *payloads*.  Bump whenever the code
#: that produces artifacts changes behaviour (simulator streams, model
#: layout, serialisation) so that artifacts written by older code become
#: cache misses instead of being silently served.
ARTIFACT_SCHEMA_VERSION = 2

KINDS = ("traces", "bundles", "checkpoints")

#: Artifact kinds stored as JSON documents rather than ``.npz`` arrays.
JSON_KINDS = ("evaluations", "manifests")

_META_KEY = "__meta__"
_SCHEMA_KEY = "__schema_version__"
_SPLITS = ("train", "val", "test")
_SPLIT_ARRAYS = (
    "features",
    "receiver",
    "delay_target",
    "mct_target",
    "message_size",
    "mct_seq",
    "end_seq",
)


# -- cache keys -------------------------------------------------------------------


def traces_key(scenario: ScenarioConfig, n_runs: int) -> str:
    """Key for the raw traces of one scenario."""
    return stable_hash({"artifact": "traces", "scenario": scenario, "n_runs": n_runs})


def bundle_key(
    scenario: ScenarioConfig,
    window: WindowConfig,
    n_runs: int,
    receiver_index: dict[int, int] | None = None,
) -> str:
    """Key for a windowed dataset bundle.

    ``receiver_index`` covers the cross-bundle coupling: fine-tuning
    bundles inherit the pre-training receiver identities, so a different
    pre-training setup must produce a different fine-tuning bundle.
    """
    return stable_hash(
        {
            "artifact": "bundle",
            "scenario": scenario,
            "window": window,
            "n_runs": n_runs,
            "receiver_index": receiver_index,
        }
    )


def pretrained_key(
    scenario: ScenarioConfig,
    window: WindowConfig,
    n_runs: int,
    model_config: NTTConfig,
    settings: TrainSettings,
) -> str:
    """Key for a pre-trained checkpoint."""
    return stable_hash(
        {
            "artifact": "pretrained",
            "scenario": scenario,
            "window": window,
            "n_runs": n_runs,
            "model": model_config,
            "settings": settings,
        }
    )


def finetuned_key(
    base_key: str,
    scenario: ScenarioConfig,
    task: str,
    mode: str,
    fraction: float | None,
    settings: TrainSettings,
) -> str:
    """Key for a fine-tuned checkpoint derived from ``base_key``."""
    return stable_hash(
        {
            "artifact": "finetuned",
            "base": base_key,
            "scenario": scenario,
            "task": task,
            "mode": mode,
            "fraction": fraction,
            "settings": settings,
        }
    )


def scratch_key(
    base_key: str,
    scenario: ScenarioConfig,
    task: str,
    fraction: float | None,
    model_config: NTTConfig,
    settings: TrainSettings,
) -> str:
    """Key for a from-scratch model (no pre-training, full training).

    ``base_key`` identifies the pre-training run whose fitted feature
    pipeline normalises the from-scratch model's inputs.
    """
    return stable_hash(
        {
            "artifact": "scratch",
            "base": base_key,
            "scenario": scenario,
            "task": task,
            "fraction": fraction,
            "model": model_config,
            "settings": settings,
        }
    )


def evaluation_key(model_key: str, scenario: ScenarioConfig, task: str) -> str:
    """Key for a cached evaluation of one model on one scenario."""
    return stable_hash(
        {
            "artifact": "evaluation",
            "model": model_key,
            "scenario": scenario,
            "task": task,
        }
    )


def precision_key(base: str | None, precision: str | None) -> str | None:
    """Fold a non-default compute precision into a training cache key.

    The default (``float64`` / ``None``) is the identity — exactly like
    ``Stage.version`` 0 — so every pre-existing float64 key stays
    byte-identical; float32 artifacts get their own address.
    """
    if base is None or precision in (None, "float64"):
        return base
    return stable_hash({"base": base, "precision": precision})


# -- (de)hydration helpers --------------------------------------------------------


def _scaler_to_dict(scaler: FeatureScaler) -> dict[str, object] | None:
    return scaler.to_dict() if scaler.fitted else None


def _pipeline_to_dict(pipeline: FeaturePipeline) -> dict[str, object]:
    return {
        "feature_scaler": _scaler_to_dict(pipeline.feature_scaler),
        "message_size_scaler": _scaler_to_dict(pipeline.message_size_scaler),
        "mct_scaler": _scaler_to_dict(pipeline.mct_scaler),
    }


def _pipeline_from_dict(payload: dict[str, object]) -> FeaturePipeline:
    pipeline = FeaturePipeline()
    for name in ("feature_scaler", "message_size_scaler", "mct_scaler"):
        stored = payload.get(name)
        if stored is not None:
            setattr(pipeline, name, FeatureScaler.from_dict(stored))
    return pipeline


def _history_to_dict(history: TrainingHistory) -> dict[str, object]:
    return {
        "train_loss": history.train_loss,
        "val_loss": history.val_loss,
        "lr": history.lr,
        "wall_time": history.wall_time,
        "epochs_run": history.epochs_run,
        "stopped_early": history.stopped_early,
    }


def _history_from_dict(payload: dict[str, object]) -> TrainingHistory:
    return TrainingHistory(**payload)


class ArtifactStore:
    """Content-addressed cache of traces, bundles and checkpoints."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV)
        if root is None:
            root = Path.home() / ".cache" / "repro"
        self.root = Path(root)

    @classmethod
    def from_env(cls) -> "ArtifactStore":
        """The default store (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
        return cls()

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"

    # -- generic access ----------------------------------------------------------

    def path(self, kind: str, key: str) -> Path:
        """Where an artifact of this kind/key lives (existing or not)."""
        if kind in JSON_KINDS:
            return self.root / kind / f"{key}.json"
        if kind not in KINDS:
            raise ValueError(
                f"unknown artifact kind {kind!r}; choose from {KINDS + JSON_KINDS}"
            )
        return self.root / kind / f"{key}.npz"

    def has(self, kind: str, key: str) -> bool:
        return self.path(kind, key).exists()

    def is_current(self, kind: str, key: str) -> bool:
        """Whether a *servable* artifact is stored: present **and**
        stamped with the current schema version.

        Cheaper than the ``get_*`` loaders (only the stamp is read), so
        campaign workers use it for cache-hit accounting — an artifact
        from older code must count as a miss, exactly as the loaders
        treat it.  For ``traces`` the sidecar's own run count is used;
        :meth:`has_traces` additionally pins an expected ``n_runs``.
        """
        if kind == "traces":
            # Trace sets live as <key>-run<i>.npz + sidecar, not <key>.npz.
            try:
                with open(self._trace_meta_path(key), "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError):
                return False
            return (
                meta.get("schema_version") == ARTIFACT_SCHEMA_VERSION
                and isinstance(meta.get("n_runs"), int)
                and all(path.exists() for path in self.trace_paths(key, meta["n_runs"]))
            )
        path = self.get(kind, key)
        if path is None:
            return False
        if kind in JSON_KINDS:
            return self.get_json(kind, key) is not None
        try:
            with np.load(path) as data:
                if kind == "checkpoints":
                    # Checkpoints carry the stamp inside their JSON
                    # metadata member (save_checkpoint owns the layout).
                    if _META_KEY not in data.files:
                        return False
                    metadata = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
                    return metadata.get("schema_version") == ARTIFACT_SCHEMA_VERSION
                return self._schema_matches(data)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return False

    def get(self, kind: str, key: str) -> Path | None:
        """The artifact's path if present, else ``None``."""
        path = self.path(kind, key)
        return path if path.exists() else None

    def keys(self, kind: str) -> list[str]:
        path = self.path(kind, "probe")  # validates the kind
        directory = path.parent
        if not directory.is_dir():
            return []
        return sorted(entry.stem for entry in directory.glob(f"*{path.suffix}"))

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-kind entry counts and byte totals (for ``repro cache``)."""
        report = {}
        for kind in KINDS + JSON_KINDS:
            directory = self.root / kind
            suffix = "json" if kind in JSON_KINDS else "npz"
            files = list(directory.glob(f"*.{suffix}")) if directory.is_dir() else []
            report[kind] = {
                "count": len(files),
                "bytes": sum(path.stat().st_size for path in files),
            }
        return report

    def clear(self, kind: str | None = None) -> int:
        """Delete artifacts (of one kind, or all); returns files removed."""
        kinds = KINDS + JSON_KINDS if kind is None else (kind,)
        removed = 0
        for name in kinds:
            if name not in KINDS + JSON_KINDS:
                raise ValueError(
                    f"unknown artifact kind {name!r}; choose from {KINDS + JSON_KINDS}"
                )
            directory = self.root / name
            if not directory.is_dir():
                continue
            for path in directory.glob("*.npz"):
                path.unlink()
                removed += 1
            for path in directory.glob("*.json"):
                path.unlink()
                removed += 1
            # Campaign journals ride alongside manifests as .jsonl.
            for path in directory.glob("*.jsonl"):
                path.unlink()
                removed += 1
        return removed

    @staticmethod
    def _temp_path(path: Path) -> Path:
        # Keeps the .npz suffix: np.savez appends one otherwise.  The
        # pid makes concurrent workers' temp files distinct.
        return path.with_name(f".tmp-{os.getpid()}-{path.name}")

    @staticmethod
    def _publish(temp: Path, path: Path) -> None:
        """Atomically move ``temp`` into place.

        Losing a rename race against another worker publishing the same
        key is fine: both wrote equivalent content-addressed payloads.
        """
        try:
            os.replace(temp, path)
        except FileExistsError:
            # Non-POSIX semantics; the other writer's artifact serves.
            temp.unlink(missing_ok=True)

    def _write_npz(self, path: Path, payload: dict[str, np.ndarray]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {**payload, _SCHEMA_KEY: np.int64(ARTIFACT_SCHEMA_VERSION)}
        temp = self._temp_path(path)
        try:
            with open(temp, "wb") as handle:
                np.savez_compressed(handle, **payload)
                handle.flush()
                os.fsync(handle.fileno())
            self._publish(temp, path)
        finally:
            temp.unlink(missing_ok=True)

    @staticmethod
    def _schema_matches(data: np.lib.npyio.NpzFile) -> bool:
        """Whether a loaded npz was written by the current schema."""
        if _SCHEMA_KEY not in getattr(data, "files", data):
            return False
        return int(data[_SCHEMA_KEY]) == ARTIFACT_SCHEMA_VERSION

    # -- JSON records (evaluations, campaign manifests) --------------------------

    def put_json(self, kind: str, key: str, payload: dict[str, object]) -> Path:
        """Store a JSON record (``evaluations`` / ``manifests``)."""
        if kind not in JSON_KINDS:
            raise ValueError(f"unknown JSON kind {kind!r}; choose from {JSON_KINDS}")
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"schema_version": ARTIFACT_SCHEMA_VERSION, **payload}
        temp = self._temp_path(path)
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True, default=str)
                # Durability, not just atomicity: without the fsync a
                # crash shortly after os.replace can surface a complete
                # rename pointing at never-flushed data blocks.
                handle.flush()
                os.fsync(handle.fileno())
            self._publish(temp, path)
        finally:
            temp.unlink(missing_ok=True)
        return path

    def get_json(self, kind: str, key: str) -> dict[str, object] | None:
        """Load a JSON record; schema mismatches read as cache misses."""
        path = self.get(kind, key)
        if path is None:
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if document.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
            return None
        document.pop("schema_version", None)
        return document

    def put_manifest(self, name: str, manifest: dict[str, object]) -> Path:
        """Persist a campaign manifest (see :mod:`repro.runtime`)."""
        return self.put_json("manifests", name, manifest)

    def get_manifest(self, name: str) -> dict[str, object] | None:
        return self.get_json("manifests", name)

    def journal_path(self, campaign_id: str) -> Path:
        """Where a campaign's append-only journal lives (see
        :mod:`repro.runtime.journal`); the directory is created.

        ``.jsonl`` keeps journals out of the ``.json`` manifest globs —
        a journal is a write-ahead log, not a servable JSON record.
        """
        path = self.root / "manifests" / f"{campaign_id}.journal.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        return path

    def scratch_dir(self, *parts: str) -> Path:
        """A created directory under ``<root>/scratch`` for transient
        coordination state (worker heartbeats, locks) that is neither
        content-addressed nor schema-stamped."""
        path = self.root.joinpath("scratch", *parts)
        path.mkdir(parents=True, exist_ok=True)
        return path

    # -- traces ------------------------------------------------------------------

    def trace_paths(self, key: str, n_runs: int) -> list[Path]:
        return [self.root / "traces" / f"{key}-run{i}.npz" for i in range(n_runs)]

    def _trace_meta_path(self, key: str) -> Path:
        # Trace files are written by Trace.save, so the schema stamp
        # lives in a per-key sidecar covering the whole run set.
        return self.root / "traces" / f"{key}.meta.json"

    def has_traces(self, key: str, n_runs: int) -> bool:
        """Whether a complete, current-schema run set is stored (without
        loading the traces).

        Besides the schema stamp, the sidecar must carry
        ``message_id_scope: "simulation"``: older run sets drew message
        ids from a process-global counter, so their ``message_id``
        column depended on in-process run order.  The relabeling is
        semantically inert downstream (bundles carry no message ids,
        only relabel-invariant MCT values), so rejecting just the trace
        sidecar re-simulates cheaply without invalidating bundles or
        checkpoints.
        """
        meta_path = self._trace_meta_path(key)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return False
        return (
            meta.get("schema_version") == ARTIFACT_SCHEMA_VERSION
            and meta.get("message_id_scope") == "simulation"
            and meta.get("n_runs") == n_runs
            and all(path.exists() for path in self.trace_paths(key, n_runs))
        )

    def get_traces(self, key: str, n_runs: int) -> list[Trace] | None:
        if not self.has_traces(key, n_runs):
            return None
        return [Trace.load(path) for path in self.trace_paths(key, n_runs)]

    def put_trace_run(self, key: str, run_index: int, trace: Trace) -> Path:
        """Stream one simulation run's columns into the store.

        Used by the trace stage to write each run as soon as it is
        generated instead of materialising the whole run set in memory;
        the run set only becomes visible to readers once
        :meth:`finalize_trace_runs` publishes the sidecar.
        """
        path = self.trace_paths(key, run_index + 1)[run_index]
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = self._temp_path(path)
        try:
            trace.save(temp)
            self._publish(temp, path)
        finally:
            temp.unlink(missing_ok=True)
        return path

    def finalize_trace_runs(
        self, key: str, n_runs: int, total_packets: int | None = None
    ) -> None:
        """Publish the sidecar marking a streamed run set complete.

        The sidecar lands last: readers only trust a complete run set.
        ``total_packets`` is recorded so cache-hit bookkeeping can
        report run-set statistics without loading any npz.
        """
        meta = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "message_id_scope": "simulation",
            "n_runs": n_runs,
        }
        if total_packets is not None:
            meta["total_packets"] = int(total_packets)
        meta_path = self._trace_meta_path(key)
        temp = self._temp_path(meta_path)
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(meta, handle)
                handle.flush()
                os.fsync(handle.fileno())
            self._publish(temp, meta_path)
        finally:
            temp.unlink(missing_ok=True)

    def trace_run_meta(self, key: str) -> dict[str, object] | None:
        """The sidecar of a stored run set, or ``None`` when absent."""
        try:
            with open(self._trace_meta_path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def put_traces(self, key: str, traces: list[Trace]) -> None:
        for run_index, trace in enumerate(traces):
            self.put_trace_run(key, run_index, trace)
        self.finalize_trace_runs(
            key, len(traces), total_packets=sum(len(trace) for trace in traces)
        )

    # -- dataset bundles ---------------------------------------------------------

    def put_bundle(self, key: str, bundle: DatasetBundle) -> Path:
        payload = {}
        for split in _SPLITS:
            dataset = getattr(bundle, split)
            for name in _SPLIT_ARRAYS:
                payload[f"{split}__{name}"] = getattr(dataset, name)
        meta = {
            "name": bundle.name,
            "receiver_index": {str(k): v for k, v in bundle.receiver_index.items()},
            "scenario": scenario_config_to_dict(bundle.scenario),
            "window": window_config_to_dict(bundle.window_config),
            "n_packets": bundle.n_packets,
        }
        payload[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        path = self.path("bundles", key)
        self._write_npz(path, payload)
        return path

    def get_bundle(self, key: str) -> DatasetBundle | None:
        path = self.get("bundles", key)
        if path is None:
            return None
        with np.load(path) as data:
            if not self._schema_matches(data):
                return None
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
            splits = {}
            for split in _SPLITS:
                arrays = {name: data[f"{split}__{name}"] for name in _SPLIT_ARRAYS}
                splits[split] = WindowDataset(**arrays)
        return DatasetBundle(
            name=meta["name"],
            train=splits["train"],
            val=splits["val"],
            test=splits["test"],
            receiver_index={int(k): v for k, v in meta["receiver_index"].items()},
            scenario=scenario_config_from_dict(meta["scenario"]),
            window_config=window_config_from_dict(meta["window"]),
            n_packets=meta["n_packets"],
        )

    # -- pre-trained checkpoints -------------------------------------------------

    def put_pretrained(self, key: str, result: PretrainResult) -> Path:
        path = self.path("checkpoints", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = self._temp_path(path)
        try:
            save_checkpoint(
                result.model,
                temp,
                metadata={
                    "role": "pretrained",
                    "schema_version": ARTIFACT_SCHEMA_VERSION,
                    "config": ntt_config_to_dict(result.model.config),
                    "pipeline": _pipeline_to_dict(result.pipeline),
                    "history": _history_to_dict(result.history),
                    "test_mse_seconds2": result.test_mse_seconds2,
                },
            )
            self._publish(temp, path)
        finally:
            temp.unlink(missing_ok=True)
        return path

    def get_pretrained(self, key: str) -> PretrainResult | None:
        path = self.get("checkpoints", key)
        if path is None:
            return None
        state, metadata = load_state(path)
        if metadata.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
            return None
        model = NTTForDelay(ntt_config_from_dict(metadata["config"]))
        model.load_state_dict(state)
        return PretrainResult(
            model=model,
            pipeline=_pipeline_from_dict(metadata["pipeline"]),
            history=_history_from_dict(metadata["history"]),
            test_mse_seconds2=metadata["test_mse_seconds2"],
        )

    # -- fine-tuned checkpoints --------------------------------------------------

    def put_finetuned(
        self, key: str, result: FinetuneResult, pipeline: FeaturePipeline
    ) -> Path:
        path = self.path("checkpoints", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = self._temp_path(path)
        try:
            save_checkpoint(
                result.model,
                temp,
                metadata={
                    "role": "finetuned",
                    "schema_version": ARTIFACT_SCHEMA_VERSION,
                    "task": result.task,
                    "mode": result.mode,
                    "config": ntt_config_to_dict(result.model.config),
                    "pipeline": _pipeline_to_dict(pipeline),
                    "history": _history_to_dict(result.history),
                    "test_mse": result.test_mse,
                },
            )
            self._publish(temp, path)
        finally:
            temp.unlink(missing_ok=True)
        return path

    def get_finetuned(self, key: str) -> tuple[FinetuneResult, FeaturePipeline] | None:
        path = self.get("checkpoints", key)
        if path is None:
            return None
        state, metadata = load_state(path)
        if metadata.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
            return None
        config = ntt_config_from_dict(metadata["config"])
        if metadata["task"] == "mct":
            model = NTTForMCT(config, NTT(config))
        else:
            model = NTTForDelay(config)
        model.load_state_dict(state)
        result = FinetuneResult(
            model=model,
            history=_history_from_dict(metadata["history"]),
            test_mse=metadata["test_mse"],
            mode=metadata["mode"],
            task=metadata["task"],
        )
        return result, _pipeline_from_dict(metadata["pipeline"])
