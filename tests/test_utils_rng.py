"""Tests for deterministic RNG stream derivation."""

import numpy as np

from repro.utils.rng import RngFactory, new_rng


def test_new_rng_reproducible():
    a = new_rng(42).random(8)
    b = new_rng(42).random(8)
    assert np.array_equal(a, b)


def test_new_rng_different_seeds_differ():
    assert not np.array_equal(new_rng(1).random(8), new_rng(2).random(8))


def test_factory_same_name_same_stream():
    f1 = RngFactory(7)
    f2 = RngFactory(7)
    assert np.array_equal(f1.derive("traffic").random(16), f2.derive("traffic").random(16))


def test_factory_different_names_differ():
    factory = RngFactory(7)
    a = factory.derive("traffic").random(16)
    b = factory.derive("model").random(16)
    assert not np.array_equal(a, b)


def test_factory_order_independent():
    f1 = RngFactory(3)
    first_then_second = (f1.derive("a").random(4), f1.derive("b").random(4))
    f2 = RngFactory(3)
    second_then_first = (f2.derive("b").random(4), f2.derive("a").random(4))
    assert np.array_equal(first_then_second[0], second_then_first[1])
    assert np.array_equal(first_then_second[1], second_then_first[0])


def test_factory_different_seeds_differ():
    a = RngFactory(1).derive("x").random(8)
    b = RngFactory(2).derive("x").random(8)
    assert not np.array_equal(a, b)


def test_derive_seed_is_stable_int():
    factory = RngFactory(11)
    assert factory.derive_seed("alpha") == factory.derive_seed("alpha")
    assert isinstance(factory.derive_seed("alpha"), int)


def test_factory_seed_property():
    assert RngFactory(99).seed == 99
