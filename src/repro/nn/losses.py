"""Regression losses (plus a classification head utility).

The paper reports mean squared error for both tasks (§4); the others are
provided for robustness experiments.  ``mse_loss`` — the training-loop
loss — runs as one fused autograd node by default (bit-identical to the
composite graph; see :func:`repro.nn.fastpath.composite_ops` for the
escape hatch), and :func:`cross_entropy` provides a fused
log-softmax/NLL op for classification-style probes.
"""

from __future__ import annotations

import numpy as np

from repro.nn import fastpath
from repro.nn.tensor import Tensor

__all__ = ["mse_loss", "l1_loss", "huber_loss", "cross_entropy"]


def _check_shapes(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape};"
            " implicit broadcasting in a loss usually hides a bug"
        )


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    target = Tensor.ensure(target)
    _check_shapes(prediction, target)
    if fastpath.fused_ops_enabled():
        return _fused_mse(prediction, target)
    difference = prediction - target
    return (difference * difference).mean()


def _fused_mse(prediction: Tensor, target: Tensor) -> Tensor:
    """MSE as one graph node, bit-identical to the composite chain."""
    difference = prediction.data - target.data
    squared = difference * difference
    count = 1.0 / difference.size
    loss = squared.sum() * count

    def backward(grad):
        gdiff = np.broadcast_to(grad * count, difference.shape).copy()
        np.multiply(gdiff, difference, out=gdiff)
        # The composite square node contributed ``gdiff`` twice.
        np.add(gdiff, gdiff, out=gdiff)
        gtarget = np.negative(gdiff) if target.requires_grad else None
        return (gdiff, gtarget)

    return Tensor._from_op(loss, (prediction, target), backward)


def cross_entropy(logits: Tensor, targets) -> Tensor:
    """Fused log-softmax + negative log-likelihood over class indices.

    ``logits`` has shape ``(batch, classes)``; ``targets`` is an integer
    array of shape ``(batch,)``.  One graph node computes the numerically
    stable log-softmax and the mean NLL; the analytic backward is
    ``(softmax - onehot) / batch`` — no intermediate log/exp/gather
    nodes, no one-hot materialisation.
    """
    logits = Tensor.ensure(logits)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy expects (batch, classes) logits, got {logits.shape}")
    targets = np.asarray(targets)
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} does not match batch size {logits.shape[0]}"
        )
    if not np.issubdtype(targets.dtype, np.integer):
        raise TypeError(f"targets must be integer class indices, got {targets.dtype}")
    if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
        raise IndexError(f"class index out of range [0, {logits.shape[1]})")
    batch = logits.shape[0]
    rows = np.arange(batch)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=1, keepdims=True)
    log_probs = shifted - np.log(denom)
    loss = -log_probs[rows, targets].sum() / batch

    def backward(grad):
        # Fresh buffer: the saved forward intermediates stay intact, so
        # repeated backward passes (like every composite op supports)
        # keep returning correct, unaliased gradients.
        glogits = exp / denom  # softmax probabilities
        glogits[rows, targets] -= 1.0
        np.multiply(glogits, grad / batch, out=glogits)
        return (glogits,)

    return Tensor._from_op(loss, (logits,), backward)


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    target = Tensor.ensure(target)
    _check_shapes(prediction, target)
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Implemented with differentiable primitives:
    ``0.5 * e^2`` for ``|e| <= delta`` else ``delta * (|e| - 0.5 * delta)``.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    target = Tensor.ensure(target)
    _check_shapes(prediction, target)
    error = prediction - target
    abs_error = error.abs()
    quadratic = 0.5 * error * error
    linear = delta * abs_error - 0.5 * delta * delta
    is_small = (abs_error.data <= delta).astype(float)
    mask = Tensor(is_small)
    return (quadratic * mask + linear * (1.0 - mask)).mean()
