"""Attention inspection for the NTT.

Transformers generalize because outputs are *contextual* (§2); this
module makes the learned context visible: given a batch of windows, it
reports how much attention the final (masked) element pays to each
aggregation level — recent raw packets vs. older aggregates.

A well-trained NTT typically attends to recent packets for short-term
queue state and to aggregated history for longer-term load level; the
`no aggregation` ablation has no long-range levels to attend to at all,
which is exactly why its MCT story differs in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import NTT
from repro.nn.tensor import no_grad

__all__ = ["AttentionSummary", "attention_summary"]


@dataclass
class AttentionSummary:
    """Averaged attention of the last element onto each aggregation level.

    Attributes:
        level_labels: one label per aggregation level (oldest first).
        level_attention: mean attention mass per level; sums to ~1.
        per_element: full attention vector over encoder elements,
            averaged over batch, heads and layers.
    """

    level_labels: list[str]
    level_attention: np.ndarray
    per_element: np.ndarray

    def most_attended_level(self) -> str:
        return self.level_labels[int(np.argmax(self.level_attention))]

    def format(self) -> str:
        """A small ASCII bar chart of the per-level attention."""
        lines = ["attention of the masked element onto history levels:"]
        for label, value in zip(self.level_labels, self.level_attention):
            bar = "#" * max(1, int(round(value * 40)))
            lines.append(f"  {label:24s} {value * 100:5.1f}% {bar}")
        return "\n".join(lines)


def attention_summary(model: NTT, features: np.ndarray, receiver: np.ndarray) -> AttentionSummary:
    """Run a forward pass and summarise last-element attention.

    Attention weights are collected from every encoder layer's
    ``last_attention`` buffer, averaged over batch, heads and layers,
    then integrated per aggregation level.
    """
    model.eval()
    attentions = [layer.attention for layer in model.encoder.layers]
    # Recording is off during training (the copy is pure introspection
    # cost); enable it just for this forward pass.
    saved = [attention.record_attention for attention in attentions]
    for attention in attentions:
        attention.record_attention = True
    try:
        with no_grad():
            model(features, receiver)
        collected = []
        for attention in attentions:
            weights = attention.last_attention
            if weights is None:
                raise RuntimeError("no attention recorded; forward pass failed?")
            # (batch, heads, query, key) → attention of the last query.
            collected.append(weights[:, :, -1, :].mean(axis=(0, 1)))
    finally:
        for attention, state in zip(attentions, saved):
            attention.record_attention = state
    per_element = np.mean(collected, axis=0)
    per_element = per_element / max(per_element.sum(), 1e-12)

    spec = model.config.aggregation
    labels, masses = [], []
    offset = 0
    for level in spec.levels:
        mass = float(per_element[offset : offset + level.count].sum())
        if level.block == 1:
            labels.append(f"recent {level.count} packets (raw)")
        else:
            labels.append(f"{level.count} x {level.block}-packet aggregates")
        masses.append(mass)
        offset += level.count
    return AttentionSummary(
        level_labels=labels,
        level_attention=np.asarray(masses),
        per_element=per_element,
    )
