"""Checkpointing: save and load module state dicts as ``.npz`` files.

Sharing a pre-trained model instead of the underlying data is a core
part of the paper's vision (§5, "Collaborative pre-training") — these
helpers are the minimal version of that story.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "load_state"]

_META_KEY = "__meta__"


def save_checkpoint(module: Module, path, metadata: dict | None = None) -> None:
    """Write ``module.state_dict()`` (plus JSON metadata) to ``path``.

    Metadata must be JSON-serialisable; it typically records the model
    configuration so checkpoints are self-describing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with metadata key {_META_KEY!r}")
    payload = dict(state)
    meta_json = json.dumps(metadata if metadata is not None else {})
    payload[_META_KEY] = np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_state(path) -> tuple[dict, dict]:
    """Read ``(state_dict, metadata)`` from a checkpoint file."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path) as data:
        state = {key: data[key] for key in data.files if key != _META_KEY}
        metadata = {}
        if _META_KEY in data.files:
            metadata = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
    return state, metadata


def load_checkpoint(module: Module, path) -> dict:
    """Load parameters into ``module``; returns the stored metadata."""
    state, metadata = load_state(path)
    module.load_state_dict(state)
    return metadata
