"""Tests for checkpoint serialization: stored payloads and mmap loading."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential
from repro.nn.serialize import load_state, load_state_mmap, save_checkpoint


@pytest.fixture
def model(rng):
    return Sequential(Linear(3, 5, rng), Linear(5, 2, rng))


class TestStoredCheckpoints:
    def test_uncompressed_roundtrip(self, model, tmp_path):
        path = tmp_path / "stored.npz"
        save_checkpoint(model, path, metadata={"task": "delay"}, compress=False)
        state, metadata = load_state(path)
        assert metadata == {"task": "delay"}
        for name, parameter in model.named_parameters():
            assert np.array_equal(state[name], parameter.data)

    def test_uncompressed_is_larger_but_equal(self, model, tmp_path):
        stored = tmp_path / "stored.npz"
        compressed = tmp_path / "compressed.npz"
        save_checkpoint(model, stored, compress=False)
        save_checkpoint(model, compressed, compress=True)
        stored_state, _ = load_state(stored)
        compressed_state, _ = load_state(compressed)
        for name in stored_state:
            assert np.array_equal(stored_state[name], compressed_state[name])


class TestMmapLoading:
    def test_stored_members_come_back_memory_mapped(self, model, tmp_path):
        path = tmp_path / "stored.npz"
        save_checkpoint(model, path, metadata={"n": 1}, compress=False)
        state, metadata = load_state_mmap(path)
        assert metadata == {"n": 1}
        for name, parameter in model.named_parameters():
            assert isinstance(state[name], np.memmap)
            assert np.array_equal(state[name], parameter.data)

    def test_compressed_members_fall_back_to_a_read(self, model, tmp_path):
        path = tmp_path / "compressed.npz"
        save_checkpoint(model, path, compress=True)
        state, _ = load_state_mmap(path)
        for name, parameter in model.named_parameters():
            # Deflated payloads cannot be mapped; the loader degrades to
            # a normal in-memory read with identical contents.
            assert not isinstance(state[name], np.memmap)
            assert np.array_equal(state[name], parameter.data)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_mmap(tmp_path / "missing.npz")


class TestAliasedLoading:
    def test_copy_false_aliases_the_source_arrays(self, model, rng, tmp_path):
        path = tmp_path / "stored.npz"
        save_checkpoint(model, path, compress=False)
        state, _ = load_state_mmap(path)
        fresh = Sequential(Linear(3, 5, rng), Linear(5, 2, rng))
        fresh.load_state_dict(state, copy=False)
        for name, parameter in fresh.named_parameters():
            assert np.shares_memory(parameter.data, state[name])

    def test_copy_true_stays_private(self, model, rng, tmp_path):
        path = tmp_path / "stored.npz"
        save_checkpoint(model, path, compress=False)
        state, _ = load_state_mmap(path)
        fresh = Sequential(Linear(3, 5, rng), Linear(5, 2, rng))
        fresh.load_state_dict(state)  # the default copies
        for name, parameter in fresh.named_parameters():
            assert not np.shares_memory(parameter.data, state[name])
