"""A numpy-based neural-network engine (the PyTorch substitute).

Define-by-run autograd (:mod:`repro.nn.tensor`) plus the layers needed
by the Network Traffic Transformer: linear, layer norm, dropout,
embeddings, multi-head attention and transformer encoders, along with
optimizers, LR schedules, data loading and a training loop.

The engine favours clarity and testability over raw speed; every
operator's gradient is validated against finite differences in the test
suite.
"""

from repro.nn.fastpath import (
    composite_ops,
    fused_ops_enabled,
    precision,
    set_fused_ops,
)
from repro.nn.tensor import Tensor, concat, linear, masked_softmax, no_grad
from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.layers import Dropout, Embedding, GELU, Linear, ReLU, Sequential, Tanh
from repro.nn.norm import LayerNorm, layer_norm
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer
from repro.nn.positional import LearnedPositionalEncoding, SinusoidalPositionalEncoding
from repro.nn.losses import cross_entropy, huber_loss, l1_loss, mse_loss
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.trainer import Trainer, TrainingHistory

__all__ = [
    "Tensor",
    "concat",
    "no_grad",
    "linear",
    "masked_softmax",
    "layer_norm",
    "cross_entropy",
    "composite_ops",
    "fused_ops_enabled",
    "set_fused_ops",
    "precision",
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "ReLU",
    "GELU",
    "Tanh",
    "Dropout",
    "Embedding",
    "Sequential",
    "LayerNorm",
    "MultiHeadAttention",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "SinusoidalPositionalEncoding",
    "LearnedPositionalEncoding",
    "mse_loss",
    "l1_loss",
    "huber_loss",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "ArrayDataset",
    "DataLoader",
    "Trainer",
    "TrainingHistory",
]
