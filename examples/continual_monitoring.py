#!/usr/bin/env python
"""Continual learning: detecting when a deployed NTT goes stale (§5).

Deploys a pre-trained delay model, monitors it on fresh traffic from the
same environment (no drift expected), then switches the environment to
case-1 cross-traffic (drift expected) and watches the Page-Hinkley
detector fire.  Also demonstrates attention inspection on the deployed
model.

Run::

    python examples/continual_monitoring.py
    python examples/continual_monitoring.py --scale small
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.attention import attention_summary
from repro.core.pipeline import ExperimentContext, get_scale
from repro.extensions.continual import DriftMonitor
from repro.netsim.scenarios import ScenarioKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small"])
    args = parser.parse_args()

    scale = get_scale(args.scale)
    context = ExperimentContext(scale)

    print("== Deploying a pre-trained NTT")
    pre = context.pretrained()
    pretrain_bundle = context.bundle(ScenarioKind.PRETRAIN)

    print("== What does the deployed model attend to?")
    sample = pretrain_bundle.test.subset(np.arange(min(16, len(pretrain_bundle.test))))
    summary = attention_summary(
        pre.model.ntt, pre.pipeline.transform_features(sample), sample.receiver
    )
    print("   " + summary.format().replace("\n", "\n   "))

    print("== Monitoring on in-distribution traffic (no drift expected)")
    monitor = DriftMonitor(
        pre.model, pre.pipeline, baseline=pretrain_bundle.val, sensitivity=50.0
    )
    report = monitor.observe(pretrain_bundle.test)
    print(
        f"   {report.windows_seen} windows, degradation "
        f"{report.degradation_ratio:.2f}x, statistic {report.statistic:.2e} "
        f"/ threshold {report.threshold:.2e} -> drifted={report.drifted}"
    )

    print("== Environment changes: cross-traffic appears (case 1)")
    case1 = context.bundle(ScenarioKind.CASE1)
    report = monitor.observe(case1.test)
    print(
        f"   {report.windows_seen} windows, degradation "
        f"{report.degradation_ratio:.2f}x, statistic {report.statistic:.2e} "
        f"/ threshold {report.threshold:.2e} -> drifted={report.drifted}"
    )
    if report.drifted:
        print("   -> time to fine-tune on fresh data (monitor.reset() afterwards)")
    else:
        print("   -> model still healthy at this sensitivity")


if __name__ == "__main__":
    main()
