"""Tests for the Fig. 4 scenarios."""

import numpy as np
import pytest

from repro.netsim.scenarios import (
    ScenarioConfig,
    ScenarioKind,
    build_scenario,
    generate_traces,
    run_scenario,
)
from repro.netsim.units import mbps


class TestConfig:
    def test_presets_exist_for_all_kinds(self):
        for kind in ScenarioKind.ALL:
            for preset in (ScenarioConfig.smoke, ScenarioConfig.small, ScenarioConfig.paper):
                config = preset(kind)
                assert config.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(kind="nonsense")

    def test_case2_requires_receivers(self):
        with pytest.raises(ValueError):
            ScenarioConfig(kind=ScenarioKind.CASE2, n_receivers=1)

    def test_single_receiver_kinds_reject_multiple(self):
        with pytest.raises(ValueError):
            ScenarioConfig(kind=ScenarioKind.PRETRAIN, n_receivers=3)

    def test_paper_preset_matches_published_parameters(self):
        config = ScenarioConfig.paper(ScenarioKind.PRETRAIN)
        assert config.n_senders == 60
        assert config.sender_load_bps == mbps(1)
        assert config.bottleneck_rate_bps == mbps(30)
        assert config.bottleneck_queue_packets == 1000
        assert config.duration == 60.0

    def test_paper_case1_has_20mbps_cross_traffic(self):
        config = ScenarioConfig.paper(ScenarioKind.CASE1)
        assert config.cross_traffic_bps == mbps(20)
        assert config.n_cross_flows > 0


class TestBuild:
    def test_pretrain_structure(self):
        handle = build_scenario(ScenarioConfig.smoke(ScenarioKind.PRETRAIN))
        assert len(handle.senders) == 4
        assert len(handle.receivers) == 1
        assert not handle.cross_senders

    def test_case1_has_cross_traffic(self):
        handle = build_scenario(ScenarioConfig.smoke(ScenarioKind.CASE1))
        assert len(handle.cross_senders) >= 1

    def test_case2_has_multiple_receivers(self):
        handle = build_scenario(ScenarioConfig.smoke(ScenarioKind.CASE2))
        assert len(handle.receivers) == 3


class TestRun:
    def test_pretrain_trace_properties(self, smoke_trace):
        trace = smoke_trace
        assert len(trace) > 200
        assert np.all(trace.delay > 0)
        assert np.all(np.diff(trace.send_time) >= 0)
        assert len(set(trace.receiver_id.tolist())) == 1

    def test_cross_traffic_not_traced(self):
        config = ScenarioConfig.smoke(ScenarioKind.CASE1, seed=3)
        handle = build_scenario(config)
        trace = handle.run()
        from repro.netsim.scenarios import CROSS_FLOW_BASE, MESSAGE_FLOW_BASE

        assert np.all(trace.flow_id >= MESSAGE_FLOW_BASE)
        assert np.all(trace.flow_id < CROSS_FLOW_BASE)

    def test_case2_receivers_have_distinct_delays(self, smoke_case2_trace):
        trace = smoke_case2_trace
        receivers = sorted(set(trace.receiver_id.tolist()))
        assert len(receivers) == 3
        means = [trace.delay[trace.receiver_id == r].mean() for r in receivers]
        # Heterogeneous propagation delays must be visible end-to-end.
        assert max(means) > min(means) * 1.1

    def test_same_seed_reproducible(self):
        config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=5)
        a = run_scenario(config)
        b = run_scenario(config)
        assert len(a) == len(b)
        assert np.allclose(a.send_time, b.send_time)
        assert np.allclose(a.delay, b.delay)

    def test_different_runs_differ(self):
        config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=5)
        traces = generate_traces(config, n_runs=2)
        assert len(traces) == 2
        # Randomized app start times → different traces.
        min_len = min(len(traces[0]), len(traces[1]))
        assert not np.allclose(
            traces[0].send_time[:min_len], traces[1].send_time[:min_len]
        )

    def test_congestion_present(self, smoke_trace):
        """Delays must vary (queueing), otherwise the learning task is trivial."""
        delays = smoke_trace.delay
        assert delays.std() > 0.1 * delays.mean()

    def test_cross_traffic_increases_drops(self):
        base = build_scenario(ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=11))
        base.run()
        cross = build_scenario(ScenarioConfig.smoke(ScenarioKind.CASE1, seed=11))
        cross.run()
        assert cross.network.total_drops() >= base.network.total_drops()

    def test_generate_traces_validates_n_runs(self):
        with pytest.raises(ValueError):
            generate_traces(ScenarioConfig.smoke(), n_runs=0)
