"""The packet: the unit of work moved around by the simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Packet", "PacketKind"]


class PacketKind:
    """Symbolic packet kinds (plain strings keep traces readable)."""

    DATA = "data"
    ACK = "ack"


_packet_uid = itertools.count()


@dataclass
class Packet:
    """A network packet.

    Attributes:
        src: node id of the sender host.
        dst: node id of the destination host.
        size: wire size in bytes (headers included).
        flow_id: id of the flow (application) that produced the packet.
        message_id: id of the application message this packet belongs to,
            or ``-1`` for packets outside the message abstraction (ACKs,
            TCP cross-traffic segments).
        seq: sequence number within the flow.  For TCP this is the byte
            offset of the segment; for message senders it is the packet
            index within the message.
        kind: :class:`PacketKind` value.
        send_time: timestamp at which the application handed the packet
            to the network (set by the sender).
        message_size: total size of the enclosing message in bytes.
        is_message_end: True for the last packet of a message.
        traced: whether the packet should appear in collected traces.
            Cross-traffic packets set this to False: the paper's datasets
            "do not contain the cross-traffic packets" (§4).
        uid: globally unique packet id, assigned automatically.
        ack_for: for ACK packets, the cumulative sequence acknowledged.
        hops: number of store-and-forward hops traversed so far.
    """

    src: int
    dst: int
    size: int
    flow_id: int = 0
    message_id: int = -1
    seq: int = 0
    kind: str = PacketKind.DATA
    send_time: float = 0.0
    message_size: int = 0
    is_message_end: bool = False
    traced: bool = True
    ack_for: int = -1
    hops: int = 0
    uid: int = field(default_factory=lambda: next(_packet_uid))

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def is_ack(self) -> bool:
        return self.kind == PacketKind.ACK

    def reply_template(self, size: int, kind: str = PacketKind.ACK) -> "Packet":
        """Build a reply packet (ACK) travelling back to the sender."""
        return Packet(
            src=self.dst,
            dst=self.src,
            size=size,
            flow_id=self.flow_id,
            message_id=self.message_id,
            kind=kind,
            traced=False,
        )
