"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library workflow:

* ``simulate`` — run a Fig. 4 scenario and print a trace report (or
  save the trace as ``.npz``).
* ``pretrain`` — generate the pre-training dataset, pre-train an NTT and
  save a checkpoint.
* ``evaluate`` — evaluate a checkpoint against the naive baselines on a
  chosen scenario.
* ``report`` — dataset statistics for any scenario/scale.
"""

from __future__ import annotations

import argparse
import sys

from repro.version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network Traffic Transformer reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run a Fig. 4 scenario")
    _add_common(simulate)
    simulate.add_argument("--output", help="save the trace to this .npz path")
    simulate.add_argument("--runs", type=int, default=1, help="number of runs")

    pretrain = sub.add_parser("pretrain", help="pre-train an NTT and save a checkpoint")
    _add_common(pretrain)
    pretrain.add_argument("--output", default="ntt_checkpoint.npz", help="checkpoint path")
    pretrain.add_argument("--epochs", type=int, default=None, help="override epochs")

    evaluate = sub.add_parser("evaluate", help="evaluate a checkpoint vs baselines")
    _add_common(evaluate)
    evaluate.add_argument("checkpoint", help="checkpoint produced by `repro pretrain`")

    report = sub.add_parser("report", help="dataset statistics for a scenario")
    _add_common(report)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", default="pretrain", choices=["pretrain", "case1", "case2"]
    )
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--seed", type=int, default=0)


def _cmd_simulate(args) -> int:
    from repro.analysis.reports import trace_report
    from repro.core.pipeline import get_scale
    from repro.netsim.scenarios import generate_traces

    scale = get_scale(args.scale)
    traces = generate_traces(scale.scenario(args.scenario, seed=args.seed), n_runs=args.runs)
    for index, trace in enumerate(traces):
        print(trace_report(trace, name=f"{args.scenario} run {index}"))
    if args.output:
        traces[0].save(args.output)
        print(f"saved first run to {args.output}")
    return 0


def _cmd_pretrain(args) -> int:
    from dataclasses import replace

    from repro.core.pipeline import ExperimentContext, get_scale
    from repro.nn.serialize import save_checkpoint

    scale = get_scale(args.scale)
    if args.epochs is not None:
        scale = replace(scale, pretrain_settings=scale.pretrain_settings.scaled(args.epochs))
    context = ExperimentContext(scale)
    result = context.pretrained()
    print(
        f"pre-trained in {result.history.wall_time:.0f}s; "
        f"test delay MSE {result.test_mse_scaled:.4f} x1e-3 s^2"
    )
    save_checkpoint(
        result.model,
        args.output,
        metadata={
            "scale": scale.name,
            "scaler": result.pipeline.feature_scaler.to_dict(),
            "message_size_scaler": result.pipeline.message_size_scaler.to_dict(),
            "test_mse_seconds2": result.test_mse_seconds2,
        },
    )
    print(f"checkpoint written to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.core.baselines import evaluate_baselines
    from repro.core.evaluation import evaluate_delay
    from repro.core.features import FeaturePipeline
    from repro.core.model import NTTForDelay
    from repro.core.pipeline import ExperimentContext, get_scale
    from repro.datasets.normalize import FeatureScaler
    from repro.nn.serialize import load_state

    scale = get_scale(args.scale)
    context = ExperimentContext(scale)
    bundle = context.bundle(args.scenario)

    state, metadata = load_state(args.checkpoint)
    model = NTTForDelay(scale.model_config())
    model.load_state_dict(state)
    pipeline = FeaturePipeline()
    pipeline.feature_scaler = FeatureScaler.from_dict(metadata["scaler"])
    pipeline.message_size_scaler = FeatureScaler.from_dict(metadata["message_size_scaler"])

    mse = evaluate_delay(model, pipeline, bundle.test)
    print(f"checkpoint delay MSE on {args.scenario}: {mse * 1e3:.4f} x1e-3 s^2")
    for name, row in evaluate_baselines(bundle.test).items():
        print(f"baseline {name:14s}: {row['delay_mse'] * 1e3:.4f} x1e-3 s^2")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.reports import dataset_report
    from repro.core.pipeline import ExperimentContext, get_scale

    scale = get_scale(args.scale)
    context = ExperimentContext(scale)
    print(dataset_report(context.bundle(args.scenario)))
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "pretrain": _cmd_pretrain,
    "evaluate": _cmd_evaluate,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
