#!/usr/bin/env python
"""A minimal custom pipeline stage, end-to-end on a worker pool.

Registers a ``trace_digest`` stage in about twenty lines — a content
address (``key_fn``), a dependency on the built-in ``traces`` stage and
a pure ``run`` body — then sweeps it over several scenarios through the
campaign engine.  Everything else is free: the planner deduplicates
shared work, the ``traces`` dependencies stream through the artifact
store, the digest itself is cached (the second submission is all cache
hits), a JSON manifest records the campaign, and ``--workers 2`` fans
the independent scenarios out over a process pool.

Run::

    python examples/custom_stage.py --workers 2
    python examples/custom_stage.py --scenarios pretrain,case1,case2
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.api import ArtifactStore, ExperimentSpec, register_stage, stable_hash
from repro.runtime import expand_grid, plan_campaign, run_campaign


def _digest_key(spec: ExperimentSpec, params: dict) -> str:
    """Everything the digest depends on: the resolved scenario (which
    embeds the seed), the run count and the stage parameters."""
    return stable_hash(
        {
            "artifact": "trace_digest",
            "scenario": spec.scenario_config(),
            "n_runs": spec.to_scale().n_runs,
            "quantile": float(params.get("quantile", 0.99)),
        }
    )


@register_stage(
    "trace_digest",
    deps=("traces",),
    version=1,
    kind="evaluations",
    key_fn=_digest_key,
    description="per-scenario delay digest computed from stored traces",
)
def run_trace_digest(experiment, inputs, params):
    """Summarise a scenario's delay distribution from its stored traces."""
    store, key = experiment.store, params.get("key")
    if store is not None and key is not None:
        cached = store.get_json("evaluations", key)
        if cached is not None:
            return True, cached
    traces = experiment.traces()  # served from the store (the planned dep)
    quantile = float(params.get("quantile", 0.99))
    delays = np.concatenate([trace.delay for trace in traces])
    payload = {
        "scenario": experiment.spec.scenario,
        "runs": len(traces),
        "packets": int(delays.size),
        "delay_mean_ms": float(delays.mean() * 1e3),
        f"delay_p{int(quantile * 100)}_ms": float(np.quantile(delays, quantile) * 1e3),
    }
    if store is not None and key is not None:
        store.put_json("evaluations", key, payload)
    return False, payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", default="pretrain,case1")
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small"])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-dir", default=None, help="artifact store root")
    parser.add_argument(
        "--output-dir", default="bench_results/smoke",
        help="where the digest summary JSON lands (gitignored by default)",
    )
    args = parser.parse_args()

    specs = expand_grid(
        scenarios=[name.strip() for name in args.scenarios.split(",") if name.strip()],
        scales=[args.scale],
        pipeline=("trace_digest",),
    )
    store = ArtifactStore(args.cache_dir)

    print(f"== trace_digest registered in-line; planning {len(specs)} spec(s)")
    print(plan_campaign(specs).describe(store))

    print(f"== Executing on {args.workers} worker(s)")
    result = run_campaign(specs, store=store, workers=args.workers)
    print(result.format_summary())
    if not result.ok:
        raise SystemExit(1)
    digests = {
        row["scenario"]: row
        for task_id, row in result.results.items()
        if task_id.startswith("trace_digest:")
    }
    for scenario, row in sorted(digests.items()):
        print(
            f"   {scenario:10s} {row['packets']:7d} packets, "
            f"mean delay {row['delay_mean_ms']:.3f} ms"
        )

    print("== Re-submitting (every task served from the artifact store)")
    again = run_campaign(specs, store=store, workers=args.workers)
    print(
        f"   {again.cache_hits}/{again.summary['total']} cache hit(s); "
        f"manifest: {again.manifest_path}"
    )

    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    output_path = output_dir / "custom_stage.json"
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(
            {"scale": args.scale, "workers": args.workers, "digests": digests},
            handle, indent=2, sort_keys=True,
        )
    print(f"== Digest summary written to {output_path}")


if __name__ == "__main__":
    main()
