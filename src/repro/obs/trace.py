"""Tracing: nested spans with microsecond wall-clock timestamps.

A :class:`Tracer` records :class:`Span` trees — a span is opened as a
context manager, nests under whatever span is open on the same tracer,
and captures start/duration in microseconds.  Timestamps come from one
monotonic clock (``time.perf_counter``) anchored once to wall time at
tracer construction, so spans from different processes land on a
shared (approximate) wall-clock timeline while durations stay immune
to wall-clock steps.

Serialized spans are plain nested dictionaries (``name`` /
``start_us`` / ``dur_us`` / ``attrs`` / ``events`` / ``children``) —
the form the campaign manifest embeds.  Two exporters turn them into
files:

* :func:`chrome_trace` — the Chrome trace-event JSON format
  (``chrome://tracing`` and Perfetto load it directly): one ``"ph":
  "X"`` complete event per span, ``"ph": "i"`` instants for events.
* :func:`spans_to_jsonl` — depth-first structured JSONL for ad-hoc
  ``jq``/pandas analysis.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = ["Span", "Tracer", "chrome_trace", "spans_to_jsonl"]


class Span:
    """One timed operation; may carry attributes, instants and children."""

    __slots__ = ("name", "start_us", "end_us", "attrs", "events", "children")

    def __init__(self, name: str, start_us: float, attrs: dict):
        self.name = name
        self.start_us = start_us
        self.end_us = start_us
        self.attrs = attrs
        self.events: list[dict] = []
        self.children: list[Span] = []

    def set(self, **attrs) -> "Span":
        """Attach or update attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def dur_us(self) -> float:
        return max(self.end_us - self.start_us, 0.0)

    def to_dict(self) -> dict:
        row = {
            "name": self.name,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
        }
        if self.attrs:
            row["attrs"] = dict(self.attrs)
        if self.events:
            row["events"] = [dict(event) for event in self.events]
        if self.children:
            row["children"] = [child.to_dict() for child in self.children]
        return row


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs["status"] = "error"
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Builds span trees; thread-safe (one open-span stack per thread)."""

    def __init__(self, clock=time.perf_counter, wall_clock=time.time):
        self._clock = clock
        # One-time anchor: monotonic deltas projected onto wall time.
        self._anchor_wall_us = wall_clock() * 1e6
        self._anchor_clock = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: list[Span] = []
        self._instants: list[dict] = []

    def now_us(self) -> float:
        """Microseconds on the tracer's wall-anchored monotonic timeline."""
        return self._anchor_wall_us + (self._clock() - self._anchor_clock) * 1e6

    # -- span construction --------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span: ``with tracer.span("stage:pretrain") as span: ...``"""
        return _SpanContext(self, Span(name, self.now_us(), attrs))

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span.start_us = self.now_us()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end_us = self.now_us()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def add_span(self, name: str, start_us: float, dur_us: float, **attrs) -> Span:
        """Record an already-timed span (hooks that measured elsewhere)."""
        span = Span(name, start_us, attrs)
        span.end_us = start_us + max(dur_us, 0.0)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        return span

    def instant(self, name: str, **attrs) -> dict:
        """A zero-duration event, attached to the open span if any."""
        event = {"name": name, "ts_us": self.now_us()}
        if attrs:
            event["attrs"] = attrs
        stack = self._stack()
        if stack:
            stack[-1].events.append(event)
        else:
            with self._lock:
                self._instants.append(event)
        return event

    # -- export -------------------------------------------------------------------

    def finished(self) -> list[dict]:
        """Serialized root spans recorded so far (open spans excluded)."""
        stack = set(id(span) for span in self._stack())
        with self._lock:
            return [
                span.to_dict() for span in self._roots if id(span) not in stack
            ]

    def instants(self) -> list[dict]:
        with self._lock:
            return [dict(event) for event in self._instants]

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self._instants.clear()


# -- exporters --------------------------------------------------------------------


def _walk(span: dict, visit, depth: int = 0) -> None:
    visit(span, depth)
    for child in span.get("children", ()):
        _walk(child, visit, depth + 1)


def chrome_trace(
    spans: list[dict], instants: list[dict] = (), pid: int = 1, process_name: str = "repro"
) -> dict:
    """Chrome trace-event JSON from serialized span trees.

    Each span becomes a complete (``"ph": "X"``) event; span instants
    and top-level instants become ``"ph": "i"`` events.  The ``tid``
    lane comes from a span's ``worker`` attribute when present (so a
    pool campaign renders one lane per worker), else lane 0.
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]

    def visit(span: dict, depth: int) -> None:
        attrs = span.get("attrs", {})
        tid = attrs.get("worker", 0)
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": span["start_us"],
                "dur": span["dur_us"],
                "pid": pid,
                "tid": int(tid) if isinstance(tid, (int, float)) else 0,
                "args": {key: value for key, value in attrs.items()},
            }
        )
        for event in span.get("events", ()):
            events.append(
                {
                    "name": event["name"],
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "ts": event["ts_us"],
                    "pid": pid,
                    "tid": int(tid) if isinstance(tid, (int, float)) else 0,
                    "args": dict(event.get("attrs", {})),
                }
            )

    for span in spans:
        _walk(span, visit)
    for event in instants:
        events.append(
            {
                "name": event["name"],
                "cat": "repro",
                "ph": "i",
                "s": "p",
                "ts": event["ts_us"],
                "pid": pid,
                "tid": 0,
                "args": dict(event.get("attrs", {})),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_to_jsonl(spans: list[dict]) -> str:
    """Depth-first JSONL: one flattened record per span."""
    lines: list[str] = []

    def visit(span: dict, depth: int) -> None:
        row = {
            "name": span["name"],
            "depth": depth,
            "start_us": span["start_us"],
            "dur_us": span["dur_us"],
            "attrs": span.get("attrs", {}),
        }
        lines.append(json.dumps(row, sort_keys=True, default=str))

    for span in spans:
        _walk(span, visit)
    return "\n".join(lines) + ("\n" if lines else "")
