"""Sweep expansion: grids and spec files → lists of specs.

The campaign engine consumes explicit spec lists; this module produces
them, either from a scenario × scale × seed grid (optionally crossed
with per-spec override dictionaries) or from a JSON sweep file::

    {"scenarios": ["pretrain", "case1"], "scales": ["smoke"], "seeds": [0, 1]}

or, fully explicit::

    {"specs": [{"scenario": "case1", "scale": "smoke", "seed": 3}, ...]}

A file may carry both forms; the grid expands first, explicit specs
append after, and the combined list is deduplicated by spec hash.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api.spec import ExperimentSpec

__all__ = ["expand_grid", "specs_from_file"]


def expand_grid(
    scenarios=("pretrain",),
    scales=("smoke",),
    seeds=(0,),
    overrides=None,
    **common,
) -> list[ExperimentSpec]:
    """Expand scenario × scale × seed (× overrides) into specs.

    ``overrides`` is an optional sequence of spec-field dictionaries
    crossed into the grid — e.g. two window configs over three scenarios
    expand to six specs.  ``common`` fields apply everywhere.
    """
    variants = list(overrides) if overrides else [{}]
    specs: list[ExperimentSpec] = []
    seen: set[str] = set()
    for variant in variants:
        for spec in ExperimentSpec.grid(
            scenarios=scenarios, scales=scales, seeds=seeds, **{**common, **variant}
        ):
            if spec.spec_hash not in seen:
                seen.add(spec.spec_hash)
                specs.append(spec)
    return specs


def specs_from_file(path) -> list[ExperimentSpec]:
    """Load sweep specs from a JSON file (grid and/or explicit form)."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object at the top level")
    known = {"scenarios", "scales", "seeds", "overrides", "specs"}
    unknown = set(document) - known
    if unknown:
        raise ValueError(f"{path}: unknown keys {sorted(unknown)}; expected {sorted(known)}")
    specs: list[ExperimentSpec] = []
    if any(key in document for key in ("scenarios", "scales", "seeds", "overrides")):
        specs.extend(
            expand_grid(
                scenarios=document.get("scenarios", ("pretrain",)),
                scales=document.get("scales", ("smoke",)),
                seeds=document.get("seeds", (0,)),
                overrides=[
                    _decode_overrides(entry) for entry in document.get("overrides", [])
                ],
            )
        )
    for entry in document.get("specs", []):
        specs.append(ExperimentSpec.from_dict(entry))
    if not specs:
        raise ValueError(f"{path}: no specs — provide a grid and/or a 'specs' list")
    deduplicated: list[ExperimentSpec] = []
    seen: set[str] = set()
    for spec in specs:
        if spec.spec_hash not in seen:
            seen.add(spec.spec_hash)
            deduplicated.append(spec)
    return deduplicated


_OVERRIDE_FIELDS = ("n_runs", "window", "model", "pretrain", "finetune", "fine_fraction")


def _decode_overrides(entry: dict) -> dict:
    """Decode one override dictionary's nested config payloads.

    Overrides cross *into* the grid, so grid axes (scenario/scale/seed)
    are rejected here instead of being silently dropped — put them in
    the grid lists, or use the explicit ``specs`` form.
    """
    unknown = set(entry) - set(_OVERRIDE_FIELDS)
    if unknown:
        raise ValueError(
            f"override keys {sorted(unknown)} are not overridable; "
            f"choose from {sorted(_OVERRIDE_FIELDS)} (scenario/scale/seed "
            "belong in the grid lists or an explicit 'specs' entry)"
        )
    decoded = ExperimentSpec.from_dict({"scenario": "pretrain", "scale": "smoke", **entry})
    fields = {}
    for name in _OVERRIDE_FIELDS:
        value = getattr(decoded, name)
        if value is not None:
            fields[name] = value
    return fields
