"""Clean lock fixture: every cross-thread write holds the lock."""

import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = None
        self.status = "idle"

    def start(self):
        self._thread = threading.Thread(target=self._run)
        with self._lock:
            self.status = "starting"
        self._thread.start()

    def _run(self):
        with self._lock:
            self.status = "running"
