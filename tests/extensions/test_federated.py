"""Tests for federated averaging and the FedAvg loop."""

import numpy as np
import pytest

from repro.core.model import NTTConfig, NTTForDelay
from repro.core.pretrain import TrainSettings
from repro.extensions.federated import FederatedTrainer, federated_average


class TestFederatedAverage:
    def test_single_state_identity(self, rng):
        state = {"w": rng.normal(size=(3, 3)), "b": rng.normal(size=3)}
        merged = federated_average([state])
        assert np.allclose(merged["w"], state["w"])

    def test_uniform_average(self):
        a = {"w": np.zeros(4)}
        b = {"w": np.full(4, 2.0)}
        merged = federated_average([a, b])
        assert np.allclose(merged["w"], 1.0)

    def test_weighted_average(self):
        a = {"w": np.zeros(4)}
        b = {"w": np.full(4, 4.0)}
        merged = federated_average([a, b], weights=[3.0, 1.0])
        assert np.allclose(merged["w"], 1.0)

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError):
            federated_average([{"w": np.zeros(2)}, {"v": np.zeros(2)}])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            federated_average([{"w": np.zeros(2)}, {"w": np.zeros(3)}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            federated_average([])

    def test_invalid_weights(self):
        states = [{"w": np.zeros(2)}, {"w": np.zeros(2)}]
        with pytest.raises(ValueError):
            federated_average(states, weights=[1.0])
        with pytest.raises(ValueError):
            federated_average(states, weights=[1.0, -1.0])

    def test_average_of_model_states_loads_back(self):
        model_a = NTTForDelay(NTTConfig.smoke())
        from dataclasses import replace

        model_b = NTTForDelay(replace(NTTConfig.smoke(), seed=1))
        merged = federated_average([model_a.state_dict(), model_b.state_dict()])
        target = NTTForDelay(NTTConfig.smoke())
        target.load_state_dict(merged)  # shapes must line up
        sample = next(iter(merged))
        expected = 0.5 * (model_a.state_dict()[sample] + model_b.state_dict()[sample])
        assert np.allclose(merged[sample], expected)


class TestFederatedTrainer:
    @pytest.fixture(scope="class")
    def shards(self, smoke_bundle):
        """Split one bundle's windows into two pseudo-organisations."""
        from dataclasses import replace as dc_replace

        half = len(smoke_bundle.train) // 2
        first = dc_replace(
            smoke_bundle,
            name="org-0",
            train=smoke_bundle.train.subset(np.arange(half)),
        )
        second = dc_replace(
            smoke_bundle,
            name="org-1",
            train=smoke_bundle.train.subset(np.arange(half, len(smoke_bundle.train))),
        )
        return [first, second]

    def test_no_clients_rejected(self):
        with pytest.raises(ValueError):
            FederatedTrainer(NTTConfig.smoke(), [])

    def test_round_updates_global_model(self, shards):
        settings = TrainSettings(epochs=1, batch_size=32, patience=None)
        trainer = FederatedTrainer(NTTConfig.smoke(), shards, settings=settings)
        before = {k: v.copy() for k, v in trainer.global_model.state_dict().items()}
        outcome = trainer.run_round()
        after = trainer.global_model.state_dict()
        assert any(not np.array_equal(after[k], before[k]) for k in before)
        assert len(outcome.client_losses) == 2
        assert outcome.global_test_mse > 0

    def test_run_collects_rounds(self, shards):
        settings = TrainSettings(epochs=1, batch_size=32, patience=None)
        trainer = FederatedTrainer(NTTConfig.smoke(), shards, settings=settings)
        rounds = trainer.run(2)
        assert [r.round_index for r in rounds] == [0, 1]
        assert trainer.rounds == rounds

    def test_invalid_round_count(self, shards):
        trainer = FederatedTrainer(
            NTTConfig.smoke(), shards, settings=TrainSettings(epochs=1, patience=None)
        )
        with pytest.raises(ValueError):
            trainer.run(0)
