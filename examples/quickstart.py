#!/usr/bin/env python
"""Quickstart: simulate traffic, pre-train an NTT, predict packet delays.

This is the 5-minute tour of the ``repro.api`` facade:

1. describe the experiment declaratively with an :class:`ExperimentSpec`;
2. let the :class:`Experiment` simulate + window the pre-training
   scenario (served from the artifact cache on repeated runs);
3. pre-train a small Network Traffic Transformer on masked delay
   prediction;
4. serve batched delay predictions through the :class:`Predictor` and
   compare against the naive baselines of Table 1.

Run::

    python examples/quickstart.py             # fast (smoke scale)
    python examples/quickstart.py --scale small   # a few minutes
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import Experiment, ExperimentSpec, evaluate_baselines


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--no-cache", action="store_true", help="bypass the artifact store")
    args = parser.parse_args()

    spec = ExperimentSpec(scenario="pretrain", scale=args.scale)
    exp = Experiment.uncached(spec) if args.no_cache else Experiment(spec)
    if exp.store is not None:
        print(f"(artifact store: {exp.store.root} — spec {exp.spec_hash})")

    print(f"== 1. Simulating the Fig. 4 pre-training scenario ({args.scale} scale)")
    bundle = exp.bundle()
    print(
        f"   {bundle.n_packets} packets -> {bundle.n_windows} windows "
        f"of {bundle.window_config.window_len} packets "
        f"(train {len(bundle.train)} / val {len(bundle.val)} / test {len(bundle.test)})"
    )

    print("== 2. Pre-training the NTT on masked delay prediction")
    result = exp.pretrained()
    config = result.model.config
    print(
        f"   model: {config.aggregation.describe()}, d_model={config.d_model}, "
        f"{config.n_layers} encoder layers, "
        f"{result.model.num_parameters()} parameters"
    )
    print(
        f"   {result.history.epochs_run} epochs in {result.history.wall_time:.0f}s; "
        f"train loss {result.history.train_loss[0]:.4f} -> "
        f"{result.history.final_train_loss:.4f}"
    )

    print("== 3. Delay prediction on the held-out test set (MSE, s^2 x1e-3)")
    baselines = evaluate_baselines(bundle.test)
    print(f"   NTT (pre-trained): {result.test_mse_scaled:10.4f}")
    for name, row in baselines.items():
        print(f"   {name:17s}: {row['delay_mse'] * 1e3:10.4f}")

    print("== 4. A few sample predictions, served by the batched Predictor (ms)")
    predictor = exp.predictor()
    sample = bundle.test.subset(np.arange(min(5, len(bundle.test))))
    predictions = predictor.predict(sample.features, sample.receiver)
    for predicted, actual in zip(predictions, sample.delay_target):
        print(f"   predicted {predicted * 1e3:7.2f} ms   actual {actual * 1e3:7.2f} ms")


if __name__ == "__main__":
    main()
