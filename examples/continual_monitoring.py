#!/usr/bin/env python
"""Continual learning: detecting when a deployed NTT goes stale (§5).

Deploys a pre-trained delay model and monitors it with the Page-Hinkley
drift detector — first on fresh traffic from the pre-training
environment, then on case-1 cross-traffic.  Since the stage API, the
whole loop is the registered ``drift_monitor`` pipeline stage: each
scenario is one spec submitted through the campaign engine, the
``pretrain`` dependency is planned (and therefore cached) like any other
stage, both verdicts land in a JSON campaign manifest, and re-running is
served from the artifact store.  The deployed checkpoint is then
restored from the same store for attention inspection.

Run::

    python examples/continual_monitoring.py
    python examples/continual_monitoring.py --scale small --sensitivity 10
    repro sweep --scenarios case1 --stages drift_monitor     # same stage
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import ArtifactStore, Experiment, ExperimentSpec, attention_summary
from repro.runtime import run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small"])
    parser.add_argument("--sensitivity", type=float, default=50.0)
    parser.add_argument("--cache-dir", default=None, help="artifact store root")
    args = parser.parse_args()

    params = {"drift_monitor": {"sensitivity": args.sensitivity}}
    specs = [
        # Same environment: no drift expected.
        ExperimentSpec(scenario="pretrain", scale=args.scale,
                       pipeline=("drift_monitor",), stage_params=params),
        # Cross-traffic appears: the detector watches case 1.
        ExperimentSpec(scenario="case1", scale=args.scale,
                       pipeline=("drift_monitor",), stage_params=params),
    ]
    store = ArtifactStore(args.cache_dir)

    print("== Deploy + monitor as one campaign (pretrain is planned once, shared)")
    result = run_campaign(specs, store=store)
    print(result.format_summary())
    if not result.ok:
        raise SystemExit(1)

    for spec in specs:
        for task_id, row in result.results.items():
            if not task_id.startswith("drift_monitor:"):
                continue
            if row["scenario"] != spec.scenario:
                continue
            fresh = row["fresh"]
            print(
                f"   {row['scenario']:10s} {fresh['windows_seen']} windows, "
                f"degradation {fresh['degradation_ratio']:.2f}x, statistic "
                f"{fresh['statistic']:.2e} / threshold {fresh['threshold']:.2e} "
                f"-> drifted={fresh['drifted']}"
            )
            if fresh["drifted"]:
                print("      -> time to fine-tune on fresh data")

    print("== What does the deployed model attend to? (checkpoint from the store)")
    exp = Experiment(specs[0], store=store)
    pre = exp.pretrained()  # cache hit: the campaign already trained it
    bundle = exp.bundle("pretrain")
    sample = bundle.test.subset(np.arange(min(16, len(bundle.test))))
    summary = attention_summary(
        pre.model.ntt, pre.pipeline.transform_features(sample), sample.receiver
    )
    print("   " + summary.format().replace("\n", "\n   "))

    print(f"== Manifest: {result.manifest_path}")


if __name__ == "__main__":
    main()
