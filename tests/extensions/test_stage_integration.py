"""The §5 extension stages through the campaign engine: planning,
store caching (hits on the second invocation) and manifests."""

import pytest

from repro.api import ArtifactStore, ExperimentSpec, TrainSettings
from repro.runtime import plan_campaign, run_campaign

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


def fast_spec(scenario="pretrain", **kwargs):
    return ExperimentSpec(
        scenario=scenario, scale="smoke", pretrain=FAST, finetune=FAST, **kwargs
    )


class TestFederatedPretrainStage:
    def test_plans_standalone_task(self):
        plan = plan_campaign([fast_spec()], stages=("federated_pretrain",))
        (task,) = plan.ordered()
        assert task.stage == "federated_pretrain"
        assert task.kind == "checkpoints"
        assert task.key is not None

    def test_runs_and_cache_hits_on_second_invocation(self, store):
        spec = fast_spec(
            stage_params={"federated_pretrain": {"n_clients": 2, "rounds": 1}}
        )
        first = run_campaign([spec], stages=("federated_pretrain",), store=store)
        assert first.ok and first.summary["cache_hits"] == 0
        (task_id,) = list(first.results)
        row = first.results[task_id]
        assert row["n_clients"] == 2 and row["rounds"] == 1
        assert row["global_test_mse"] > 0
        assert len(row["round_test_mse"]) == 1

        second = run_campaign([spec], stages=("federated_pretrain",), store=store)
        assert second.summary["cache_hits"] == second.summary["total"] == 1
        assert second.results[task_id]["global_test_mse"] == row["global_test_mse"]

    def test_params_key_the_cache(self):
        spec_a = fast_spec(stage_params={"federated_pretrain": {"n_clients": 2}})
        spec_b = fast_spec(stage_params={"federated_pretrain": {"n_clients": 3}})
        plan = plan_campaign([spec_a, spec_b], stages=("federated_pretrain",))
        keys = {task.key for task in plan.ordered()}
        assert len(keys) == 2

    def test_global_model_lands_in_checkpoint_store(self, store):
        spec = fast_spec(
            stage_params={"federated_pretrain": {"n_clients": 2, "rounds": 1}}
        )
        result = run_campaign([spec], stages=("federated_pretrain",), store=store)
        (task,) = plan_campaign([spec], stages=("federated_pretrain",)).ordered()
        restored = store.get_pretrained(task.key)
        assert restored is not None
        assert restored.test_mse_seconds2 == result.results[task.id]["global_test_mse"]


class TestDriftMonitorStage:
    def test_plans_pretrain_chain_as_dependency(self):
        plan = plan_campaign([fast_spec("case1")], stages=("drift_monitor",))
        stages = [task.stage for task in plan.ordered()]
        assert stages.count("drift_monitor") == 1
        assert "pretrain" in stages and "bundle" in stages and "traces" in stages
        (drift,) = [t for t in plan.ordered() if t.stage == "drift_monitor"]
        assert any(dep.startswith("pretrain:") for dep in drift.deps)

    def test_reports_and_cache_hits_on_second_invocation(self, store):
        spec = fast_spec(
            "case1",
            stage_params={"drift_monitor": {"sensitivity": 1e-6, "tolerance": 0.0}},
        )
        first = run_campaign([spec], stages=("drift_monitor",), store=store)
        assert first.ok and first.summary["cache_hits"] == 0
        (drift_id,) = [t for t in first.results if t.startswith("drift_monitor:")]
        row = first.results[drift_id]
        assert row["scenario"] == "case1"
        assert row["baseline_error"] > 0
        # At a near-zero threshold with no tolerance slack, ordinary
        # in-distribution fluctuation must already trip the detector —
        # the verdict on the fresh scenario is then a genuine comparison
        # (a 1-epoch smoke model may legitimately not degrade on case1).
        assert row["in_distribution"]["drifted"] is True
        assert row["drifted"] == row["fresh"]["drifted"]
        assert row["fresh"]["windows_seen"] > row["in_distribution"]["windows_seen"]

        second = run_campaign([spec], stages=("drift_monitor",), store=store)
        assert second.summary["cache_hits"] == second.summary["total"]
        assert second.results[drift_id] == row

    def test_sensitivity_changes_the_key(self):
        loose = fast_spec("case1", stage_params={"drift_monitor": {"sensitivity": 100.0}})
        tight = fast_spec("case1", stage_params={"drift_monitor": {"sensitivity": 1.0}})
        keys = set()
        for spec in (loose, tight):
            plan = plan_campaign([spec], stages=("drift_monitor",))
            (drift,) = [t for t in plan.ordered() if t.stage == "drift_monitor"]
            keys.add(drift.key)
        assert len(keys) == 2
