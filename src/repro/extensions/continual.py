"""Continual learning: when is a deployed NTT outdated? (§5)

"At which point should we consider an NTT outdated? When and with what
data should it be re-trained?"  This module provides the monitoring half
of that loop: track a deployed model's squared error on fresh windows
and raise a drift flag when the error distribution degrades
significantly relative to the validation baseline.

The detector is a Page-Hinkley test over the per-window squared error —
a standard sequential change-point detector that accumulates deviations
above the baseline mean and flags when the cumulative excess crosses a
threshold, robust to isolated outliers.

The monitoring loop is also exposed as the registered ``drift_monitor``
pipeline stage (see :mod:`repro.extensions.stages`): it deploys the
spec's pre-trained model (planned as a real ``pretrain`` dependency, so
the checkpoint comes from the store) and reports whether the spec's
scenario has drifted away from the pre-training distribution — cached,
sweepable and manifest-producing like every other stage
(``repro sweep --scenarios case1 --stages drift_monitor``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import predict_delay
from repro.core.features import FeaturePipeline
from repro.core.model import NTTForDelay
from repro.datasets.windows import WindowDataset

__all__ = ["DriftMonitor", "DriftReport"]


@dataclass
class DriftReport:
    """Outcome of feeding one batch of fresh windows to the monitor."""

    windows_seen: int
    mean_error: float
    baseline_error: float
    statistic: float
    threshold: float
    drifted: bool

    @property
    def degradation_ratio(self) -> float:
        """Recent error relative to the deployment baseline."""
        if self.baseline_error <= 0:
            return float("inf") if self.mean_error > 0 else 1.0
        return self.mean_error / self.baseline_error


class DriftMonitor:
    """Page-Hinkley drift detector over a deployed delay model.

    Args:
        model: the deployed (fine-tuned) model.
        pipeline: its feature pipeline.
        baseline: windows representative of the deployment-time
            distribution; their mean squared error calibrates the test.
        sensitivity: multiple of the baseline error used as the
            Page-Hinkley threshold (higher = fewer false alarms).
        tolerance: slack added to the baseline mean before deviations
            count toward the statistic (absorbs benign noise).
    """

    def __init__(
        self,
        model: NTTForDelay,
        pipeline: FeaturePipeline,
        baseline: WindowDataset,
        sensitivity: float = 50.0,
        tolerance: float = 0.5,
    ):
        if sensitivity <= 0 or tolerance < 0:
            raise ValueError("sensitivity must be positive and tolerance non-negative")
        self.model = model
        self.pipeline = pipeline
        baseline_errors = self._squared_errors(baseline)
        self.baseline_error = float(baseline_errors.mean())
        if self.baseline_error <= 0:
            raise ValueError("baseline error is zero; cannot calibrate drift detection")
        self.sensitivity = float(sensitivity)
        self.tolerance = float(tolerance)
        self.threshold = self.sensitivity * self.baseline_error
        self._statistic = 0.0
        self._minimum = 0.0
        self._windows_seen = 0
        self._recent_errors: list[float] = []

    def _squared_errors(self, dataset: WindowDataset) -> np.ndarray:
        predictions = predict_delay(self.model, self.pipeline, dataset)
        return (predictions - dataset.delay_target) ** 2

    def observe(self, fresh: WindowDataset) -> DriftReport:
        """Feed a batch of fresh windows; returns the updated verdict.

        The Page-Hinkley statistic accumulates per-window error excess
        over ``baseline * (1 + tolerance)`` and compares its rise above
        the running minimum with the threshold.
        """
        if len(fresh) == 0:
            raise ValueError("observe() needs at least one window")
        errors = self._squared_errors(fresh)
        allowed = self.baseline_error * (1.0 + self.tolerance)
        for error in errors:
            self._statistic += float(error) - allowed
            self._minimum = min(self._minimum, self._statistic)
        self._windows_seen += len(fresh)
        self._recent_errors.extend(errors.tolist())
        self._recent_errors = self._recent_errors[-1000:]
        rise = self._statistic - self._minimum
        return DriftReport(
            windows_seen=self._windows_seen,
            mean_error=float(np.mean(self._recent_errors)),
            baseline_error=self.baseline_error,
            statistic=rise,
            threshold=self.threshold,
            drifted=rise > self.threshold,
        )

    def reset(self) -> None:
        """Clear the accumulated statistic (call after re-training)."""
        self._statistic = 0.0
        self._minimum = 0.0
        self._windows_seen = 0
        self._recent_errors.clear()
