"""Equivalence and gradient checks for the fused fast-path kernels.

Every fused op must match its composite twin **bit-for-bit** — forward
values and gradients — with one documented exception: ``gelu`` computes
``x**3`` as ``x*x*x`` (≤1 ulp), so graphs containing GELU are compared
under a near-machine-precision bound instead.  Finite-difference
gradchecks cover every new fused kernel independently, so the two paths
cannot be wrong together.
"""

import numpy as np
import pytest

from repro.core.aggregation import AggregationSpec, Aggregator
from repro.nn import fastpath
from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.layers import Linear
from repro.nn.losses import cross_entropy, mse_loss
from repro.nn.norm import LayerNorm
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.tensor import Tensor, linear, masked_softmax
from repro.nn.testing import gradcheck


def _run_both(build, run):
    """Run ``run`` on a fresh ``build()`` under each op path.

    Returns ``((fused_out, fused_grads), (composite_out, composite_grads))``.
    """

    def once():
        module, inputs = build()
        out = run(module, inputs)
        out.sum().backward() if out.size > 1 else out.backward()
        grads = [tensor.grad for tensor in inputs]
        grads += [p.grad for p in (module.parameters() if module is not None else [])]
        return out.data, grads

    fused = once()
    with fastpath.composite_ops():
        composite = once()
    return fused, composite


def _assert_bitwise(fused, composite):
    data_f, grads_f = fused
    data_c, grads_c = composite
    assert np.array_equal(data_f, data_c), "forward values differ"
    assert len(grads_f) == len(grads_c)
    for grad_f, grad_c in zip(grads_f, grads_c):
        if grad_c is None:
            assert grad_f is None
            continue
        assert np.array_equal(grad_f, grad_c), "gradients differ"


class TestFusedLinear:
    @pytest.mark.parametrize("shape", [(5, 6), (4, 7, 6), (2, 3, 5, 6)])
    @pytest.mark.parametrize("bias", [True, False])
    def test_bitwise_vs_composite(self, rng, shape, bias):
        x_data = rng.normal(size=shape)

        def build():
            layer = Linear(6, 3, np.random.default_rng(0), bias=bias)
            x = Tensor(x_data, requires_grad=True)
            return layer, [x]

        _assert_bitwise(*_run_both(build, lambda layer, inputs: layer(inputs[0])))

    def test_gradcheck(self, rng):
        w = rng.normal(size=(4, 3))
        b = rng.normal(size=(3,))
        gradcheck(
            lambda ts: linear(ts[0], ts[1], ts[2]).sum(),
            [rng.normal(size=(2, 5, 4)), w, b],
        )


class TestMaskedSoftmax:
    def test_bitwise_unmasked(self, rng):
        x_data = rng.normal(size=(3, 4, 6))

        def build():
            return None, [Tensor(x_data, requires_grad=True)]

        def run(_module, inputs):
            if fastpath.fused_ops_enabled():
                return masked_softmax(inputs[0])
            return inputs[0].softmax(axis=-1)

        _assert_bitwise(*_run_both(build, run))

    def test_masked_matches_masked_fill(self, rng):
        x_data = rng.normal(size=(3, 5, 5))
        mask = np.zeros((3, 5, 5), dtype=bool)
        mask[:, :, -1] = True
        mask[1, :, 2] = True
        fused = masked_softmax(Tensor(x_data), mask)
        with fastpath.composite_ops():
            composite = Tensor(x_data).masked_fill(mask, -1e9).softmax(axis=-1)
        # Hidden entries underflow to an exact zero on both paths.
        assert np.array_equal(fused.data[mask], np.zeros(mask.sum()))
        assert np.array_equal(fused.data, composite.data)
        assert np.allclose(fused.data.sum(axis=-1), 1.0)

    def test_fully_masked_row_matches_composite(self, rng):
        """A fully-hidden row falls back to the composite behaviour:
        uniform probabilities, zero gradient through every score."""
        x_data = rng.normal(size=(2, 3, 4))
        mask = np.zeros((2, 3, 4), dtype=bool)
        mask[0, 1] = True  # one row entirely hidden

        def once(fn):
            x = Tensor(x_data, requires_grad=True)
            out = fn(x)
            (out * Tensor(np.arange(4.0))).sum().backward()
            return out.data, x.grad

        out_f, grad_f = once(lambda x: masked_softmax(x, mask))
        with fastpath.composite_ops():
            out_c, grad_c = once(
                lambda x: x.masked_fill(mask, -1e9).softmax(axis=-1)
            )
        assert np.array_equal(out_f, out_c)
        assert np.allclose(out_f[0, 1], 0.25)
        assert np.array_equal(grad_f, grad_c)
        assert np.all(grad_f[0, 1] == 0.0)

    def test_gradcheck_with_mask(self, rng):
        mask = np.zeros((2, 4, 4), dtype=bool)
        mask[:, :, 0] = True
        gradcheck(
            lambda ts: (masked_softmax(ts[0], mask) * Tensor(np.arange(4.0))).sum(),
            [rng.normal(size=(2, 4, 4))],
        )


class TestFusedLayerNorm:
    @pytest.mark.parametrize("shape", [(8,), (5, 8), (3, 4, 8)])
    def test_bitwise_vs_composite(self, rng, shape):
        x_data = rng.normal(size=shape) * 3 + 1

        def build():
            norm = LayerNorm(8)
            norm.gamma.data = np.random.default_rng(1).normal(size=(8,))
            norm.beta.data = np.random.default_rng(2).normal(size=(8,))
            return norm, [Tensor(x_data, requires_grad=True)]

        _assert_bitwise(*_run_both(build, lambda norm, inputs: norm(inputs[0])))

    def test_gradcheck(self, rng):
        norm = LayerNorm(6)
        norm.gamma.data = rng.normal(size=(6,))
        norm.beta.data = rng.normal(size=(6,))

        def fn(ts):
            norm.gamma = ts[1]
            norm.beta = ts[2]
            return (norm(ts[0]) * Tensor(np.arange(6.0))).sum()

        gradcheck(fn, [rng.normal(size=(3, 6)), norm.gamma.data, norm.beta.data])


class TestFusedAttention:
    def test_module_bitwise_vs_composite(self, rng):
        x_data = rng.normal(size=(3, 5, 8))

        def build():
            mha = MultiHeadAttention(8, 2, np.random.default_rng(3))
            return mha, [Tensor(x_data, requires_grad=True)]

        _assert_bitwise(*_run_both(build, lambda mha, inputs: mha(inputs[0])))

    def test_single_head_stacked_layers_no_scratch_aliasing(self, rng):
        """n_heads == 1 makes the head merge a reshape *view*; stacked
        layers must not alias each other's pooled scratch buffers.
        Aliasing corrupts gradients at ~1e-5; the encoder's FFN GELUs
        allow only the documented ~1-ulp deviation, so a 1e-12 bound
        separates the two cleanly."""
        from repro.nn.transformer import TransformerEncoder

        x_data = rng.normal(size=(3, 5, 4))

        def once():
            encoder = TransformerEncoder(2, 4, 1, 8, np.random.default_rng(8))
            x = Tensor(x_data, requires_grad=True)
            out = encoder(x)
            out.sum().backward()
            return out.data, x.grad, [p.grad for p in encoder.parameters()]

        out_f, gx_f, grads_f = once()
        with fastpath.composite_ops():
            out_c, gx_c, grads_c = once()
        assert np.allclose(out_f, out_c, rtol=0, atol=1e-12)
        assert np.allclose(gx_f, gx_c, rtol=0, atol=1e-12)
        for a, b in zip(grads_f, grads_c):
            assert np.allclose(a, b, rtol=0, atol=1e-12)

    def test_module_bitwise_square_seq_equals_head_dim(self, rng):
        """seq == d_head exercises the scratch-slot collision guards."""
        x_data = rng.normal(size=(2, 4, 8))

        def build():
            mha = MultiHeadAttention(8, 2, np.random.default_rng(4))
            return mha, [Tensor(x_data, requires_grad=True)]

        _assert_bitwise(*_run_both(build, lambda mha, inputs: mha(inputs[0])))

    def test_module_masked_close(self, rng):
        x_data = rng.normal(size=(2, 5, 8))
        mask = np.zeros((1, 1, 5, 5), dtype=bool)
        mask[..., 4] = True

        def run():
            mha = MultiHeadAttention(8, 2, np.random.default_rng(5))
            x = Tensor(x_data, requires_grad=True)
            out = mha(x, mask=mask)
            out.sum().backward()
            return out.data, x.grad

        out_f, grad_f = run()
        with fastpath.composite_ops():
            out_c, grad_c = run()
        assert np.array_equal(out_f, out_c)
        assert np.array_equal(grad_f, grad_c)

    def test_function_bitwise(self, rng):
        q_data = rng.normal(size=(2, 3, 6, 4))
        k_data = rng.normal(size=(2, 3, 6, 4))
        v_data = rng.normal(size=(2, 3, 6, 4))

        def once():
            q, k, v = (Tensor(a, requires_grad=True) for a in (q_data, k_data, v_data))
            out, _ = scaled_dot_product_attention(q, k, v)
            out.sum().backward()
            return out.data, (q.grad, k.grad, v.grad)

        out_f, grads_f = once()
        with fastpath.composite_ops():
            out_c, grads_c = once()
        assert np.array_equal(out_f, out_c)
        for a, b in zip(grads_f, grads_c):
            assert np.array_equal(a, b)

    def test_gradcheck_fused_core(self, rng):
        mha = MultiHeadAttention(6, 2, rng)

        def fn(ts):
            return (mha(ts[0]) * Tensor(np.arange(6.0))).sum()

        mha.eval()
        gradcheck(fn, [rng.normal(size=(2, 4, 6))], atol=1e-4, rtol=1e-3)


class TestFusedAggregator:
    def test_bitwise_vs_composite(self, rng):
        spec = AggregationSpec.from_pairs([(2, 4), (3, 2), (4, 1)])
        x_data = rng.normal(size=(5, spec.seq_len, 3))

        def build():
            agg = Aggregator(spec, 3, 6, np.random.default_rng(6))
            return agg, [Tensor(x_data, requires_grad=True)]

        _assert_bitwise(*_run_both(build, lambda agg, inputs: agg(inputs[0])))

    def test_single_item_batch(self, rng):
        spec = AggregationSpec.from_pairs([(2, 2), (2, 1)])
        x_data = rng.normal(size=(1, spec.seq_len, 2))

        def build():
            agg = Aggregator(spec, 2, 4, np.random.default_rng(7))
            return agg, [Tensor(x_data, requires_grad=True)]

        _assert_bitwise(*_run_both(build, lambda agg, inputs: agg(inputs[0])))


class TestFusedLosses:
    def test_mse_bitwise(self, rng):
        p_data = rng.normal(size=(7, 3))
        t_data = rng.normal(size=(7, 3))

        def once():
            p = Tensor(p_data, requires_grad=True)
            t = Tensor(t_data, requires_grad=True)
            loss = mse_loss(p, t)
            loss.backward()
            return loss.item(), p.grad, t.grad

        loss_f, gp_f, gt_f = once()
        with fastpath.composite_ops():
            loss_c, gp_c, gt_c = once()
        assert loss_f == loss_c
        assert np.array_equal(gp_f, gp_c)
        assert np.array_equal(gt_f, gt_c)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        loss = cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-12)

    def test_cross_entropy_gradcheck(self, rng):
        targets = np.array([0, 2, 1, 2, 0])
        gradcheck(lambda ts: cross_entropy(ts[0], targets), [rng.normal(size=(5, 3))])

    def test_cross_entropy_repeated_backward(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 1, 2, 1])
        loss = cross_entropy(logits, targets)
        loss.backward()
        first = logits.grad.copy()
        logits.zero_grad()
        loss.backward()
        assert np.array_equal(logits.grad, first)
        assert logits.grad is not first

    def test_cross_entropy_validates(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))
        with pytest.raises(TypeError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(2))
        with pytest.raises(IndexError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 3]))


class TestGelu:
    def test_forward_within_one_ulp(self, rng):
        """The cube substitution is the fast path's only deviation."""
        x_data = rng.normal(size=(100,)) * 3
        fused = Tensor(x_data).gelu().data
        with fastpath.composite_ops():
            composite = Tensor(x_data).gelu().data
        ulp = np.spacing(np.abs(composite))
        assert np.all(np.abs(fused - composite) <= 2 * ulp)

    def test_gradcheck_fused(self, rng):
        gradcheck(lambda ts: ts[0].gelu().sum(), [rng.normal(size=(4, 5))])


class TestInPlaceOptimizers:
    def _train(self, optimizer_cls, steps=5, **kwargs):
        rng = np.random.default_rng(11)
        params = [
            __import__("repro.nn.module", fromlist=["Parameter"]).Parameter(
                rng.normal(size=shape)
            )
            for shape in [(4, 3), (3,), (2, 2)]
        ]
        optimizer = optimizer_cls(params, **kwargs)
        grad_rng = np.random.default_rng(12)
        for _ in range(steps):
            for parameter in params:
                parameter.grad = grad_rng.normal(size=parameter.data.shape)
            clip_grad_norm(params, 0.5)
            optimizer.step()
        return [parameter.data.copy() for parameter in params], optimizer

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (SGD, {"lr": 0.05}),
            (SGD, {"lr": 0.05, "momentum": 0.9}),
            (Adam, {"lr": 0.01}),
            (AdamW, {"lr": 0.01, "weight_decay": 0.1}),
        ],
    )
    def test_bitwise_vs_composite(self, cls, kwargs):
        fused, _ = self._train(cls, **kwargs)
        with fastpath.composite_ops():
            composite, _ = self._train(cls, **kwargs)
        for a, b in zip(fused, composite):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("cls,kwargs", [(Adam, {}), (AdamW, {"weight_decay": 0.1})])
    def test_state_buffers_do_not_alias_parameters(self, cls, kwargs):
        _, optimizer = self._train(cls, **kwargs)
        param_ids = {id(p.data) for p in optimizer.parameters}
        for state in (optimizer._m, optimizer._v):
            for buffer in state.values():
                assert id(buffer) not in param_ids
                for parameter in optimizer.parameters:
                    assert not np.shares_memory(buffer, parameter.data)

    def test_updates_are_in_place(self):
        rng = np.random.default_rng(13)
        from repro.nn.module import Parameter

        parameter = Parameter(rng.normal(size=(3, 3)))
        buffer = parameter.data
        optimizer = Adam([parameter], lr=0.01)
        parameter.grad = rng.normal(size=(3, 3))
        optimizer.step()
        assert parameter.data is buffer  # no reallocation per step

    def test_clip_grad_norm_single_pass_matches(self):
        from repro.nn.module import Parameter

        rng = np.random.default_rng(14)
        params = [Parameter(rng.normal(size=(4,))) for _ in range(3)]
        for parameter in params:
            parameter.grad = rng.normal(size=(4,)) * 10
        grads_before = [p.grad.copy() for p in params]
        total = clip_grad_norm(params, 1.0)
        expected_total = np.sqrt(sum(float((g * g).sum()) for g in grads_before))
        assert total == pytest.approx(expected_total, rel=0, abs=0)
        scale = 1.0 / (expected_total + 1e-12)
        for parameter, before in zip(params, grads_before):
            assert np.array_equal(parameter.grad, before * scale)


class TestScratchPool:
    def test_slots_isolate_buffers(self):
        a = fastpath.scratch((2, 2), np.float64, slot=0)
        b = fastpath.scratch((2, 2), np.float64, slot=1)
        assert a is not b
        assert a is fastpath.scratch((2, 2), np.float64, slot=0)
        fastpath.clear_scratch()
        assert a is not fastpath.scratch((2, 2), np.float64, slot=0)
