"""Multi-head scaled dot-product attention.

The mechanism behind Transformers (§2 of the paper): every output
position encodes its own information *and* its context, computed as a
weighted sum over all positions.  Cost is quadratic in sequence length —
the very reason the NTT aggregates packets before the encoder (§3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadAttention", "scaled_dot_product_attention"]


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """Attention(Q, K, V) = softmax(QKᵀ/√d) V.

    Args:
        query/key/value: tensors of shape ``(..., seq, d_head)``.
        mask: optional boolean array broadcastable to the attention
            matrix ``(..., seq_q, seq_k)``; True marks positions to hide.

    Returns:
        ``(output, weights)`` where weights are the attention
        probabilities (useful for inspection and tests).
    """
    d_head = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / math.sqrt(d_head))
    if mask is not None:
        scores = scores.masked_fill(mask, -1e9)
    weights = scores.softmax(axis=-1)
    return weights @ value, weights


class MultiHeadAttention(Module):
    """Standard multi-head attention with learned Q/K/V/output projections."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.w_query = Linear(d_model, d_model, rng)
        self.w_key = Linear(d_model, d_model, rng)
        self.w_value = Linear(d_model, d_model, rng)
        self.w_out = Linear(d_model, d_model, rng)
        self.dropout = Dropout(dropout, rng)
        #: Attention weights of the latest forward pass (numpy copy), for
        #: interpretability tooling; not part of the autograd graph.
        self.last_attention: np.ndarray | None = None

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(batch, seq, d_model) → (batch, heads, seq, d_head)."""
        return x.reshape(batch, seq, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Self-attention over ``x`` of shape ``(batch, seq, d_model)``.

        ``mask`` is a boolean array broadcastable to
        ``(batch, heads, seq, seq)``; True hides a key position.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, seq, d_model), got shape {x.shape}")
        batch, seq, _ = x.shape
        query = self._split_heads(self.w_query(x), batch, seq)
        key = self._split_heads(self.w_key(x), batch, seq)
        value = self._split_heads(self.w_value(x), batch, seq)
        context, weights = scaled_dot_product_attention(query, key, value, mask)
        self.last_attention = weights.data.copy()
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.dropout(self.w_out(context))

    def __repr__(self) -> str:
        return f"MultiHeadAttention(d_model={self.d_model}, n_heads={self.n_heads})"
