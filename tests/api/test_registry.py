"""Tests for the pluggable scenario registry."""

import pytest

from repro.api import SCENARIOS, ScenarioRegistry
from repro.core.pipeline import get_scale
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind


class TestDefaultRegistry:
    def test_lists_at_least_six_scenarios(self):
        assert len(SCENARIOS) >= 6

    def test_builtin_kinds_migrated(self):
        for name in (*ScenarioKind.ALL, "pretrain_red"):
            assert name in SCENARIOS

    def test_extension_scenarios_registered(self):
        assert "bursty_cross" in SCENARIOS
        assert "asymmetric_bottleneck" in SCENARIOS

    @pytest.mark.parametrize("scale", ["smoke", "small", "paper"])
    def test_every_scenario_builds_at_every_scale(self, scale):
        for name in SCENARIOS:
            config = SCENARIOS.build(name, scale=scale, seed=3)
            assert isinstance(config, ScenarioConfig)
            assert config.seed == 3

    def test_builtins_match_legacy_presets(self):
        assert SCENARIOS.build("pretrain", scale="paper") == ScenarioConfig.paper("pretrain")
        assert SCENARIOS.build("case1", scale="smoke") == ScenarioConfig.smoke("case1")

    def test_red_variant_changes_discipline_only_knob(self):
        config = SCENARIOS.build("pretrain_red", scale="smoke")
        assert config.bottleneck_discipline == "red"

    def test_bursty_cross_has_heavier_cross_traffic(self):
        base = SCENARIOS.build("case1", scale="smoke")
        bursty = SCENARIOS.build("bursty_cross", scale="smoke")
        assert bursty.n_cross_flows > base.n_cross_flows
        assert bursty.cross_traffic_bps > base.cross_traffic_bps

    def test_asymmetric_bottleneck_slows_receiver_links(self):
        config = SCENARIOS.build("asymmetric_bottleneck", scale="smoke")
        assert config.receiver_rate_bps < config.bottleneck_rate_bps

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(ValueError, match="pretrain"):
            SCENARIOS.build("bogus")

    def test_unknown_scale_lists_choices(self):
        with pytest.raises(ValueError, match="smoke"):
            SCENARIOS.build("pretrain", scale="enormous")


class TestRegistration:
    def test_decorator_registers_and_builds(self):
        registry = ScenarioRegistry()

        @registry.register("custom", description="a test scenario")
        def build_custom(scale: str, seed: int) -> ScenarioConfig:
            return ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=seed)

        assert "custom" in registry
        assert registry.build("custom", scale="smoke", seed=5).seed == 5
        assert registry.get("custom").description == "a test scenario"

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register("name")(lambda scale, seed: ScenarioConfig.smoke())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("name")(lambda scale, seed: ScenarioConfig.smoke())

    def test_explicit_replacement_allowed(self):
        registry = ScenarioRegistry()
        registry.register("name")(lambda scale, seed: ScenarioConfig.smoke())
        registry.register("name", replace_existing=True)(
            lambda scale, seed: ScenarioConfig.smoke(seed=1)
        )
        assert registry.build("name", scale="smoke").seed == 1


class TestScaleIntegration:
    def test_experiment_scale_routes_through_registry(self):
        scale = get_scale("smoke")
        config = scale.scenario("bursty_cross", seed=2)
        assert config.seed == 2
        assert config.n_cross_flows > 2

    def test_legacy_kind_lookup_still_works(self):
        assert get_scale("paper").scenario(ScenarioKind.PRETRAIN).n_senders == 60
