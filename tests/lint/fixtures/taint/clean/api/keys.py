"""Clean mirrors: wall time may flow into metadata, never into keys."""

import time

from api.hashing import stable_hash


def _stamp():
    return time.time()  # repro: allow(determinism): fixture mirror of the sanctioned clock helper


def spec_key(spec):
    return stable_hash({"spec": spec})


def result_with_metadata(spec):
    return {"key": spec_key(spec), "wall_time": _stamp()}


def order_key(items):
    return stable_hash(sorted(set(items)))
