"""Tests for multi-timescale aggregation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.aggregation import AggregationLevel, AggregationSpec, Aggregator
from repro.nn.tensor import Tensor


class TestSpec:
    def test_scaled_default_partitions_512(self):
        spec = AggregationSpec.multi_timescale_512()
        assert spec.seq_len == 512
        assert spec.out_len == 44

    def test_paper_spec_partitions_1024_into_48(self):
        spec = AggregationSpec.multi_timescale_paper()
        assert spec.seq_len == 1024
        assert spec.out_len == 48

    def test_none_spec(self):
        spec = AggregationSpec.none(48)
        assert spec.seq_len == 48
        assert spec.out_len == 48

    def test_fixed_paper_spec(self):
        spec = AggregationSpec.fixed_paper()
        assert spec.seq_len == 48 * 21 == 1008
        assert spec.out_len == 48

    def test_levels_must_be_ordered(self):
        with pytest.raises(ValueError):
            AggregationSpec.from_pairs([(4, 1), (4, 8)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregationSpec(())

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            AggregationLevel(0, 4)

    def test_describe(self):
        text = AggregationSpec.from_pairs([(2, 4), (4, 1)]).describe()
        assert "2x4" in text and "12 pkts" in text and "6 elems" in text

    @given(st.lists(st.tuples(st.integers(1, 6), st.integers(1, 6)), min_size=1, max_size=4))
    def test_property_lengths_consistent(self, pairs):
        # Sort blocks descending to satisfy the ordering constraint.
        pairs = sorted(pairs, key=lambda p: -p[1])
        spec = AggregationSpec.from_pairs(pairs)
        assert spec.seq_len == sum(c * b for c, b in pairs)
        assert spec.out_len == sum(c for c, __ in pairs)


class TestAggregator:
    def test_output_shape(self, rng):
        spec = AggregationSpec.from_pairs([(2, 8), (4, 2), (8, 1)])
        agg = Aggregator(spec, d_emb=6, d_model=10, rng=rng)
        out = agg(Tensor(rng.normal(size=(3, spec.seq_len, 6))))
        assert out.shape == (3, spec.out_len, 10)

    def test_wrong_input_shape_rejected(self, rng):
        spec = AggregationSpec.none(8)
        agg = Aggregator(spec, d_emb=4, d_model=6, rng=rng)
        with pytest.raises(ValueError):
            agg(Tensor(np.zeros((2, 9, 4))))
        with pytest.raises(ValueError):
            agg(Tensor(np.zeros((2, 8, 5))))

    def test_blocks_partition_input(self, rng):
        """Each output element depends only on its own packet block."""
        spec = AggregationSpec.from_pairs([(2, 4), (4, 1)])
        agg = Aggregator(spec, d_emb=3, d_model=5, rng=rng)
        x = rng.normal(size=(1, spec.seq_len, 3))
        base = agg(Tensor(x)).data
        # Perturb packets of the first block (packets 0..3): only output
        # element 0 may change.
        perturbed = x.copy()
        perturbed[0, :4, :] += 1.0
        out = agg(Tensor(perturbed)).data
        changed = ~np.isclose(out, base).all(axis=-1)[0]
        assert changed[0]
        assert not changed[1:].any()

    def test_last_element_is_most_recent_packet(self, rng):
        spec = AggregationSpec.from_pairs([(2, 4), (4, 1)])
        agg = Aggregator(spec, d_emb=3, d_model=5, rng=rng)
        x = rng.normal(size=(1, spec.seq_len, 3))
        base = agg(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, -1, :] += 1.0  # newest packet
        out = agg(Tensor(perturbed)).data
        changed = ~np.isclose(out, base).all(axis=-1)[0]
        assert changed[-1]
        assert changed.sum() == 1

    def test_gradients_flow(self, rng):
        spec = AggregationSpec.from_pairs([(2, 2), (2, 1)])
        agg = Aggregator(spec, d_emb=3, d_model=4, rng=rng)
        x = Tensor(rng.normal(size=(2, spec.seq_len, 3)), requires_grad=True)
        agg(x).sum().backward()
        assert x.grad is not None
        for parameter in agg.parameters():
            assert parameter.grad is not None

    def test_per_level_projection_sizes(self, rng):
        spec = AggregationSpec.from_pairs([(2, 8), (4, 1)])
        agg = Aggregator(spec, d_emb=6, d_model=10, rng=rng)
        assert agg.projections[0].in_features == 8 * 6
        assert agg.projections[1].in_features == 6
