"""Model evaluation in the paper's units.

Models train on normalised targets; these helpers convert predictions
back to physical units so the reported numbers mean something:
seconds² for delay, (natural-log seconds)² for message completion time.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import DELAY_COLUMN, FeaturePipeline
from repro.core.model import NTTForDelay, NTTForMCT
from repro.datasets.windows import WindowDataset
from repro.nn.tensor import no_grad

__all__ = ["predict_delay", "predict_mct", "evaluate_delay", "evaluate_mct"]

_EVAL_BATCH = 256


def predict_delay(
    model: NTTForDelay, pipeline: FeaturePipeline, dataset: WindowDataset
) -> np.ndarray:
    """Delay predictions in seconds."""
    features = pipeline.transform_features(dataset)
    outputs = []
    model.eval()
    with no_grad():
        for start in range(0, len(dataset), _EVAL_BATCH):
            stop = start + _EVAL_BATCH
            prediction = model(features[start:stop], dataset.receiver[start:stop])
            outputs.append(prediction.data)
    normalised = np.concatenate(outputs) if outputs else np.zeros(0)
    mean = pipeline.feature_scaler.mean[DELAY_COLUMN]
    return normalised * pipeline.delay_std + mean


def predict_mct(
    model: NTTForMCT, pipeline: FeaturePipeline, dataset: WindowDataset
) -> np.ndarray:
    """MCT predictions in natural-log seconds."""
    features = pipeline.transform_features(dataset)
    sizes = pipeline.transform_message_size(dataset)
    outputs = []
    model.eval()
    with no_grad():
        for start in range(0, len(dataset), _EVAL_BATCH):
            stop = start + _EVAL_BATCH
            prediction = model(
                features[start:stop], dataset.receiver[start:stop], sizes[start:stop]
            )
            outputs.append(prediction.data)
    normalised = np.concatenate(outputs) if outputs else np.zeros(0)
    return pipeline.mct_scaler.inverse_transform(normalised[:, None])[:, 0]


def evaluate_delay(
    model: NTTForDelay, pipeline: FeaturePipeline, dataset: WindowDataset
) -> float:
    """Delay MSE in seconds²."""
    predictions = predict_delay(model, pipeline, dataset)
    return float(np.mean((predictions - dataset.delay_target) ** 2))


def evaluate_mct(
    model: NTTForMCT, pipeline: FeaturePipeline, dataset: WindowDataset
) -> float:
    """MCT MSE in (natural-log seconds)²; skips unlabeled windows."""
    valid = np.isfinite(dataset.mct_target) & (dataset.mct_target > 0)
    subset = dataset.subset(valid)
    if len(subset) == 0:
        raise ValueError("dataset has no valid MCT targets")
    predictions = predict_mct(model, pipeline, subset)
    return float(np.mean((predictions - np.log(subset.mct_target)) ** 2))
