"""Tests for the simplified TCP Reno implementation."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.tcp import TcpSender, install_tcp_flow
from repro.netsim.topology import Network
from repro.netsim.units import mbps, milliseconds


def tcp_pair(rate=mbps(10), delay=milliseconds(2), queue=50, total_segments=None):
    sim = Simulator()
    net = Network(sim)
    a, b = net.add_node("src"), net.add_node("dst")
    net.add_link(a, b, rate, delay, queue_packets=queue)
    net.compute_routes()
    sender, receiver = install_tcp_flow(
        sim, a, b, flow_id=1, total_segments=total_segments
    )
    return sim, net, sender, receiver


def test_bounded_transfer_completes():
    sim, net, sender, receiver = tcp_pair(total_segments=200)
    sender.start()
    sim.run(until=30.0)
    assert sender.done
    assert receiver.expected_seq == 200


def test_no_loss_no_retransmissions():
    sim, net, sender, receiver = tcp_pair(queue=10_000, total_segments=300)
    sender.start()
    sim.run(until=30.0)
    assert sender.retransmissions == 0
    assert sender.timeouts == 0


def test_slow_start_grows_cwnd():
    sim, net, sender, receiver = tcp_pair(queue=10_000, total_segments=500)
    sender.start()
    initial = sender.cwnd
    sim.run(until=1.0)
    assert sender.cwnd > initial


def test_recovers_from_loss():
    # Tiny queue forces drops; the transfer must still complete.
    sim, net, sender, receiver = tcp_pair(queue=5, total_segments=400)
    sender.start()
    sim.run(until=120.0)
    assert receiver.expected_seq == 400
    assert sender.retransmissions > 0


def test_loss_reduces_cwnd():
    sim, net, sender, receiver = tcp_pair(queue=5)
    sender.start()
    peak = 0.0

    # Sample cwnd over time.
    def sample():
        nonlocal peak
        peak = max(peak, sender.cwnd)
        sim.schedule(0.01, sample)

    sim.schedule(0.0, sample)
    sim.run(until=5.0)
    assert sender.retransmissions + sender.timeouts > 0
    assert sender.cwnd < peak  # backed off at least once


def test_throughput_capped_by_link():
    sim, net, sender, receiver = tcp_pair(rate=mbps(5), queue=100)
    sender.start()
    duration = 5.0
    sim.run(until=duration)
    goodput_bps = receiver.expected_seq * sender.mss_bytes * 8 / duration
    assert goodput_bps <= mbps(5) * 1.05
    assert goodput_bps >= mbps(5) * 0.5  # uses a decent share


def test_rtt_estimation_positive():
    sim, net, sender, receiver = tcp_pair(queue=1000, total_segments=100)
    sender.start()
    sim.run(until=10.0)
    assert sender.srtt is not None
    # Base RTT = 2 * 2 ms propagation + serialization; SRTT must be at
    # least the propagation component.
    assert sender.srtt >= 2 * milliseconds(2) * 0.9


def test_flight_size_never_negative():
    sim, net, sender, receiver = tcp_pair(queue=5, total_segments=300)
    sender.start()
    violations = []

    def check():
        if sender.flight_size < 0:
            violations.append(sim.now)
        sim.schedule(0.005, check)

    sim.schedule(0.0, check)
    sim.run(until=30.0)
    assert not violations


def test_two_flows_share_bottleneck():
    sim = Simulator()
    net = Network(sim)
    a, b, c = net.add_node("a"), net.add_node("b"), net.add_node("c")
    net.add_link(a, b, mbps(10), milliseconds(1), queue_packets=60)
    net.add_link(b, c, mbps(10), milliseconds(1), queue_packets=60)
    net.compute_routes()
    s1, r1 = install_tcp_flow(sim, a, c, flow_id=1)
    s2, r2 = install_tcp_flow(sim, a, c, flow_id=2)
    s1.start()
    s2.start()
    sim.run(until=10.0)
    # Both flows make progress.
    assert r1.expected_seq > 100
    assert r2.expected_seq > 100
    total_goodput = (r1.expected_seq + r2.expected_seq) * 1500 * 8 / 10.0
    assert total_goodput <= mbps(10) * 1.05


def test_receiver_handles_out_of_order():
    sim, net, sender, receiver = tcp_pair(queue=5, total_segments=300)
    sender.start()
    sim.run(until=60.0)
    # After completion the out-of-order buffer must be drained.
    assert receiver.expected_seq == 300
    assert not receiver.out_of_order
