"""Tests for LayerNorm, positional encodings and multi-head attention."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.norm import LayerNorm
from repro.nn.positional import LearnedPositionalEncoding, SinusoidalPositionalEncoding
from repro.nn.tensor import Tensor
from repro.nn.testing import gradcheck


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(3.0, 5.0, size=(4, 8)))).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        layer = LayerNorm(4)
        layer.gamma.data = np.full(4, 2.0)
        layer.beta.data = np.full(4, 1.0)
        out = layer(Tensor(rng.normal(size=(3, 4)))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_wrong_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(np.ones((2, 5))))

    def test_gradcheck(self, rng):
        layer = LayerNorm(5)

        def fn(tensors):
            return (layer(tensors[0]) * tensors[1]).sum()

        gradcheck(fn, [rng.normal(size=(2, 5)), rng.normal(size=(2, 5))])

    def test_works_on_3d(self, rng):
        out = LayerNorm(6)(Tensor(rng.normal(size=(2, 3, 6))))
        assert out.shape == (2, 3, 6)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(0)


class TestPositional:
    def test_sinusoidal_shape_preserved(self):
        pe = SinusoidalPositionalEncoding(8, max_len=16)
        out = pe(Tensor(np.zeros((2, 10, 8))))
        assert out.shape == (2, 10, 8)

    def test_sinusoidal_first_position(self):
        pe = SinusoidalPositionalEncoding(4, max_len=8)
        out = pe(Tensor(np.zeros((1, 2, 4)))).data
        # Position 0: sin(0)=0, cos(0)=1 interleaved.
        assert np.allclose(out[0, 0], [0.0, 1.0, 0.0, 1.0])

    def test_sinusoidal_positions_distinct(self):
        pe = SinusoidalPositionalEncoding(16, max_len=64)
        out = pe(Tensor(np.zeros((1, 64, 16)))).data[0]
        # No two positions share an encoding.
        distances = np.linalg.norm(out[None, :, :] - out[:, None, :], axis=-1)
        np.fill_diagonal(distances, np.inf)
        assert distances.min() > 1e-3

    def test_sinusoidal_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            SinusoidalPositionalEncoding(7)

    def test_sinusoidal_too_long_rejected(self):
        pe = SinusoidalPositionalEncoding(4, max_len=4)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 5, 4))))

    def test_learned_is_trainable(self, rng):
        pe = LearnedPositionalEncoding(4, 8, rng)
        out = pe(Tensor(np.zeros((2, 3, 4))))
        out.sum().backward()
        assert pe.weight.grad is not None
        # Only the used positions receive gradient.
        assert np.allclose(pe.weight.grad[3:], 0.0)

    def test_learned_too_long_rejected(self, rng):
        pe = LearnedPositionalEncoding(4, 4, rng)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 5, 4))))


class TestScaledDotProduct:
    def test_weights_are_distributions(self, rng):
        q = Tensor(rng.normal(size=(2, 5, 4)))
        out, weights = scaled_dot_product_attention(q, q, q)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)
        assert out.shape == (2, 5, 4)

    def test_mask_hides_positions(self, rng):
        q = Tensor(rng.normal(size=(1, 4, 4)))
        mask = np.zeros((1, 4, 4), dtype=bool)
        mask[:, :, 0] = True
        __, weights = scaled_dot_product_attention(q, q, q, mask)
        assert np.allclose(weights.data[..., 0], 0.0, atol=1e-6)

    def test_uniform_when_scores_equal(self):
        q = Tensor(np.zeros((1, 3, 4)))
        __, weights = scaled_dot_product_attention(q, q, q)
        assert np.allclose(weights.data, 1.0 / 3.0)


class TestMultiHeadAttention:
    def test_shape_preserved(self, rng):
        mha = MultiHeadAttention(16, 4, rng)
        out = mha(Tensor(rng.normal(size=(2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_d_model_divisibility_checked(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, rng)

    def test_requires_3d_input(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(8, 2, rng)(Tensor(np.ones((4, 8))))

    def test_last_attention_recorded_when_enabled(self, rng):
        mha = MultiHeadAttention(8, 2, rng, record_attention=True)
        mha(Tensor(rng.normal(size=(3, 5, 8))))
        assert mha.last_attention.shape == (3, 2, 5, 5)
        assert np.allclose(mha.last_attention.sum(axis=-1), 1.0)

    def test_last_attention_off_by_default(self, rng):
        """The train loop must not pay for a (batch, heads, seq, seq)
        introspection copy it never reads."""
        mha = MultiHeadAttention(8, 2, rng)
        mha(Tensor(rng.normal(size=(3, 5, 8))))
        assert mha.last_attention is None

    def test_mask_broadcast(self, rng):
        mha = MultiHeadAttention(8, 2, rng, record_attention=True)
        mask = np.zeros((3, 1, 5, 5), dtype=bool)
        mask[..., 4] = True
        mha(Tensor(rng.normal(size=(3, 5, 8))), mask=mask)
        assert np.allclose(mha.last_attention[..., 4], 0.0, atol=1e-6)

    def test_gradients_reach_all_projections(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        out = mha(Tensor(rng.normal(size=(2, 4, 8))))
        out.sum().backward()
        for parameter in mha.parameters():
            assert parameter.grad is not None

    def test_permutation_equivariance_without_mask(self, rng):
        """Self-attention (no positional encoding) commutes with permutations."""
        mha = MultiHeadAttention(8, 2, rng)
        mha.eval()
        x = rng.normal(size=(1, 5, 8))
        perm = np.array([3, 1, 4, 0, 2])
        out = mha(Tensor(x)).data
        out_permuted = mha(Tensor(x[:, perm, :])).data
        assert np.allclose(out[:, perm, :], out_permuted, atol=1e-10)
