"""NN training throughput — steps/sec of the fused training fast path.

Measures the pretrain step (the campaign wall-clock hot loop since the
netsim fast path landed): the scale's NTT config driven by the same
wiring as ``core.pretrain`` — Adam, warmup-cosine schedule, gradient
clipping, dropout, shuffled loader — on synthetic pretrain-shaped
windows.  Two modes:

* **fused** (the default): single-node kernels for linear/LayerNorm/
  attention/masked-softmax/MSE, in-place optimizers, pooled gradient
  buffers and the zero-copy loader.
* **composite** (``fastpath.composite_ops()``): the pre-change
  operator-per-node graphs, allocating optimizers and plain loader.

Before any number is reported, both modes train from identical
initialisation and their per-epoch loss histories are compared: every
fused kernel is bit-identical to its composite twin except the
documented 1-ulp GELU cube substitution (``x*x*x`` for ``x**3``), so
the histories must agree to ~1e-9 relative — the speedup can never come
from dropping work.  A float32 row reports the additional opt-in
precision-policy headroom.

Timings use ``time.process_time`` with interleaved best-of rounds, like
the netsim benchmark.  Results land in ``bench_results/`` via
``save_results``; smoke output is routed to the gitignored
``bench_results/smoke/``.
"""

from __future__ import annotations

import time

import numpy as np

import repro.obs as obs
from benchmarks.conftest import save_results
from repro.core.model import NTTForDelay
from repro.nn import fastpath
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.schedule import warmup_cosine
from repro.nn.trainer import Trainer
from repro.utils.rng import RngFactory

#: Interleaved rounds per mode, by scale.
_ROUNDS = {"smoke": 5, "small": 4, "paper": 1}

#: Benchmark gates per scale (fused/float32 steps/sec over composite).
#:
#: The bit-compatible float64 fast path measures ~1.7x on a quiet
#: machine.  Its ceiling is structural, not slack: both paths must
#: execute the identical BLAS kernels and libm calls (dominated by the
#: GELU tanh/pow chain and the aggregation-gradient matmuls), so once
#: the graph/allocation overhead is fused away, that shared math bounds
#: the ratio — pushing past it requires changing arithmetic, which the
#: loss-equivalence gate above exists to forbid.  The opt-in
#: ``precision="float32"`` mode (different arithmetic by design) clears
#: 2x.  Smoke gates are sanity bounds for shared CI runners, not the
#: performance claim — that lives in the committed small-scale results.
_MIN_SPEEDUP = {"smoke": 1.2, "small": 1.5, "paper": 1.5}
_MIN_FLOAT32_SPEEDUP = {"smoke": 1.4, "small": 1.8, "paper": 1.8}

#: Measured training steps per epoch.
_STEPS_PER_EPOCH = 4


def _forward(model, batch):
    features, receiver, target = batch
    return model(features, receiver.astype(np.int64)), target


def _make_trainer(scale, precision: str = "float64"):
    """A fresh pretrain-shaped trainer + loader at this scale.

    Construction is deterministic, so two calls build bit-identical
    initial states regardless of the active op path.
    """
    config = scale.model_config()
    settings = scale.pretrain_settings
    batch = settings.batch_size
    n = batch * _STEPS_PER_EPOCH
    window_len = scale.window.window_len
    data_rng = RngFactory(0).derive("nn-bench-data")
    dataset = ArrayDataset(
        data_rng.normal(size=(n, window_len, 3)),
        data_rng.integers(0, config.n_receivers, size=(n, window_len)),
        data_rng.normal(size=(n,)),
    )
    loader = DataLoader(
        dataset,
        batch,
        shuffle=True,
        rng=RngFactory(0).derive("nn-bench-loader"),
        # The zero-copy loader is part of the fast path under test; the
        # composite mode measures the pre-change allocating loader.
        reuse_buffers=fastpath.fused_ops_enabled(),
    )
    with fastpath.precision(precision):
        model = NTTForDelay(config)
    total_steps = _STEPS_PER_EPOCH * 100
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=settings.lr),
        mse_loss,
        forward_fn=_forward,
        grad_clip=settings.grad_clip,
        schedule=warmup_cosine(
            max(1, int(total_steps * settings.warmup_fraction)), total_steps
        ),
        precision=precision,
    )
    return trainer, loader


def _epoch_seconds(scale, precision: str = "float64") -> float:
    """CPU seconds for one warmed-up training epoch."""
    trainer, loader = _make_trainer(scale, precision)
    trainer.train_epoch(loader)  # warm caches, buffers and BLAS
    start = time.process_time()
    trainer.train_epoch(loader)
    return time.process_time() - start


def _loss_history(scale, epochs=2):
    trainer, loader = _make_trainer(scale)
    return [trainer.train_epoch(loader) for _ in range(epochs)], trainer.model


def test_pretrain_step_throughput_fused_vs_composite(scale):
    """Fused >= _MIN_SPEEDUP x composite steps/sec, loss-equivalently."""
    rounds = _ROUNDS.get(scale.name, 1)

    # Equivalence gate first: identical seeds, both op paths.  All fused
    # kernels are bit-identical except GELU's 1-ulp cube; after two
    # epochs the histories must still agree to ~1e-9 relative.
    fused_losses, fused_model = _loss_history(scale)
    with fastpath.composite_ops():
        composite_losses, composite_model = _loss_history(scale)
    worst = max(
        abs(a - b) / abs(b) for a, b in zip(fused_losses, composite_losses)
    )
    assert worst < 1e-9, (
        f"fused path diverged from the composite path (rel {worst:.2e}); "
        "the speedup may not come from dropping work"
    )
    for (name, pf), (_, pc) in zip(
        fused_model.named_parameters(), composite_model.named_parameters()
    ):
        assert np.allclose(pf.data, pc.data, rtol=0, atol=1e-9), name

    # Interleave rounds so background load hits all modes symmetrically.
    fused_s = composite_s = float32_s = None
    for _ in range(rounds):
        with fastpath.composite_ops():
            elapsed = _epoch_seconds(scale)
        composite_s = elapsed if composite_s is None else min(composite_s, elapsed)
        elapsed = _epoch_seconds(scale)
        fused_s = elapsed if fused_s is None else min(fused_s, elapsed)
        elapsed = _epoch_seconds(scale, precision="float32")
        float32_s = elapsed if float32_s is None else min(float32_s, elapsed)

    speedup = composite_s / fused_s
    payload = {
        "config": "pretrain step (scale model config)",
        "steps_per_epoch": _STEPS_PER_EPOCH,
        "batch_size": scale.pretrain_settings.batch_size,
        "window_len": scale.window.window_len,
        "composite_cpu_s": composite_s,
        "fused_cpu_s": fused_s,
        "float32_cpu_s": float32_s,
        "composite_steps_per_s": _STEPS_PER_EPOCH / composite_s,
        "fused_steps_per_s": _STEPS_PER_EPOCH / fused_s,
        "float32_steps_per_s": _STEPS_PER_EPOCH / float32_s,
        "speedup": speedup,
        "float32_speedup": composite_s / float32_s,
        "max_loss_rel_diff": worst,
        "rounds": rounds,
    }
    save_results("nn_training", payload)

    print(
        f"\nnn training ({scale.name}): composite "
        f"{payload['composite_steps_per_s']:.2f} steps/s -> fused "
        f"{payload['fused_steps_per_s']:.2f} steps/s ({speedup:.2f}x; "
        f"float32 {payload['float32_steps_per_s']:.2f} steps/s, "
        f"loss rel diff {worst:.1e})"
    )
    minimum = _MIN_SPEEDUP.get(scale.name, 1.2)
    assert speedup >= minimum, (
        f"fused path only {speedup:.2f}x over the composite path "
        f"(expected >= {minimum}x; committed small-scale results show ~1.7x)"
    )
    float32_minimum = _MIN_FLOAT32_SPEEDUP.get(scale.name, 1.4)
    assert payload["float32_speedup"] >= float32_minimum, (
        f"float32 mode only {payload['float32_speedup']:.2f}x over the "
        f"composite path (expected >= {float32_minimum}x; committed "
        "small-scale results show >= 2x)"
    )


#: Observability overhead gate: enabled-mode epoch CPU time over
#: disabled-mode.  The trainer's hook sites cost one truthiness check
#: per step when no hooks are installed (the ``REPRO_OBS=0`` path);
#: enabled mode adds two ``perf_counter`` reads and a handful of
#: registry updates per step — noise against the step's matmuls at
#: small scale, but the smoke epoch is only milliseconds, hence its
#: looser sanity gate.
_MAX_OBS_OVERHEAD = {"smoke": 1.10, "small": 1.02, "paper": 1.02}


def test_observability_overhead(scale):
    """repro.obs on vs off: bit-identical training, <=2% CPU at scale."""
    rounds = _ROUNDS.get(scale.name, 1)

    obs.reset()
    try:
        # Equivalence gate first: hooks observe, never steer.  The same
        # seeds must produce bit-identical losses and parameters whether
        # the observability hook is installed or not.
        with obs.scope(False):
            off_losses, off_model = _loss_history(scale)
        with obs.scope(True):
            on_losses, on_model = _loss_history(scale)
        assert off_losses == on_losses, (
            "observability hooks changed the training trajectory"
        )
        for (name, po), (_, pn) in zip(
            off_model.named_parameters(), on_model.named_parameters()
        ):
            assert np.array_equal(po.data, pn.data), name

        off_s = on_s = None
        for _ in range(rounds):
            with obs.scope(False):
                elapsed = _epoch_seconds(scale)
            off_s = elapsed if off_s is None else min(off_s, elapsed)
            with obs.scope(True):
                elapsed = _epoch_seconds(scale)
            on_s = elapsed if on_s is None else min(on_s, elapsed)
    finally:
        obs.reset()  # drop metrics/spans the enabled rounds recorded

    ratio = on_s / off_s
    payload = {
        "config": "pretrain step (scale model config)",
        "steps_per_epoch": _STEPS_PER_EPOCH,
        "obs_off_cpu_s": off_s,
        "obs_on_cpu_s": on_s,
        "obs_off_steps_per_s": _STEPS_PER_EPOCH / off_s,
        "obs_on_steps_per_s": _STEPS_PER_EPOCH / on_s,
        "enabled_overhead_ratio": ratio,
        "rounds": rounds,
    }
    save_results("nn_obs_overhead", payload)

    print(
        f"\nnn obs overhead ({scale.name}): off "
        f"{payload['obs_off_steps_per_s']:.2f} steps/s, on "
        f"{payload['obs_on_steps_per_s']:.2f} steps/s ({ratio:.4f}x)"
    )
    maximum = _MAX_OBS_OVERHEAD.get(scale.name, 1.10)
    assert ratio <= maximum, (
        f"enabled observability costs {ratio:.3f}x over disabled "
        f"(expected <= {maximum}x; hook sites are per-step, not per-op)"
    )
