"""Regression losses.

The paper reports mean squared error for both tasks (§4); the others are
provided for robustness experiments.
"""

from __future__ import annotations

from repro.nn.tensor import Tensor

__all__ = ["mse_loss", "l1_loss", "huber_loss"]


def _check_shapes(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape};"
            " implicit broadcasting in a loss usually hides a bug"
        )


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    target = Tensor.ensure(target)
    _check_shapes(prediction, target)
    difference = prediction - target
    return (difference * difference).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    target = Tensor.ensure(target)
    _check_shapes(prediction, target)
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Implemented with differentiable primitives:
    ``0.5 * e^2`` for ``|e| <= delta`` else ``delta * (|e| - 0.5 * delta)``.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    target = Tensor.ensure(target)
    _check_shapes(prediction, target)
    error = prediction - target
    abs_error = error.abs()
    quadratic = 0.5 * error * error
    linear = delta * abs_error - 0.5 * delta * delta
    is_small = (abs_error.data <= delta).astype(float)
    mask = Tensor(is_small)
    return (quadratic * mask + linear * (1.0 - mask)).mean()
