"""Tests for declarative experiment specs and their content hashes."""

import pytest

from repro.api import ExperimentSpec, WindowConfig
from repro.api.hashing import stable_hash, to_jsonable
from repro.api.spec import (
    ntt_config_from_dict,
    ntt_config_to_dict,
    scenario_config_from_dict,
    scenario_config_to_dict,
)
from repro.core.model import NTTConfig
from repro.netsim.scenarios import ScenarioConfig


class TestStableHash:
    def test_deterministic(self):
        payload = {"b": 2, "a": [1.5, "x", None], "c": (True, False)}
        assert stable_hash(payload) == stable_hash(payload)

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_dataclasses_tagged_by_type(self):
        # Two different config types with identical fields must differ.
        assert stable_hash(WindowConfig(64, 4)) != stable_hash({"window_len": 64, "stride": 4})

    def test_plain_objects_canonicalised_without_ids(self):
        from repro.netsim.workloads import FixedMessageSizes

        first = to_jsonable(FixedMessageSizes(100))
        second = to_jsonable(FixedMessageSizes(100))
        assert first == second
        assert first["__class__"] == "FixedMessageSizes"


class TestExperimentSpec:
    def test_defaults_hash_like_explicit_equivalents(self):
        implicit = ExperimentSpec(scale="smoke")
        explicit = ExperimentSpec(scale="smoke", n_runs=1)  # smoke default
        assert implicit.spec_hash == explicit.spec_hash

    def test_hash_stable_across_instances(self):
        assert (
            ExperimentSpec(scenario="case1", scale="smoke").spec_hash
            == ExperimentSpec(scenario="case1", scale="smoke").spec_hash
        )

    def test_seed_changes_hash(self):
        assert (
            ExperimentSpec(scale="smoke").spec_hash
            != ExperimentSpec(scale="smoke", seed=1).spec_hash
        )

    def test_window_changes_hash(self):
        assert (
            ExperimentSpec(scale="smoke").spec_hash
            != ExperimentSpec(scale="smoke", window=WindowConfig(64, 2)).spec_hash
        )

    def test_spec_usable_as_dict_key(self):
        table = {ExperimentSpec(scale="smoke"): "value"}
        assert table[ExperimentSpec(scale="smoke")] == "value"

    def test_unknown_scenario_rejected_with_choices(self):
        with pytest.raises(ValueError, match="pretrain"):
            ExperimentSpec(scenario="bogus", scale="smoke")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="smoke"):
            ExperimentSpec(scale="enormous")

    def test_to_scale_applies_overrides(self):
        spec = ExperimentSpec(
            scale="smoke", n_runs=3, window=WindowConfig(64, 2), fine_fraction=0.5
        )
        scale = spec.to_scale()
        assert scale.n_runs == 3
        assert scale.window.stride == 2
        assert scale.fine_fraction == 0.5

    def test_model_override_resolves(self):
        config = NTTConfig.smoke(n_layers=3)
        spec = ExperimentSpec(scale="smoke", model=config)
        assert spec.to_scale().model_config().n_layers == 3
        assert spec.spec_hash != ExperimentSpec(scale="smoke").spec_hash

    def test_dict_roundtrip(self):
        spec = ExperimentSpec(
            scenario="case2",
            scale="smoke",
            seed=7,
            window=WindowConfig(64, 2),
            model=NTTConfig.smoke(),
            fine_fraction=0.2,
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec


class TestConfigConverters:
    def test_ntt_config_roundtrip(self):
        config = NTTConfig.paper()
        assert ntt_config_from_dict(ntt_config_to_dict(config)) == config

    def test_scenario_config_roundtrip(self):
        config = ScenarioConfig.small("case2", seed=3)
        restored = scenario_config_from_dict(scenario_config_to_dict(config))
        assert restored == config


class TestStagePipelineFields:
    def test_defaults_leave_hash_unchanged(self):
        # pipeline/stage_params default to None and must not perturb
        # the hash of pre-stage-API specs.
        assert ExperimentSpec(scale="smoke").pipeline is None
        assert ExperimentSpec(scale="smoke").stage_params is None

    def test_pipeline_normalised_and_hashed(self):
        spec = ExperimentSpec(scale="smoke", pipeline=["trace_stats"])
        assert spec.pipeline == ("trace_stats",)
        assert spec.spec_hash != ExperimentSpec(scale="smoke").spec_hash
        hash(spec)  # still usable as a dict key

    def test_empty_pipeline_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="pipeline"):
            ExperimentSpec(scale="smoke", pipeline=())

    def test_stage_params_frozen_hashable_and_thawed(self):
        spec = ExperimentSpec(
            scale="smoke",
            stage_params={"federated_pretrain": {"n_clients": 4, "tags": ["a", "b"]}},
        )
        hash(spec)
        assert spec.params_for("federated_pretrain") == {
            "n_clients": 4, "tags": ["a", "b"],
        }
        assert spec.params_for("other") == {}
        assert spec.stage_params_dict() == {
            "federated_pretrain": {"n_clients": 4, "tags": ["a", "b"]},
        }

    def test_stage_params_participate_in_hash(self):
        base = ExperimentSpec(scale="smoke")
        a = ExperimentSpec(scale="smoke", stage_params={"s": {"x": 1}})
        b = ExperimentSpec(scale="smoke", stage_params={"s": {"x": 2}})
        assert len({base.spec_hash, a.spec_hash, b.spec_hash}) == 3

    def test_tag_like_list_elements_round_trip(self):
        # A list whose first element is a literal tag string must not be
        # mistaken for a frozen container on thaw.
        params = {"tags": ["__dict__", ["__list__", 1]], "empty": [], "none": {}}
        spec = ExperimentSpec(scale="smoke", stage_params={"s": params})
        assert spec.params_for("s") == params
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_stage_params_order_insensitive(self):
        a = ExperimentSpec(scale="smoke", stage_params={"s": {"x": 1, "y": 2}})
        b = ExperimentSpec(scale="smoke", stage_params={"s": {"y": 2, "x": 1}})
        assert a == b and a.spec_hash == b.spec_hash

    def test_non_json_stage_params_rejected(self):
        import pytest

        with pytest.raises(TypeError, match="JSON"):
            ExperimentSpec(scale="smoke", stage_params={"s": {"x": object()}})

    def test_dict_roundtrip_with_stage_fields(self):
        spec = ExperimentSpec(
            scale="smoke",
            pipeline=("trace_stats",),
            stage_params={"drift_monitor": {"sensitivity": 2.5}},
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.spec_hash == spec.spec_hash
