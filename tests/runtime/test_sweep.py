"""Tests for sweep expansion (grids and spec files)."""

import json

import pytest

from repro.api import ExperimentSpec
from repro.runtime import expand_grid, specs_from_file


class TestExpandGrid:
    def test_scenario_major_order(self):
        specs = expand_grid(scenarios=["pretrain", "case1"], seeds=[0, 1])
        assert [(s.scenario, s.seed) for s in specs] == [
            ("pretrain", 0),
            ("pretrain", 1),
            ("case1", 0),
            ("case1", 1),
        ]
        assert all(spec.scale == "smoke" for spec in specs)

    def test_deduplicates_by_hash(self):
        specs = expand_grid(scenarios=["pretrain", "pretrain"], seeds=[0, 0])
        assert len(specs) == 1

    def test_common_fields_apply(self):
        specs = expand_grid(scenarios=["case1"], fine_fraction=0.5)
        assert specs[0].fine_fraction == 0.5

    def test_overrides_cross_the_grid(self):
        specs = expand_grid(
            scenarios=["case1"], seeds=[0],
            overrides=[{"fine_fraction": 0.2}, {"fine_fraction": 0.4}],
        )
        assert [spec.fine_fraction for spec in specs] == [0.2, 0.4]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            expand_grid(scenarios=["bogus"])

    def test_spec_grid_classmethod(self):
        specs = ExperimentSpec.grid(scenarios=["case1"], scales=["smoke"], seeds=[3])
        assert specs == [ExperimentSpec(scenario="case1", scale="smoke", seed=3)]


class TestSpecsFromFile:
    def write(self, tmp_path, document):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(document))
        return path

    def test_grid_form(self, tmp_path):
        path = self.write(
            tmp_path,
            {"scenarios": ["pretrain", "case1"], "scales": ["smoke"], "seeds": [0, 1]},
        )
        assert len(specs_from_file(path)) == 4

    def test_explicit_specs(self, tmp_path):
        path = self.write(
            tmp_path,
            {"specs": [{"scenario": "case1", "scale": "smoke", "seed": 7}]},
        )
        (spec,) = specs_from_file(path)
        assert (spec.scenario, spec.scale, spec.seed) == ("case1", "smoke", 7)

    def test_nested_settings_decode(self, tmp_path):
        path = self.write(
            tmp_path,
            {
                "specs": [
                    {
                        "scenario": "pretrain",
                        "scale": "smoke",
                        "pretrain": {"epochs": 1, "batch_size": 32},
                    }
                ]
            },
        )
        (spec,) = specs_from_file(path)
        assert spec.pretrain.epochs == 1

    def test_combined_forms_deduplicate(self, tmp_path):
        path = self.write(
            tmp_path,
            {
                "scenarios": ["pretrain"],
                "seeds": [0],
                "specs": [{"scenario": "pretrain", "scale": "smoke", "seed": 0}],
            },
        )
        assert len(specs_from_file(path)) == 1

    def test_unknown_key_rejected(self, tmp_path):
        path = self.write(tmp_path, {"scenario": ["typo"]})
        with pytest.raises(ValueError, match="unknown keys"):
            specs_from_file(path)

    def test_grid_axes_in_overrides_rejected(self, tmp_path):
        # seed/scenario/scale belong in the grid lists; dropping them
        # silently would run the wrong campaign.
        path = self.write(
            tmp_path, {"scenarios": ["pretrain"], "overrides": [{"seed": 7}]}
        )
        with pytest.raises(ValueError, match="not overridable"):
            specs_from_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = self.write(tmp_path, {})
        with pytest.raises(ValueError, match="no specs"):
            specs_from_file(path)
