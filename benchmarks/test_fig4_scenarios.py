"""Figure 4 — the dataset-generation setup, regenerated as trace statistics.

The paper's Fig. 4 is the topology diagram behind the three datasets;
the executable equivalent is: build each scenario, run it, and report
packet counts, delay distributions, drops and (for case 2) per-receiver
delay separation.  The benchmark also measures raw simulation speed.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_results
from repro.netsim.scenarios import ScenarioKind, build_scenario
from repro.utils.stats import percentile_summary


def _scenario_stats(scale, kind: str) -> dict:
    handle = build_scenario(scale.scenario(kind))
    trace = handle.run()
    delays = trace.delay
    summary = percentile_summary(delays * 1e3)
    per_receiver = {
        str(receiver): float(delays[trace.receiver_id == receiver].mean() * 1e3)
        for receiver in sorted(set(trace.receiver_id.tolist()))
    }
    return {
        "packets": len(trace),
        "messages": int(trace.is_message_end.sum()),
        "delay_mean_ms": summary.mean,
        "delay_p50_ms": summary.p50,
        "delay_p99_ms": summary.p99,
        "delay_p999_ms": summary.p999,
        "queue_drops": handle.network.total_drops(),
        "per_receiver_mean_delay_ms": per_receiver,
        "events_processed": handle.sim.events_processed,
    }


def test_fig4_trace_statistics(scale, benchmark):
    """Regenerate all three Fig. 4 datasets and validate their shape."""

    def run():
        return {kind: _scenario_stats(scale, kind) for kind in ScenarioKind.ALL}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    save_results("fig4_scenarios", {"stats": stats})

    pretrain = stats[ScenarioKind.PRETRAIN]
    case1 = stats[ScenarioKind.CASE1]
    case2 = stats[ScenarioKind.CASE2]
    # The bottleneck must actually congest: delays spread over >2x.
    assert pretrain["delay_p99_ms"] > 2 * pretrain["delay_p50_ms"]
    # Cross-traffic (case 1) increases pressure on the shared queue.
    assert case1["queue_drops"] >= pretrain["queue_drops"]
    # Case 2 has several receivers with distinct mean path delays.
    means = list(case2["per_receiver_mean_delay_ms"].values())
    assert len(means) >= 2
    assert max(means) > min(means)

    print("\nFig. 4 scenario statistics:")
    for kind, row in stats.items():
        print(
            f"  {kind:9s} packets={row['packets']:7d} messages={row['messages']:6d} "
            f"delay p50/p99 = {row['delay_p50_ms']:.1f}/{row['delay_p99_ms']:.1f} ms "
            f"drops={row['queue_drops']}"
        )


def test_simulator_event_throughput(scale, benchmark):
    """Micro-benchmark: simulator events per second on the pre-training
    scenario (ns-3 replacement cost)."""

    def run():
        handle = build_scenario(scale.scenario(ScenarioKind.PRETRAIN))
        handle.run()
        return handle.sim.events_processed

    events = benchmark(run)
    assert events > 1_000
