"""Shared fixtures for the serving-runtime tests.

One tiny pre-training run and one uncompressed (mmap-able) checkpoint
are session-scoped: every serving test serves the same model, so the
expensive bits happen once.
"""

from __future__ import annotations

import pytest

from repro.api import Predictor
from repro.core.model import NTTConfig
from repro.core.pretrain import TrainSettings, pretrain

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


@pytest.fixture(scope="session")
def served_training(smoke_bundle):
    return pretrain(NTTConfig.smoke(), smoke_bundle, settings=FAST)


@pytest.fixture(scope="session")
def served_checkpoint(served_training, tmp_path_factory):
    """An uncompressed delay checkpoint the serving runtime can mmap."""
    path = tmp_path_factory.mktemp("serve") / "ckpt.npz"
    Predictor(served_training.model, served_training.pipeline).save(
        path, compress=False
    )
    return path


@pytest.fixture(scope="session")
def reference_predictor(served_checkpoint):
    """The ground truth the served predictions are compared against.

    ``batch_size=1024`` matches the serving default, so any >=2-window
    forward is the same fused gemm as the server's and predictions
    compare bit-for-bit.
    """
    return Predictor.from_checkpoint(served_checkpoint, batch_size=1024)
