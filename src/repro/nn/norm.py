"""Layer normalisation."""

from __future__ import annotations

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Normalise the last axis to zero mean / unit variance, then scale
    and shift with learned ``gamma`` / ``beta``.

    Built from differentiable primitives, so its gradient is exercised
    by the same finite-difference checks as every other op.
    """

    def __init__(self, normalized_dim: int, eps: float = 1e-5):
        super().__init__()
        if normalized_dim <= 0:
            raise ValueError(f"normalized_dim must be positive, got {normalized_dim}")
        self.normalized_dim = normalized_dim
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((normalized_dim,)), name="gamma")
        self.beta = Parameter(init.zeros((normalized_dim,)), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor.ensure(x)
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"LayerNorm expected last dim {self.normalized_dim}, got {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_dim}, eps={self.eps})"
