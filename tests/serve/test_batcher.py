"""Tests for micro-batch coalescing.

The asyncio plumbing runs under ``asyncio.run`` inside plain sync
tests; every wait is bounded by ``asyncio.wait_for`` so a broken flush
rule fails fast instead of hanging the suite.
"""

import asyncio

import numpy as np
import pytest

from repro.serve import BatcherConfig, MicroBatcher, ServingMetrics

_TIMEOUT = 30.0


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, _TIMEOUT))


@pytest.fixture()
def windows(smoke_bundle):
    test = smoke_bundle.test
    return test.features[:16], test.receiver[:16]


class TestConfig:
    def test_defaults_are_valid(self):
        config = BatcherConfig()
        assert config.max_batch_windows > 0
        assert config.max_wait_us >= 0

    def test_bad_flush_size_rejected(self):
        with pytest.raises(ValueError, match="max_batch_windows"):
            BatcherConfig(max_batch_windows=0)

    def test_bad_wait_rejected(self):
        with pytest.raises(ValueError, match="max_wait_us"):
            BatcherConfig(max_wait_us=-1.0)


class TestCoalescing:
    def test_concurrent_requests_fuse_into_one_forward(
        self, reference_predictor, windows
    ):
        features, receiver = windows
        metrics = ServingMetrics()
        config = BatcherConfig(max_batch_windows=64, max_wait_us=5000.0)

        async def scenario():
            batcher = MicroBatcher(reference_predictor, config, metrics=metrics)
            # Four callers, four windows each — all pending when the age
            # timer fires, so they share one fused forward pass.
            return await asyncio.gather(
                *(
                    batcher.submit(
                        features[start:start + 4], receiver[start:start + 4]
                    )
                    for start in range(0, 16, 4)
                )
            )

        results = _run(scenario())
        assert metrics.batches_total == 1
        assert metrics.predictions_total == 16
        # Row-for-row bit identity with the full-batch reference: the
        # flush and the reference run the same >=2-row gemm kernels.
        expected = reference_predictor.predict(features, receiver)
        for index, result in enumerate(results):
            assert np.array_equal(result, expected[index * 4:(index + 1) * 4])

    def test_size_rule_flushes_without_waiting(self, reference_predictor, windows):
        features, receiver = windows
        metrics = ServingMetrics()
        # An hour-long age rule: only the size rule can flush in time.
        config = BatcherConfig(max_batch_windows=8, max_wait_us=3600e6)

        async def scenario():
            batcher = MicroBatcher(reference_predictor, config, metrics=metrics)
            return await asyncio.gather(
                batcher.submit(features[:4], receiver[:4]),
                batcher.submit(features[4:8], receiver[4:8]),
            )

        first, second = _run(scenario())
        assert metrics.batches_total == 1
        expected = reference_predictor.predict(features[:8], receiver[:8])
        assert np.array_equal(np.concatenate([first, second]), expected)

    def test_oversized_request_served_alone(self, reference_predictor, windows):
        features, receiver = windows
        metrics = ServingMetrics()
        config = BatcherConfig(max_batch_windows=4, max_wait_us=3600e6)

        async def scenario():
            batcher = MicroBatcher(reference_predictor, config, metrics=metrics)
            return await batcher.submit(features, receiver)

        result = _run(scenario())
        assert metrics.batches_total == 1
        assert metrics.predictions_total == 16
        assert np.array_equal(
            result, reference_predictor.predict(features, receiver)
        )

    def test_empty_request_short_circuits(self, reference_predictor):
        async def scenario():
            batcher = MicroBatcher(reference_predictor)
            return await batcher.submit(
                np.zeros((0, 64, 3)), np.zeros((0, 64), dtype=np.int64)
            )

        result = _run(scenario())
        assert result.shape == (0,)
        assert result.dtype == np.float64

    def test_drain_flushes_pending_requests(self, reference_predictor, windows):
        features, receiver = windows
        config = BatcherConfig(max_batch_windows=64, max_wait_us=3600e6)

        async def scenario():
            batcher = MicroBatcher(reference_predictor, config)
            pending = asyncio.ensure_future(
                batcher.submit(features[:4], receiver[:4])
            )
            await asyncio.sleep(0)  # let submit() park behind its future
            await batcher.drain()
            return await pending

        result = _run(scenario())
        assert result.shape == (4,)


class TestValidation:
    def test_bad_shapes_fail_fast(self, reference_predictor, windows):
        features, receiver = windows

        async def scenario():
            batcher = MicroBatcher(reference_predictor)
            with pytest.raises(ValueError, match="3-D"):
                await batcher.submit(features[0], receiver[0])
            with pytest.raises(ValueError, match="receiver shape"):
                await batcher.submit(features[:4], receiver[:2])
            # A malformed request must not leave anything pending that
            # could poison the next caller's batch.
            assert batcher._pending == {}

        _run(scenario())

    def test_delay_task_rejects_message_size(self, reference_predictor, windows):
        features, receiver = windows

        async def scenario():
            batcher = MicroBatcher(reference_predictor)
            with pytest.raises(ValueError, match="only meaningful"):
                await batcher.submit(
                    features[:2], receiver[:2], np.ones(2)
                )

        _run(scenario())


class _ExplodingPredictor:
    task = "delay"

    def predict(self, features, receiver, message_size=None):
        raise RuntimeError("model blew up")


class TestFailurePropagation:
    def test_forward_errors_reach_every_caller(self, windows):
        features, receiver = windows
        config = BatcherConfig(max_batch_windows=8, max_wait_us=1000.0)

        async def scenario():
            batcher = MicroBatcher(_ExplodingPredictor(), config)
            results = await asyncio.gather(
                batcher.submit(features[:4], receiver[:4]),
                batcher.submit(features[4:8], receiver[4:8]),
                return_exceptions=True,
            )
            assert all(isinstance(result, RuntimeError) for result in results)

        _run(scenario())


class TestSaturation:
    def test_pending_cap_below_flush_size_rejected(self):
        with pytest.raises(ValueError, match="max_pending_windows"):
            BatcherConfig(max_batch_windows=64, max_pending_windows=8)

    def test_saturated_batcher_sheds_load(self, reference_predictor, windows):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.serve import BatcherSaturated

        features, receiver = windows
        metrics = ServingMetrics()
        config = BatcherConfig(
            max_batch_windows=4, max_wait_us=0.0, max_pending_windows=4
        )

        async def scenario():
            gate = threading.Event()
            lane = ThreadPoolExecutor(max_workers=1)
            lane.submit(gate.wait)  # jam the prediction lane
            try:
                batcher = MicroBatcher(
                    reference_predictor, config, metrics=metrics, executor=lane
                )
                first = asyncio.ensure_future(
                    batcher.submit(features[:4], receiver[:4])
                )
                await asyncio.sleep(0.05)  # the flush is queued behind the jam
                with pytest.raises(BatcherSaturated) as info:
                    await batcher.submit(features[4:8], receiver[4:8])
                assert info.value.retry_after_s > 0
                gate.set()
                return await first
            finally:
                gate.set()
                lane.shutdown(wait=True)

        result = _run(scenario())
        assert result.shape == (4,)
        assert metrics.rejected_total == 1
        assert metrics.snapshot()["rejected_total"] == 1

    def test_inflight_accounting_returns_to_zero(self, reference_predictor, windows):
        features, receiver = windows
        config = BatcherConfig(max_batch_windows=4, max_wait_us=500.0,
                               max_pending_windows=16)

        async def scenario():
            batcher = MicroBatcher(reference_predictor, config)
            await asyncio.gather(
                batcher.submit(features[:4], receiver[:4]),
                batcher.submit(features[4:12], receiver[4:12]),  # oversized lane
            )
            await batcher.drain()
            return batcher._inflight_windows

        assert _run(scenario()) == 0
