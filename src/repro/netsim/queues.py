"""Egress queues.

The paper's bottleneck uses a 1000-packet drop-tail queue; RED is
provided as an extension so future-work experiments (queuing-discipline
diversity, §5 of the paper) can be expressed.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.netsim.packet import Packet

__all__ = ["DropTailQueue", "REDQueue", "QueueStats"]


class QueueStats:
    """Counters shared by all queue implementations."""

    def __init__(self):
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.bytes_enqueued = 0
        self.bytes_dropped = 0
        self.max_occupancy = 0

    def __repr__(self) -> str:
        return (
            f"QueueStats(enqueued={self.enqueued}, dequeued={self.dequeued}, "
            f"dropped={self.dropped}, max_occupancy={self.max_occupancy})"
        )


class DropTailQueue:
    """FIFO queue bounded in packets; arrivals beyond capacity are dropped.

    This is the queueing discipline of the paper's Fig. 4 bottleneck
    ("queue size of 1000 packets").
    """

    def __init__(self, capacity_packets: int):
        if capacity_packets <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity_packets}")
        self.capacity = int(capacity_packets)
        self._items: deque[Packet] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def occupancy(self) -> int:
        """Number of packets currently queued."""
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and counts a drop) when full."""
        if len(self._items) >= self.capacity:
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            return False
        self._items.append(packet)
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        self.stats.max_occupancy = max(self.stats.max_occupancy, len(self._items))
        return True

    def dequeue(self) -> Packet | None:
        """Pop the oldest packet, or ``None`` when empty."""
        if not self._items:
            return None
        self.stats.dequeued += 1
        return self._items.popleft()


class REDQueue(DropTailQueue):
    """Random Early Detection on top of the drop-tail bound.

    Classic RED [Floyd & Jacobson 1993]: an EWMA of the occupancy drives a
    drop probability that ramps linearly between ``min_threshold`` and
    ``max_threshold``; above ``max_threshold`` every arrival is dropped.
    """

    def __init__(
        self,
        capacity_packets: int,
        min_threshold: int | None = None,
        max_threshold: int | None = None,
        max_drop_probability: float = 0.1,
        weight: float = 0.002,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(capacity_packets)
        self.min_threshold = min_threshold if min_threshold is not None else capacity_packets // 4
        self.max_threshold = max_threshold if max_threshold is not None else capacity_packets // 2
        if not 0 <= self.min_threshold < self.max_threshold <= capacity_packets:
            raise ValueError(
                f"need 0 <= min ({self.min_threshold}) < max ({self.max_threshold})"
                f" <= capacity ({capacity_packets})"
            )
        if not 0.0 < max_drop_probability <= 1.0:
            raise ValueError(f"max_drop_probability must be in (0, 1], got {max_drop_probability}")
        self.max_drop_probability = max_drop_probability
        self.weight = weight
        self.average = 0.0
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def enqueue(self, packet: Packet) -> bool:
        self.average = (1.0 - self.weight) * self.average + self.weight * len(self._items)
        if self.average >= self.max_threshold:
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            return False
        if self.average > self.min_threshold:
            ramp = (self.average - self.min_threshold) / (self.max_threshold - self.min_threshold)
            if self._rng.random() < ramp * self.max_drop_probability:
                self.stats.dropped += 1
                self.stats.bytes_dropped += packet.size
                return False
        return super().enqueue(packet)
