"""Tests for the first-class Stage API: registry semantics, golden key
stability across the redesign, and custom stages riding the engine."""

import pytest

from repro.api import ArtifactStore, ExperimentSpec, TrainSettings
from repro.api.hashing import stable_hash
from repro.api.stages import STAGE_REGISTRY, StageRegistry, inputs_by_stage
from repro.runtime import CampaignEngine, plan_campaign, run_campaign

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture
def custom_stage():
    """Register a throwaway stage for the duration of one test."""

    registered = []

    def install(name, run, **options):
        STAGE_REGISTRY.register(name, **options)(run)
        registered.append(name)
        return STAGE_REGISTRY.get(name)

    yield install
    for name in registered:
        STAGE_REGISTRY._entries.pop(name, None)


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("traces", "bundle", "pretrain", "finetune", "evaluate",
                     "scratch", "baselines", "trace_stats"):
            assert name in STAGE_REGISTRY

    def test_extension_stages_registered(self):
        assert "federated_pretrain" in STAGE_REGISTRY
        assert "drift_monitor" in STAGE_REGISTRY
        assert "federated_pretrain" in STAGE_REGISTRY.sweep_stages()

    def test_default_pipeline_matches_legacy_tuple(self):
        from repro.runtime import DEFAULT_STAGES

        assert DEFAULT_STAGES == ("traces", "bundle", "pretrain", "finetune", "evaluate")
        assert STAGE_REGISTRY.default_pipeline() == DEFAULT_STAGES

    def test_legacy_shims_importable(self):
        from repro.runtime.plan import DEFAULT_STAGES, STAGES, SWEEP_STAGES

        assert set(DEFAULT_STAGES) <= set(SWEEP_STAGES) <= set(STAGES)
        assert "scratch" in STAGES and "scratch" not in SWEEP_STAGES

    def test_duplicate_registration_rejected(self):
        fresh = StageRegistry()
        fresh.register("x")(lambda e, i, p: (False, {}))
        with pytest.raises(ValueError, match="already registered"):
            fresh.register("x")(lambda e, i, p: (False, {}))
        fresh.register("x", replace_existing=True)(lambda e, i, p: (True, {}))

    def test_unknown_stage_error_lists_registered_names(self):
        with pytest.raises(ValueError, match="registered stages") as excinfo:
            STAGE_REGISTRY.get("bogus")
        assert "traces" in str(excinfo.value)

    def test_version_zero_is_key_identity(self):
        assert STAGE_REGISTRY.get("traces").versioned_key("abc123") == "abc123"

    def test_nonzero_version_mixes_into_key(self, custom_stage):
        entry = custom_stage("vtest", lambda e, i, p: (False, {}), version=3)
        versioned = entry.versioned_key("abc123")
        assert versioned != "abc123"
        assert versioned == stable_hash(
            {"stage": "vtest", "stage_version": 3, "base": "abc123"}
        )
        # Bumping the version moves the key again (per-stage invalidation).
        entry.version = 4
        assert entry.versioned_key("abc123") != versioned

    def test_registry_complete_after_api_import(self):
        # `import repro.api` must register built-ins AND extensions:
        # STAGE_REGISTRY is re-exported as the public plugin surface.
        import repro.api as api

        assert api.STAGE_REGISTRY.default_pipeline() == (
            "traces", "bundle", "pretrain", "finetune", "evaluate",
        )

    def test_bundle_version_bump_moves_hit_accounting_with_storage(
        self, monkeypatch, store
    ):
        # The bundle stage's manifest hit-detection recomputes its key
        # inline; after a version bump it must track the storage path
        # (a stale unversioned artifact may not read as a cache hit).
        spec = ExperimentSpec(scenario="pretrain", scale="smoke", pretrain=FAST)
        first = run_campaign([spec], stages=("traces", "bundle"), store=store)
        assert first.ok
        entry = STAGE_REGISTRY.get("bundle")
        monkeypatch.setattr(entry, "version", 1)
        second = run_campaign([spec], stages=("traces", "bundle"), store=store)
        rows = {row["stage"]: row for row in second.manifest["tasks"]}
        assert rows["traces"]["cache_hit"] is True  # untouched stage still hits
        assert rows["bundle"]["cache_hit"] is False  # invalidated by the bump
        third = run_campaign([spec], stages=("traces", "bundle"), store=store)
        assert third.summary["cache_hits"] == third.summary["total"]

    def test_inputs_by_stage_groups_task_ids(self):
        grouped = inputs_by_stage({
            "traces:aaa": {"n": 1},
            "bundle:bbb": {"m": 2},
            "bundle:ccc": {"m": 3},
        })
        assert grouped["traces"] == {"n": 1}
        assert sorted(row["m"] for row in grouped["bundle"]) == [2, 3]


class TestGoldenKeyStability:
    """The redesign must not invalidate any existing artifact: planning
    the built-in pipeline produces byte-identical store keys to the
    pre-Stage-API planner (captured from the last pre-redesign commit).
    """

    GOLDEN = {
        ("case1", "smoke"): [
            ("traces:8d9892dc3ea5", "traces", "8d9892dc3ea52469"),
            ("bundle:f60fde6a70c6", "bundles", "f60fde6a70c602f7"),
            ("pretrain:c9ab0628125d", "checkpoints", "c9ab0628125d7278"),
            ("traces:bc9889e364a3", "traces", "bc9889e364a31f73"),
            ("bundle:d987a0e30227", "bundles", "d987a0e30227fc23"),
            ("finetune:dd4463924697", "checkpoints", "dd44639246973b24"),
            ("evaluate:084946ccc135", "evaluations", "084946ccc1352f1a"),
        ],
        ("pretrain", "small"): [
            ("traces:982437d1bef7", "traces", "982437d1bef7f194"),
            ("bundle:54d60887c6eb", "bundles", "54d60887c6eba5a4"),
            ("pretrain:ff4ba8fdb16d", "checkpoints", "ff4ba8fdb16d2e22"),
            ("evaluate:75ce60998ab3", "evaluations", "75ce60998ab39767"),
        ],
        ("case2", "smoke"): [
            ("traces:8d9892dc3ea5", "traces", "8d9892dc3ea52469"),
            ("bundle:f60fde6a70c6", "bundles", "f60fde6a70c602f7"),
            ("pretrain:c9ab0628125d", "checkpoints", "c9ab0628125d7278"),
            ("traces:cdc439674535", "traces", "cdc4396745350d9c"),
            ("bundle:0de5c536e010", "bundles", "0de5c536e01027bc"),
            ("finetune:2ff081a2039c", "checkpoints", "2ff081a2039c327f"),
            ("evaluate:d3a534e02a51", "evaluations", "d3a534e02a518384"),
        ],
    }

    SPEC_HASHES = {
        ("case1", "smoke"): "c5aeb216d8cdf1b9",
        ("pretrain", "small"): "0ea78f1590f66fc4",
        ("case2", "smoke"): "5ef79c9d663a6011",
    }

    @pytest.mark.parametrize("scenario,scale", sorted(GOLDEN))
    def test_default_pipeline_keys_unchanged(self, scenario, scale):
        plan = plan_campaign([ExperimentSpec(scenario=scenario, scale=scale, seed=0)])
        got = [(task.id, task.kind, task.key) for task in plan.ordered()]
        assert got == self.GOLDEN[(scenario, scale)]

    @pytest.mark.parametrize("scenario,scale", sorted(SPEC_HASHES))
    def test_spec_hashes_unchanged(self, scenario, scale):
        spec = ExperimentSpec(scenario=scenario, scale=scale, seed=0)
        assert spec.spec_hash == self.SPEC_HASHES[(scenario, scale)]


def _digest_key(spec, params):
    return stable_hash(
        {
            "artifact": "trace_digest",
            "scenario": spec.scenario_config(),
            "n_runs": spec.to_scale().n_runs,
            "quantile": float(params.get("quantile", 0.99)),
        }
    )


def _run_digest(experiment, inputs, params):
    store, key = experiment.store, params.get("key")
    if store is not None and key is not None:
        cached = store.get_json("evaluations", key)
        if cached is not None:
            return True, cached
    import numpy as np

    traces = experiment.traces()
    delays = np.concatenate([trace.delay for trace in traces])
    payload = {
        "packets": int(sum(len(trace) for trace in traces)),
        "quantile": float(params.get("quantile", 0.99)),
        "delay_quantile_ms": float(
            np.quantile(delays, float(params.get("quantile", 0.99))) * 1e3
        ),
        "upstream": inputs_by_stage(inputs).get("traces"),
    }
    if store is not None and key is not None:
        store.put_json("evaluations", key, payload)
    return False, payload


class TestCustomStageThroughEngine:
    def _spec(self, **kwargs):
        return ExperimentSpec(
            scenario="pretrain", scale="smoke", pretrain=FAST, finetune=FAST, **kwargs
        )

    def test_plans_with_declared_deps_and_versioned_key(self, custom_stage):
        custom_stage(
            "trace_digest", _run_digest, deps=("traces",), version=2,
            kind="evaluations", key_fn=_digest_key,
        )
        spec = self._spec()
        plan = plan_campaign([spec], stages=("trace_digest",))
        stages = {task.stage for task in plan.ordered()}
        assert stages == {"traces", "trace_digest"}
        (digest,) = [t for t in plan.ordered() if t.stage == "trace_digest"]
        assert digest.deps and digest.deps[0].startswith("traces:")
        # The planned key is the versioned form of the stage's key_fn.
        entry = STAGE_REGISTRY.get("trace_digest")
        assert digest.key == entry.versioned_key(_digest_key(spec, {}))

    def test_caches_and_receives_inputs(self, custom_stage, store):
        custom_stage(
            "trace_digest", _run_digest, deps=("traces",), version=2,
            kind="evaluations", key_fn=_digest_key,
        )
        first = run_campaign([self._spec()], stages=("trace_digest",), store=store)
        assert first.ok and first.summary["cache_hits"] == 0
        (digest_id,) = [t for t in first.results if t.startswith("trace_digest:")]
        # Dependency results flowed in through the stage's inputs.
        assert first.results[digest_id]["upstream"]["n_runs"] == 1
        assert first.results[digest_id]["delay_quantile_ms"] > 0
        second = run_campaign([self._spec()], stages=("trace_digest",), store=store)
        assert second.summary["cache_hits"] == second.summary["total"]
        assert second.results[digest_id]["packets"] == first.results[digest_id]["packets"]

    def test_dedupes_across_specs_sharing_a_key(self, custom_stage, store):
        custom_stage(
            "trace_digest", _run_digest, deps=("traces",), version=2,
            kind="evaluations", key_fn=_digest_key,
        )
        # Same scenario, different fine_fraction: spec hashes differ but
        # the digest key (scenario + n_runs + params) is shared.
        specs = [self._spec(), self._spec(fine_fraction=0.5)]
        assert specs[0].spec_hash != specs[1].spec_hash
        plan = plan_campaign(specs, stages=("trace_digest",))
        digests = [t for t in plan.ordered() if t.stage == "trace_digest"]
        assert len(digests) == 1
        assert len(digests[0].spec_hashes) == 2

    def test_stage_params_split_tasks_and_flow_through(self, custom_stage, store):
        custom_stage(
            "trace_digest", _run_digest, deps=("traces",), version=2,
            kind="evaluations", key_fn=_digest_key,
        )
        specs = [
            self._spec(stage_params={"trace_digest": {"quantile": 0.5}}),
            self._spec(stage_params={"trace_digest": {"quantile": 0.999}}),
        ]
        plan = plan_campaign(specs, stages=("trace_digest",))
        digests = [t for t in plan.ordered() if t.stage == "trace_digest"]
        assert len(digests) == 2  # distinct params → distinct keys
        result = run_campaign(specs, stages=("trace_digest",), store=store)
        assert result.ok
        quantiles = sorted(
            row["quantile"] for tid, row in result.results.items()
            if tid.startswith("trace_digest:")
        )
        assert quantiles == [0.5, 0.999]

    def test_retries_through_engine(self, custom_stage, tmp_path, store):
        marker = tmp_path / "failures-left"
        marker.write_text("1")

        def flaky(experiment, inputs, params):
            remaining = int(marker.read_text())
            if remaining > 0:
                marker.write_text(str(remaining - 1))
                raise RuntimeError("synthetic custom-stage failure")
            return _run_digest(experiment, inputs, params)

        custom_stage(
            "trace_digest", flaky, deps=("traces",), version=2,
            kind="evaluations", key_fn=_digest_key,
        )
        result = run_campaign(
            [self._spec()], stages=("trace_digest",), store=store, retries=1
        )
        assert result.ok
        (row,) = [r for r in result.manifest["tasks"] if r["stage"] == "trace_digest"]
        assert row["attempts"] == 2

    def test_spec_pipeline_overrides_campaign_stages(self, custom_stage):
        custom_stage(
            "trace_digest", _run_digest, deps=("traces",), version=2,
            kind="evaluations", key_fn=_digest_key,
        )
        spec = self._spec(pipeline=("trace_digest",))
        plan = plan_campaign([spec])  # default stages ignored for this spec
        assert {task.stage for task in plan.ordered()} == {"traces", "trace_digest"}

    def test_unknown_pipeline_stage_rejected_with_registered_names(self):
        spec = self._spec(pipeline=("not_a_stage",))
        with pytest.raises(ValueError, match="unknown stages") as excinfo:
            plan_campaign([spec])
        assert "traces" in str(excinfo.value)

    def test_unsweepable_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stages"):
            plan_campaign([self._spec()], stages=("scratch",))


class TestExecuteStageErrors:
    def test_unknown_stage_lists_registered_names(self):
        from repro.api import Experiment
        from repro.runtime import execute_stage

        experiment = Experiment.uncached(
            ExperimentSpec(scenario="pretrain", scale="smoke")
        )
        with pytest.raises(ValueError, match="registered stages") as excinfo:
            execute_stage("warp_drive", experiment, {})
        assert "pretrain" in str(excinfo.value)
