"""Tests for drift detection."""

import numpy as np
import pytest

from repro.core.model import NTTConfig
from repro.core.pretrain import TrainSettings, pretrain
from repro.extensions.continual import DriftMonitor


@pytest.fixture(scope="module")
def deployed(smoke_bundle):
    settings = TrainSettings(epochs=2, batch_size=32, patience=None)
    return pretrain(NTTConfig.smoke(), smoke_bundle, settings=settings)


class TestDriftMonitor:
    def test_calibrates_on_baseline(self, deployed, smoke_bundle):
        monitor = DriftMonitor(
            deployed.model, deployed.pipeline, baseline=smoke_bundle.val
        )
        assert monitor.baseline_error > 0
        assert monitor.threshold == pytest.approx(50.0 * monitor.baseline_error)

    def test_no_drift_in_distribution(self, deployed, smoke_bundle):
        monitor = DriftMonitor(
            deployed.model, deployed.pipeline, baseline=smoke_bundle.val,
            sensitivity=100.0, tolerance=1.0,
        )
        report = monitor.observe(smoke_bundle.test)
        assert not report.drifted
        assert report.windows_seen == len(smoke_bundle.test)
        assert report.degradation_ratio < 5.0

    def test_drift_detected_on_corrupted_targets(self, deployed, smoke_bundle):
        """Shifting true delays far from predictions must trip the test."""
        monitor = DriftMonitor(
            deployed.model, deployed.pipeline, baseline=smoke_bundle.val,
            sensitivity=10.0, tolerance=0.1,
        )
        shifted = smoke_bundle.test.subset(np.arange(len(smoke_bundle.test)))
        shifted.delay_target = shifted.delay_target + 1.0  # +1 s shift
        report = monitor.observe(shifted)
        assert report.drifted
        assert report.degradation_ratio > 10.0

    def test_reset_clears_state(self, deployed, smoke_bundle):
        monitor = DriftMonitor(
            deployed.model, deployed.pipeline, baseline=smoke_bundle.val,
            sensitivity=10.0, tolerance=0.1,
        )
        shifted = smoke_bundle.test.subset(np.arange(len(smoke_bundle.test)))
        shifted.delay_target = shifted.delay_target + 1.0
        assert monitor.observe(shifted).drifted
        monitor.reset()
        report = monitor.observe(smoke_bundle.test)
        assert report.windows_seen == len(smoke_bundle.test)

    def test_empty_observation_rejected(self, deployed, smoke_bundle):
        monitor = DriftMonitor(
            deployed.model, deployed.pipeline, baseline=smoke_bundle.val
        )
        with pytest.raises(ValueError):
            monitor.observe(smoke_bundle.test.subset(np.zeros(0, dtype=int)))

    def test_invalid_parameters(self, deployed, smoke_bundle):
        with pytest.raises(ValueError):
            DriftMonitor(
                deployed.model, deployed.pipeline, baseline=smoke_bundle.val,
                sensitivity=0.0,
            )
