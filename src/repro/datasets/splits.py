"""Train/validation/test splitting."""

from __future__ import annotations

import numpy as np

from repro.datasets.windows import WindowDataset

__all__ = ["temporal_split", "random_split"]


def temporal_split(
    dataset: WindowDataset,
    train_fraction: float = 0.8,
    val_fraction: float = 0.1,
) -> tuple[WindowDataset, WindowDataset, WindowDataset]:
    """Split windows by position: earliest for training, latest for test.

    Windows are stored in (run, time) order, so a positional split keeps
    the test set temporally after the training data within each run's
    block — the honest evaluation regime for sequence models ("we
    reserve a fraction for testing", §4).
    """
    if not 0.0 < train_fraction < 1.0 or not 0.0 <= val_fraction < 1.0:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train + val fractions must leave room for the test split")
    count = len(dataset)
    if count < 3:
        raise ValueError(f"dataset too small to split ({count} windows)")
    train_end = max(1, int(count * train_fraction))
    val_end = max(train_end + 1, int(count * (train_fraction + val_fraction)))
    val_end = min(val_end, count - 1)
    indices = np.arange(count)
    return (
        dataset.subset(indices[:train_end]),
        dataset.subset(indices[train_end:val_end]),
        dataset.subset(indices[val_end:]),
    )


def random_split(
    dataset: WindowDataset,
    train_fraction: float,
    rng: np.random.Generator,
) -> tuple[WindowDataset, WindowDataset]:
    """Shuffled two-way split (for i.i.d.-style ablation experiments)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    indices = np.arange(len(dataset))
    rng.shuffle(indices)
    cut = max(1, int(len(dataset) * train_fraction))
    return dataset.subset(indices[:cut]), dataset.subset(indices[cut:])
