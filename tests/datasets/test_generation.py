"""Tests for end-to-end dataset generation."""

import numpy as np
import pytest

from repro.datasets.generation import build_receiver_index, generate_dataset
from repro.datasets.windows import WindowConfig
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind


def test_bundle_structure(smoke_bundle):
    assert smoke_bundle.name == "pretrain-smoke"
    assert len(smoke_bundle.train) > len(smoke_bundle.val)
    assert len(smoke_bundle.test) > 0
    assert smoke_bundle.n_packets > 0
    assert smoke_bundle.n_windows == (
        len(smoke_bundle.train) + len(smoke_bundle.val) + len(smoke_bundle.test)
    )


def test_windows_have_configured_length(smoke_bundle):
    assert smoke_bundle.train.window_len == 64


def test_small_fraction_shrinks_train_keeps_test(smoke_bundle):
    small = smoke_bundle.small_fraction(0.1)
    assert len(small.train) == max(1, round(0.1 * len(smoke_bundle.train)))
    assert len(small.test) == len(smoke_bundle.test)
    assert "10pct" in small.name


def test_receiver_index_shared_between_bundles(smoke_bundle, smoke_case1_bundle):
    for key, value in smoke_bundle.receiver_index.items():
        assert smoke_case1_bundle.receiver_index[key] == value


def test_case2_bundle_adds_receivers(smoke_bundle, smoke_case2_bundle):
    assert len(smoke_case2_bundle.receiver_index) > len(smoke_bundle.receiver_index)
    assert len(set(np.unique(smoke_case2_bundle.train.receiver).tolist())) >= 2


def test_build_receiver_index_extends(smoke_trace, smoke_case2_trace):
    base = build_receiver_index([smoke_trace])
    extended = build_receiver_index([smoke_case2_trace], existing=base)
    for key, value in base.items():
        assert extended[key] == value
    assert len(extended) >= len(base)


def test_generate_dataset_too_short_raises():
    config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN)
    with pytest.raises(ValueError):
        generate_dataset(
            config,
            window_config=WindowConfig(window_len=10_000),
            n_runs=1,
        )


def test_multi_run_produces_more_windows():
    config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=5)
    window = WindowConfig(window_len=64, stride=8)
    one = generate_dataset(config, window_config=window, n_runs=1)
    two = generate_dataset(config, window_config=window, n_runs=2)
    assert two.n_windows > one.n_windows
