"""The campaign engine: execute a task graph serially or on a pool.

:class:`CampaignEngine` takes a :class:`~repro.runtime.plan.CampaignPlan`
and runs its tasks in dependency order — in-process when ``workers <= 1``
(or when there is no artifact store to share artifacts through), on a
``ProcessPoolExecutor`` otherwise.  Both paths execute the *same* stage
implementations (:mod:`repro.runtime.worker`), so interactive runs,
sweeps and benchmarks cannot drift apart.

Failures are handled by a :class:`~repro.runtime.policy.RetryPolicy`:
transient errors retry with seeded jittered backoff, fatal (contract)
errors fail fast, and the pool path additionally recovers from hung and
killed workers — per-stage wall-clock timeouts (``stage_params``
``timeout_s`` knob, engine-level default) reap wedged tasks via worker
heartbeat files under the store's scratch area, and a broken process
pool is respawned with its in-flight tasks re-enqueued.  Dependents of
exhausted tasks are skipped.

Every run is *journaled*: each settled task appends one fsynced line to
``manifests/<campaign_id>.journal.jsonl`` through the store, so even a
SIGKILLed campaign leaves a durable record, and
:meth:`CampaignEngine.resume` re-plans from the journal header and
re-executes only what never finished — bit-identical to an
uninterrupted run, because per-task seeds and retry backoff are keyed
by (task spawn key, attempt), never by execution order.  A JSON
campaign manifest — per-task status, timings and cache hit/miss — is
written under ``manifests/<campaign_id>`` on completion, and a partial
``status: "crashed"`` manifest on the way out of any engine-level
failure.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import signal
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

import repro.obs as obs
from repro.api.spec import ExperimentSpec
from repro.api.store import ArtifactStore
from repro.runtime.journal import CampaignJournal, read_journal
from repro.runtime.plan import CampaignPlan, StageTask, plan_campaign
from repro.runtime.policy import RetryPolicy
from repro.runtime.worker import heartbeat_path, run_task
from repro.utils.clock import utc_now_iso, wall_time_unix

__all__ = ["CampaignEngine", "CampaignResult", "run_campaign"]

#: Sentinel: "no store argument given" (``None`` means "no store").
_DEFAULT_STORE = object()


@dataclass
class CampaignResult:
    """Outcome of one engine run."""

    manifest: dict
    results: dict = field(default_factory=dict)
    manifest_path: Path | None = None

    @property
    def summary(self) -> dict:
        return self.manifest["summary"]

    @property
    def ok(self) -> bool:
        return self.summary["failed"] == 0 and self.summary["skipped"] == 0

    @property
    def cache_hits(self) -> int:
        return self.summary["cache_hits"]

    def failed_tasks(self) -> list[dict]:
        return [task for task in self.manifest["tasks"] if task["status"] == "error"]

    def __getitem__(self, task_id: str) -> dict:
        """Result payload of one completed task."""
        return self.results[task_id]

    def format_summary(self) -> str:
        summary = self.summary
        lines = [
            f"campaign {self.manifest['campaign_id']}: "
            f"{summary['done']}/{summary['total']} task(s) done, "
            f"{summary['cache_hits']} cache hit(s), "
            f"{summary['failed']} failed, {summary['skipped']} skipped "
            f"in {self.manifest['wall_time_s']:.1f}s "
            f"({self.manifest['workers']} worker(s))"
        ]
        resumed = self.manifest.get("resumed_tasks")
        if resumed:
            lines.append(f"  resumed {len(resumed)} task(s) from the journal")
        for task in self.failed_tasks():
            last_line = task["error"].strip().splitlines()[-1]
            lines.append(f"  FAILED {task['id']}: {last_line}")
        if self.manifest_path is not None:
            lines.append(f"manifest: {self.manifest_path}")
        return "\n".join(lines)


class CampaignEngine:
    """Plans' executor: worker pool, retry policy, journal, manifest.

    Args:
        store: artifact store shared by all tasks; defaults to the
            environment store.  ``store=None`` disables persistence
            (and with it journaling, resume and timeout reaping) and
            forces in-process execution for dependent plans.
        workers: worker processes; ``<= 1`` runs in-process.
        retries: how many times a failed task is re-attempted
            (shorthand for ``policy=RetryPolicy(retries=...)``).
        policy: full retry policy; overrides ``retries`` when given.
        task_timeout_s: default per-task wall-clock timeout enforced on
            the pool path (``None`` disables; a spec's per-stage
            ``timeout_s`` in ``stage_params`` overrides per task).
            Serial runs cannot preempt an in-process stage, so
            timeouts only apply to pool execution.
        heartbeat_interval_s: how often pool workers refresh their
            heartbeat files.
    """

    def __init__(
        self,
        store=_DEFAULT_STORE,
        workers: int = 1,
        retries: int = 1,
        *,
        policy: RetryPolicy | None = None,
        task_timeout_s: float | None = None,
        heartbeat_interval_s: float = 1.0,
    ):
        self.store = ArtifactStore.from_env() if store is _DEFAULT_STORE else store
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy(retries=retries)
        self.retries = self.policy.retries
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be > 0 (or None to disable)")
        self.task_timeout_s = task_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s

    def effective_workers(self, tasks: list[StageTask]) -> int:
        """The worker count this plan can actually use.

        Without a store, processes have no way to exchange artifacts, so
        any plan with dependencies or cacheable stages runs in-process;
        an embarrassingly parallel, uncacheable plan (e.g. a
        ``trace_stats`` fan-out) may still use the pool.
        """
        if self.store is None and any(task.deps or task.kind for task in tasks):
            return 1
        return max(1, min(self.workers, len(tasks)))

    def run(
        self,
        plan: CampaignPlan,
        context=None,
        resume_records: dict | None = None,
    ) -> CampaignResult:
        """Execute every task; returns results plus the manifest.

        ``context`` (serial path only) shares one
        :class:`~repro.core.pipeline.ExperimentContext`'s in-memory
        caches across tasks — the table runners pass theirs so
        interactive runs keep working without a store.  A context binds
        a single seed/scale, so it is only accepted for single-spec
        plans whose spec agrees with it.

        ``resume_records`` (normally supplied by :meth:`resume`) maps
        task ids to previously settled ``done`` records; those tasks
        are replayed instead of re-executed.
        """
        if context is not None:
            hashes = {spec.spec_hash for spec in plan.specs}
            if len(hashes) > 1:
                raise ValueError(
                    "a shared context binds one seed/scale; multi-spec plans "
                    "must run without `context` (each task builds its own)"
                )
            if plan.specs and plan.specs[0].seed != context.seed:
                raise ValueError(
                    f"context seed {context.seed} does not match the plan's "
                    f"spec seed {plan.specs[0].seed}"
                )
            if plan.specs and not _scales_agree(plan.specs[0].to_scale(), context.scale):
                raise ValueError(
                    f"context scale {context.scale.name!r} does not resolve to the "
                    f"plan's spec scale {plan.specs[0].scale!r}; a mismatch would "
                    "store artifacts under the wrong cache keys"
                )
        # One wall-clock stamp for "when" (ISO-8601 UTC) and one
        # monotonic origin for every duration and per-task offset —
        # wall-clock steps (NTP, DST) can never corrupt timings.
        started_unix = wall_time_unix()
        started_at = utc_now_iso()
        clock = time.perf_counter()
        tasks = plan.ordered()
        workers = self.effective_workers(tasks)
        # Derived from the actual decision (not a restatement of the
        # effective_workers policy): serial despite a multi-task plan
        # that a pool could otherwise have used.
        downgraded = workers == 1 and self.workers > 1 and len(tasks) > 1
        engine_events: list[dict] = []
        records: dict[str, dict] = {}
        resumed_ids: list[str] = []
        if resume_records:
            for task in tasks:
                record = resume_records.get(task.id)
                if record is None or record.get("status") != "done":
                    continue
                replay = {
                    key: value
                    for key, value in record.items()
                    if key not in ("type", "time_unix")
                }
                replay["resumed"] = True
                records[task.id] = replay
                resumed_ids.append(task.id)
        journal = None
        if self.store is not None:
            journal = CampaignJournal(self.store.journal_path(plan.campaign_id))
            journal.header(plan, workers, self.retries, resumed=resumed_ids)
        if resumed_ids:
            self._event(
                engine_events,
                journal,
                "runtime.campaign_resumed",
                campaign_id=plan.campaign_id,
                resumed=len(resumed_ids),
                remaining=len(tasks) - len(resumed_ids),
            )
        if downgraded:
            self._event(
                engine_events,
                journal,
                "runtime.downgraded_to_serial",
                campaign_id=plan.campaign_id,
                requested_workers=self.workers,
                reason="no artifact store shares artifacts across processes",
            )
            warnings.warn(
                f"campaign requested {self.workers} workers but runs serially: "
                "without an artifact store, processes cannot exchange artifacts "
                "for plans with dependencies or cacheable stages; pass a store "
                "(or ArtifactStore.from_env()) to parallelise",
                RuntimeWarning,
                stacklevel=2,
            )
        store_root = None if self.store is None else str(self.store.root)
        try:
            if workers <= 1:
                self._run_serial(plan, tasks, store_root, context, clock, records, journal)
            else:
                self._run_pool(
                    plan, tasks, store_root, workers, clock, records, journal, engine_events
                )
        except BaseException:
            # Crash path (engine bug, KeyboardInterrupt, store failure):
            # persist everything that settled before re-raising, so the
            # run stays inspectable and resumable.
            crashed = None
            with contextlib.suppress(Exception):
                crashed = self._finish_manifest(
                    plan, tasks, records, workers, started_unix, started_at,
                    downgraded, engine_events, clock, status="crashed",
                )
                if self.store is not None:
                    self.store.put_manifest(plan.campaign_id, crashed)
            if journal is not None:
                with contextlib.suppress(Exception):
                    summary = crashed["summary"] if crashed else {"total": len(tasks)}
                    journal.complete(summary, "crashed")
                journal.close()
            raise
        manifest = self._finish_manifest(
            plan, tasks, records, workers, started_unix, started_at,
            downgraded, engine_events, clock, status="complete",
        )
        path = None
        if self.store is not None:
            path = self.store.put_manifest(plan.campaign_id, manifest)
        if journal is not None:
            journal.complete(manifest["summary"], "complete")
            journal.close()
        results = {
            record["id"]: record["result"]
            for record in (records[task.id] for task in tasks)
            if record["status"] == "done"
        }
        return CampaignResult(manifest=manifest, results=results, manifest_path=path)

    def resume(self, campaign_id: str, context=None) -> CampaignResult:
        """Resume a crashed or partially failed campaign from its journal.

        Re-plans the identical task graph from the journal header
        (specs + stage selection + seed), verifies the plan still hashes
        to the same campaign id, replays every journalled ``done`` task
        and re-executes only the rest.  Because per-task seeds and
        retry backoff are keyed by (spawn key, attempt) — not execution
        order — the final results are bit-identical to an uninterrupted
        run.
        """
        if self.store is None:
            raise ValueError("resume requires an artifact store (journals live in it)")
        path = self.store.journal_path(campaign_id)
        if not path.exists():
            raise ValueError(
                f"no journal for campaign {campaign_id!r} under {path.parent}"
            )
        state = read_journal(path)
        if state.header is None:
            raise ValueError(f"journal {path} has no campaign header")
        stages = state.header.get("stages")
        if not stages:
            raise ValueError(
                f"campaign {campaign_id!r} was planned outside plan_campaign "
                "(table layout or hand-built graph); its journal records "
                "progress but cannot be resumed"
            )
        specs = [ExperimentSpec.from_dict(entry) for entry in state.header["specs"]]
        plan = plan_campaign(
            specs, stages=tuple(stages), seed=int(state.header.get("seed", 0))
        )
        if plan.campaign_id != campaign_id:
            raise ValueError(
                f"re-planned campaign hashes to {plan.campaign_id}, not "
                f"{campaign_id}: the stage registry or stage versions changed "
                "since the original run; start a fresh campaign instead"
            )
        return self.run(plan, context=context, resume_records=state.done_records())

    # -- execution paths ----------------------------------------------------------

    @staticmethod
    def _dep_inputs(task: StageTask, records: dict) -> dict:
        """Completed dependency results, keyed by dependency task id
        (the ``inputs`` argument of the stage contract)."""
        inputs = {}
        for dep in task.deps:
            record = records.get(dep)
            if record is not None and record["status"] == "done":
                inputs[dep] = record["result"]
        return inputs

    def _event(self, events: list, journal, name: str, **fields) -> dict:
        """One structured engine event: registry (when enabled), the
        manifest's event list, and the journal."""
        event = obs.record_event(name, **fields)
        if not event:
            event = {"event": name, "time_unix": wall_time_unix(), **fields}
        events.append(event)
        if journal is not None:
            journal.event(event)
        return event

    def _payload(self, plan, task, store_root, attempt, inputs, heartbeat_dir=None) -> dict:
        payload = task.payload(store_root, plan.seed, attempt, inputs=inputs)
        payload["retry_policy"] = self.policy.to_payload()
        if heartbeat_dir is not None:
            payload["heartbeat_dir"] = str(heartbeat_dir)
            payload["heartbeat_interval_s"] = self.heartbeat_interval_s
        return payload

    def _task_timeout(self, task: StageTask) -> float | None:
        """This task's wall-clock budget: the spec's per-stage
        ``timeout_s`` knob, else the engine default, else none.

        Read at execution time — deliberately *not* part of the planned
        params, so tuning a timeout can never change a task id or cache
        key.
        """
        timeout = task.spec.params_for(task.stage).get("timeout_s", self.task_timeout_s)
        if timeout is None:
            return None
        timeout = float(timeout)
        return timeout if timeout > 0 else None

    def _execute_with_retry(self, plan, task, store_root, experiment, inputs) -> dict:
        record = None
        history: list[dict] = []
        for attempt in range(self.policy.retries + 1):
            record = run_task(
                self._payload(plan, task, store_root, attempt, inputs),
                experiment=experiment,
            )
            record["attempts"] = attempt + 1
            if record["status"] == "done":
                break
            error_class = self.policy.classify(record.get("error_type"))
            record["error_class"] = error_class
            history.append(
                {
                    "attempt": attempt,
                    "error_class": error_class,
                    "error_type": record.get("error_type"),
                }
            )
            if not self.policy.should_retry(error_class, attempt + 1):
                break
            obs.metrics().counter("runtime.task_retries_total").inc()
        if history:
            record["failures"] = history
        return record

    def _run_serial(self, plan, tasks, store_root, context, clock, records, journal):
        experiments: dict[str, object] = {}
        for task in self._topological(tasks):
            if task.id in records:
                continue  # replayed from the journal
            blocker = self._blocking_dep(task, records)
            if blocker is not None:
                record = _skip_record(task, blocker, time.perf_counter() - clock)
                records[task.id] = record
                if journal is not None:
                    journal.task(record)
                continue
            spec_hash = task.spec.spec_hash
            if spec_hash not in experiments:
                from repro.api.experiment import Experiment

                if context is not None:
                    experiments[spec_hash] = Experiment(task.spec, context=context)
                else:
                    experiments[spec_hash] = Experiment(task.spec, store=self.store)
            started_offset = time.perf_counter() - clock
            record = self._execute_with_retry(
                plan, task, store_root, experiments[spec_hash],
                self._dep_inputs(task, records),
            )
            record["started_offset_s"] = started_offset
            record["ended_offset_s"] = time.perf_counter() - clock
            records[task.id] = record
            if journal is not None:
                journal.task(record)
        return records

    def _run_pool(self, plan, tasks, store_root, workers, clock, records, journal, events):
        attempts: dict[str, int] = {}
        failures: dict[str, list] = {}
        by_id = {task.id: task for task in tasks}
        waiting = {
            task.id: {dep for dep in task.deps if dep not in records}
            for task in tasks
            if task.id not in records
        }
        dependents: dict[str, list[str]] = {task.id: [] for task in tasks}
        for task in tasks:
            for dep in task.deps:
                dependents[dep].append(task.id)

        ready = [task_id for task_id, deps in waiting.items() if not deps]
        in_flight: dict = {}  # future -> task_id
        deadlines: dict = {}  # future -> campaign-clock offset of the deadline
        reaped: set[str] = set()  # task ids whose hung worker *we* killed
        # Offsets observed on the engine's campaign clock (worker
        # perf_counters are not comparable across processes): first
        # submit → started, final settle → ended.
        submit_offsets: dict[str, float] = {}
        heartbeat_dir = None
        if self.store is not None:
            heartbeat_dir = self.store.scratch_dir("heartbeats", plan.campaign_id)

        def settle(task_id: str, record: dict) -> list[str]:
            """Record a final status; returns newly ready tasks."""
            now_offset = time.perf_counter() - clock
            record.setdefault("started_offset_s", submit_offsets.get(task_id, now_offset))
            record.setdefault("ended_offset_s", now_offset)
            if failures.get(task_id):
                record.setdefault("failures", failures[task_id])
            records[task_id] = record
            if journal is not None:
                journal.task(record)
            newly_ready = []
            for child in dependents[task_id]:
                if child in records:
                    continue
                if record["status"] == "done":
                    waiting[child].discard(task_id)
                    if not waiting[child]:
                        newly_ready.append(child)
                else:
                    # Cascade the skip through the whole subtree.
                    newly_ready.extend(
                        settle(child, _skip_record(by_id[child], task_id, now_offset))
                    )
            return newly_ready

        def record_failure(task_id: str, error_class: str, error_type: str | None):
            failures.setdefault(task_id, []).append(
                {
                    "attempt": attempts[task_id] - 1,
                    "error_class": error_class,
                    "error_type": error_type,
                }
            )

        def failed(task_id: str, record: dict) -> list[str]:
            """A worker-reported error: classify, retry or settle."""
            error_class = self.policy.classify(record.get("error_type"))
            record["error_class"] = error_class
            record_failure(task_id, error_class, record.get("error_type"))
            if self.policy.should_retry(error_class, attempts[task_id]):
                obs.metrics().counter("runtime.task_retries_total").inc()
                return [task_id]
            return settle(task_id, record)

        def lost(task_id: str, error_class: str, detail: str) -> list[str]:
            """An engine-detected loss (timeout reap / dead worker):
            the attempt is spent; retry or settle a synthetic error."""
            record_failure(task_id, error_class, None)
            if self.policy.should_retry(error_class, attempts[task_id]):
                obs.metrics().counter("runtime.task_retries_total").inc()
                return [task_id]
            now_offset = time.perf_counter() - clock
            return settle(
                task_id,
                {
                    "id": task_id,
                    "stage": by_id[task_id].stage,
                    "status": "error",
                    "cache_hit": False,
                    "error": detail,
                    "error_type": error_class,
                    "error_class": error_class,
                    "attempts": attempts[task_id],
                    "wall_time_s": now_offset - submit_offsets.get(task_id, now_offset),
                },
            )

        def recover_pool(pool) -> tuple[ProcessPoolExecutor, list[str]]:
            """The pool broke (worker SIGKILL/OOM, or our own reap):
            charge every in-flight task its spent attempt, respawn the
            pool, re-enqueue what the policy allows."""
            newly_ready: list[str] = []
            for future, task_id in list(in_flight.items()):
                if task_id in reaped:
                    error_class, detail = "timeout", (
                        f"task exceeded its {self._task_timeout(by_id[task_id])}s "
                        "wall-clock timeout; the hung worker was killed"
                    )
                else:
                    error_class, detail = "worker-lost", (
                        "worker process died mid-task (process pool broke); "
                        "the pool was respawned"
                    )
                    self._event(
                        events, journal, "runtime.worker_lost",
                        campaign_id=plan.campaign_id, task_id=task_id,
                        attempt=attempts[task_id] - 1,
                    )
                if heartbeat_dir is not None:
                    with contextlib.suppress(OSError):
                        heartbeat_path(heartbeat_dir, task_id).unlink()
                newly_ready.extend(lost(task_id, error_class, detail))
            in_flight.clear()
            deadlines.clear()
            reaped.clear()
            obs.metrics().counter("runtime.workers_lost_total").inc()
            pool.shutdown(wait=False, cancel_futures=True)
            self._event(
                events, journal, "runtime.pool_respawned",
                campaign_id=plan.campaign_id, workers=workers,
            )
            return ProcessPoolExecutor(max_workers=workers), newly_ready

        def reap_overdue() -> None:
            """SIGKILL workers whose task blew its wall-clock budget.

            A missing or stale heartbeat means the task is still queued
            (or its worker just started), so its deadline re-arms
            instead; killing is reserved for tasks *observed* running
            past their budget.  The kill breaks the pool — the next
            ``wait`` surfaces it and ``recover_pool`` settles everyone.
            """
            now_offset = time.perf_counter() - clock
            for future, task_id in list(in_flight.items()):
                deadline = deadlines.get(future)
                if deadline is None or now_offset < deadline:
                    continue
                timeout_s = self._task_timeout(by_id[task_id])
                beat = self._read_heartbeat(heartbeat_dir, task_id)
                if beat is None or beat.get("attempt") != attempts[task_id] - 1:
                    deadlines[future] = now_offset + timeout_s
                    continue
                elapsed = wall_time_unix() - float(beat.get("started_unix", 0.0))
                if elapsed < timeout_s:
                    deadlines[future] = now_offset + (timeout_s - elapsed)
                    continue
                reaped.add(task_id)
                obs.metrics().counter("runtime.tasks_reaped_total").inc()
                self._event(
                    events, journal, "runtime.task_timeout",
                    campaign_id=plan.campaign_id, task_id=task_id,
                    attempt=attempts[task_id] - 1, timeout_s=timeout_s,
                    pid=beat.get("pid"),
                )
                pid = beat.get("pid")
                if isinstance(pid, int) and pid > 0:
                    with contextlib.suppress(OSError):
                        os.kill(pid, signal.SIGKILL)

        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while ready or in_flight:
                for task_id in ready:
                    if task_id in records:
                        continue
                    attempt = attempts.get(task_id, 0)
                    attempts[task_id] = attempt + 1
                    task = by_id[task_id]
                    submit_offsets.setdefault(task_id, time.perf_counter() - clock)
                    future = pool.submit(
                        run_task,
                        self._payload(
                            plan, task, store_root, attempt,
                            self._dep_inputs(task, records), heartbeat_dir,
                        ),
                    )
                    in_flight[future] = task_id
                    timeout_s = self._task_timeout(task)
                    # Reaping needs a heartbeat (to find the pid and to
                    # tell hung from queued), so timeouts are enforced
                    # only when the store provides a scratch area.
                    if timeout_s is not None and heartbeat_dir is not None:
                        deadlines[future] = time.perf_counter() - clock + timeout_s
                ready = []
                if not in_flight:
                    continue
                done, _pending = wait(
                    in_flight,
                    timeout=self._wait_timeout(deadlines, clock),
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    task_id = in_flight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        record = future.result()
                    except BrokenProcessPool:
                        # Put it back: recover_pool settles *all*
                        # in-flight tasks of the broken pool at once.
                        in_flight[future] = task_id
                        broken = True
                        break
                    record["attempts"] = attempts[task_id]
                    if record["status"] == "done":
                        ready.extend(settle(task_id, record))
                    else:
                        ready.extend(failed(task_id, record))
                if broken:
                    pool, newly_ready = recover_pool(pool)
                    ready.extend(newly_ready)
                elif not done:
                    reap_overdue()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            if heartbeat_dir is not None:
                shutil.rmtree(heartbeat_dir, ignore_errors=True)
        return records

    @staticmethod
    def _wait_timeout(deadlines: dict, clock: float) -> float | None:
        """How long the next ``wait`` may block: until the earliest
        in-flight deadline (None → until something completes)."""
        if not deadlines:
            return None
        now_offset = time.perf_counter() - clock
        return max(0.05, min(deadlines.values()) - now_offset)

    @staticmethod
    def _read_heartbeat(heartbeat_dir, task_id: str) -> dict | None:
        if heartbeat_dir is None:
            return None
        try:
            with open(heartbeat_path(heartbeat_dir, task_id), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return None

    @staticmethod
    def _topological(tasks: list[StageTask]) -> list[StageTask]:
        """Dependency-respecting order (plan order is already close)."""
        placed: set[str] = set()
        remaining = list(tasks)
        ordered = []
        while remaining:
            progressed = False
            deferred = []
            for task in remaining:
                if all(dep in placed for dep in task.deps):
                    ordered.append(task)
                    placed.add(task.id)
                    progressed = True
                else:
                    deferred.append(task)
            if not progressed:
                cycle = ", ".join(task.id for task in deferred)
                raise ValueError(f"dependency cycle in campaign plan: {cycle}")
            remaining = deferred
        return ordered

    @staticmethod
    def _blocking_dep(task: StageTask, records: dict) -> str | None:
        for dep in task.deps:
            record = records.get(dep)
            if record is not None and record["status"] != "done":
                return dep
        return None

    # -- manifest -----------------------------------------------------------------

    def _finish_manifest(
        self, plan, tasks, records, workers, started_unix, started_at,
        downgraded, events, clock, status: str,
    ) -> dict:
        """Assemble the final (or crash-partial) manifest."""
        ordered_records = [
            records.get(task.id) or _pending_record(task) for task in tasks
        ]
        manifest = self._manifest(plan, ordered_records, workers, started_unix, started_at)
        manifest["status"] = status
        manifest["downgraded_to_serial"] = downgraded
        manifest["events"] = events
        manifest["wall_time_s"] = time.perf_counter() - clock
        resumed = [record["id"] for record in ordered_records if record.get("resumed")]
        if resumed:
            manifest["resumed_tasks"] = resumed
        pending = sum(1 for record in ordered_records if record["status"] == "pending")
        if pending:
            manifest["summary"]["pending"] = pending
        if status == "complete" and obs.enabled():
            manifest["observability"] = self._observability(
                plan, ordered_records, workers, started_unix, manifest["wall_time_s"]
            )
        return manifest

    def _manifest(self, plan, records, workers, started_unix, started_at) -> dict:
        done = sum(1 for record in records if record["status"] == "done")
        failed = sum(1 for record in records if record["status"] == "error")
        skipped = sum(1 for record in records if record["status"] == "skipped")
        hits = sum(1 for record in records if record.get("cache_hit"))
        executed = sum(
            1
            for record in records
            if record["status"] == "done"
            and not record.get("cache_hit")
            and not record.get("resumed")
        )
        task_rows = []
        by_id = {task.id: task for task in plan.ordered()}
        for record in records:
            task = by_id[record["id"]]
            row = {
                "id": record["id"],
                "stage": record["stage"],
                "key": task.key,
                "kind": task.kind,
                "specs": list(task.spec_hashes),
                "status": record["status"],
                "attempts": record.get("attempts", 0),
                "cache_hit": bool(record.get("cache_hit")),
                "wall_time_s": record.get("wall_time_s", 0.0),
                "started_offset_s": record.get("started_offset_s", 0.0),
                "ended_offset_s": record.get("ended_offset_s", 0.0),
            }
            for optional in ("resumed", "error_class", "failures"):
                if optional in record:
                    row[optional] = record[optional]
            if record["status"] == "done":
                row["result"] = record["result"]
            elif record["status"] == "error":
                row["error"] = record["error"]
            elif record["status"] == "skipped":
                row["skipped_because"] = record["skipped_because"]
            task_rows.append(row)
        return {
            "campaign_id": plan.campaign_id,
            "created_unix": started_unix,
            "started_at": started_at,
            "workers": workers,
            "retries": self.retries,
            "seed": plan.seed,
            "specs": [
                {"hash": spec.spec_hash, "spec": spec.to_dict()} for spec in plan.specs
            ],
            "tasks": task_rows,
            "summary": {
                "total": len(records),
                "done": done,
                "failed": failed,
                "skipped": skipped,
                "cache_hits": hits,
                "executed": executed,
            },
        }

    def _observability(self, plan, records, workers, started_unix, wall_s) -> dict:
        """The manifest's telemetry block: one campaign root span over
        every task's span tree, plus the merged worker metrics.

        Task records carry ``spans``/``metrics`` produced inside
        whichever process executed them (:func:`~repro.runtime.worker.run_task`);
        merging the per-task registry deltas yields the same counter
        totals whether the campaign ran serially or on a pool.  Pool
        deltas are additionally folded into this process's live
        registry so a long-lived host sees campaign totals too (serial
        tasks already recorded into it directly).
        """
        merged = obs.merge_snapshots(
            *(record.pop("metrics", None) or {} for record in records)
        )
        if workers > 1:
            obs.get_registry().merge(merged)
        children = []
        for record in records:
            children.extend(record.pop("spans", None) or ())
        root = {
            "name": f"campaign:{plan.campaign_id}",
            "start_us": started_unix * 1e6,
            "dur_us": wall_s * 1e6,
            "attrs": {
                "campaign_id": plan.campaign_id,
                "workers": workers,
                "tasks": len(records),
            },
            "children": children,
        }
        return {"metrics": merged, "spans": [root]}


def _scales_agree(spec_scale, context_scale) -> bool:
    """Whether two scales produce the same cache keys.

    Compares exactly the fields the artifact-store keys depend on, so a
    context trained at one scale can never persist artifacts under
    another scale's keys.
    """
    return (
        spec_scale.window == context_scale.window
        and spec_scale.n_runs == context_scale.n_runs
        and spec_scale.model_config() == context_scale.model_config()
        and spec_scale.pretrain_settings == context_scale.pretrain_settings
        and spec_scale.finetune_settings == context_scale.finetune_settings
        and spec_scale.fine_fraction == context_scale.fine_fraction
    )


def _skip_record(task: StageTask, blocker: str, offset_s: float = 0.0) -> dict:
    return {
        "id": task.id,
        "stage": task.stage,
        "status": "skipped",
        "skipped_because": blocker,
        "cache_hit": False,
        "attempts": 0,
        "wall_time_s": 0.0,
        "started_offset_s": offset_s,
        "ended_offset_s": offset_s,
    }


def _pending_record(task: StageTask) -> dict:
    """Placeholder row for a task a crashed run never settled."""
    return {
        "id": task.id,
        "stage": task.stage,
        "status": "pending",
        "cache_hit": False,
        "attempts": 0,
        "wall_time_s": 0.0,
        "started_offset_s": 0.0,
        "ended_offset_s": 0.0,
    }


def run_campaign(
    specs,
    stages=None,
    store=_DEFAULT_STORE,
    workers: int = 1,
    retries: int = 1,
    seed: int = 0,
    context=None,
    policy: RetryPolicy | None = None,
    task_timeout_s: float | None = None,
) -> CampaignResult:
    """Plan and run the standard pipeline over ``specs`` in one call."""
    plan = plan_campaign(specs, stages=None if stages is None else tuple(stages), seed=seed)
    engine = CampaignEngine(
        store=store,
        workers=workers,
        retries=retries,
        policy=policy,
        task_timeout_s=task_timeout_s,
    )
    return engine.run(plan, context=context)
