"""Micro-batching: coalesce concurrent requests into fused forwards.

Concurrent ``/predict`` callers each carry a handful of feature
windows; running one forward pass per caller wastes the model's batch
dimension.  A :class:`MicroBatcher` parks each request behind an
:class:`asyncio.Future`, concatenates everything pending into a single
array, runs **one** fused no-grad forward, and splits the predictions
back per caller.

Flush rules (whichever fires first):

* **size** — pending windows reach ``max_batch_windows``;
* **age** — the oldest pending request has waited ``max_wait_us``.

Requests are bucketed by window length (arrays of different window
lengths cannot share one forward), and the forward itself runs on a
single dedicated executor thread: numpy releases the GIL inside BLAS,
the event loop stays responsive, and a lone prediction lane means the
per-predictor ``precision`` scope is never raced.

Bit-compatibility: a flush of ``n >= 2`` windows is bit-identical,
row for row, to any other ``>= 2``-window batch containing the same
window (both run the same gemm kernels).  Single-row forwards go
through BLAS gemv instead, which may differ in the last ulp — the same
caveat as ``Predictor`` with ``batch_size=1``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.api.predictor import Predictor
from repro.serve.metrics import ServingMetrics

__all__ = ["MicroBatcher", "BatcherConfig", "BatcherSaturated"]


@dataclass(frozen=True)
class BatcherConfig:
    """Flush rules and overload cap for one model's micro-batcher."""

    #: Flush as soon as this many windows are pending.
    max_batch_windows: int = 64
    #: Flush when the oldest pending request has waited this long.
    max_wait_us: float = 2000.0
    #: Shed load once this many windows are queued or in flight —
    #: :meth:`MicroBatcher.submit` raises :class:`BatcherSaturated`
    #: (HTTP 503 at the front) instead of growing the queue unboundedly.
    max_pending_windows: int = 4096

    def __post_init__(self):
        if self.max_batch_windows <= 0:
            raise ValueError(
                f"max_batch_windows must be positive, got {self.max_batch_windows}"
            )
        if self.max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {self.max_wait_us}")
        if self.max_pending_windows < self.max_batch_windows:
            raise ValueError(
                f"max_pending_windows ({self.max_pending_windows}) must be >= "
                f"max_batch_windows ({self.max_batch_windows})"
            )


class BatcherSaturated(RuntimeError):
    """The batcher's pending queue is full; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass
class _Pending:
    features: np.ndarray
    receiver: np.ndarray
    message_size: np.ndarray | None
    future: asyncio.Future = field(repr=False)


class MicroBatcher:
    """Coalesces concurrent prediction requests for one predictor.

    Args:
        predictor: the warm model served by this batcher.
        config: flush rules.
        metrics: shared serving telemetry (flush occupancy is recorded).
        executor: optional executor for the forward pass; ``None`` uses
            the event loop's default.  The server passes a 1-thread
            executor shared by all batchers (one prediction lane).
    """

    def __init__(
        self,
        predictor: Predictor,
        config: BatcherConfig | None = None,
        metrics: ServingMetrics | None = None,
        executor=None,
    ):
        self.predictor = predictor
        self.config = config or BatcherConfig()
        self.metrics = metrics
        self.executor = executor
        # window_len → pending requests (buckets flush independently).
        self._pending: dict[int, list[_Pending]] = {}
        self._pending_windows: dict[int, int] = {}
        self._timers: dict[int, asyncio.TimerHandle] = {}
        # Windows accepted but not yet answered (queued + in forward).
        # Touched only on the event-loop thread, so no lock is needed.
        self._inflight_windows = 0

    # -- request side -------------------------------------------------------------

    async def submit(
        self,
        features: np.ndarray,
        receiver: np.ndarray,
        message_size: np.ndarray | None = None,
    ) -> np.ndarray:
        """Predictions for one caller's windows, served micro-batched.

        Validation errors raise immediately (a malformed request must
        never poison the batch it would have joined); prediction errors
        propagate to every caller of the failed flush.
        """
        features = np.asarray(features, dtype=np.float64)
        receiver = np.asarray(receiver, dtype=np.int64)
        if features.ndim != 3:
            raise ValueError(f"features must be 3-D, got shape {features.shape}")
        if receiver.shape != features.shape[:2]:
            raise ValueError(
                f"receiver shape {receiver.shape} does not match "
                f"windows {features.shape[:2]}"
            )
        if self.predictor.task == "mct":
            if message_size is None:
                raise ValueError("the MCT task needs message_size per window")
            message_size = np.atleast_1d(np.asarray(message_size, dtype=np.float64))
            if message_size.shape != (len(features),):
                raise ValueError("features and message_size batch sizes differ")
        elif message_size is not None:
            raise ValueError("message_size is only meaningful for the MCT task")
        if len(features) == 0:
            return np.empty(0, dtype=np.float64)
        if self._inflight_windows + len(features) > self.config.max_pending_windows:
            # Shed load instead of queueing unboundedly: the caller gets
            # an explicit 503 + Retry-After rather than a latency cliff.
            if self.metrics is not None:
                self.metrics.record_rejected()
            retry_after_s = max(
                0.1,
                (self._inflight_windows / self.config.max_batch_windows)
                * (self.config.max_wait_us / 1e6),
            )
            raise BatcherSaturated(
                f"batcher saturated: {self._inflight_windows} windows in flight "
                f"(cap {self.config.max_pending_windows})",
                retry_after_s=retry_after_s,
            )
        if len(features) > self.config.max_batch_windows:
            # Oversized requests would never fit a flush; serve them as
            # their own batch rather than rejecting them.
            self._inflight_windows += len(features)
            try:
                return await self._run_alone(features, receiver, message_size)
            finally:
                self._inflight_windows -= len(features)

        loop = asyncio.get_running_loop()
        entry = _Pending(features, receiver, message_size, loop.create_future())
        window_len = features.shape[1]
        bucket = self._pending.setdefault(window_len, [])
        bucket.append(entry)
        self._inflight_windows += len(features)
        count = self._pending_windows.get(window_len, 0) + len(features)
        self._pending_windows[window_len] = count
        if count >= self.config.max_batch_windows:
            self._flush(window_len)
        elif window_len not in self._timers:
            self._timers[window_len] = loop.call_later(
                self.config.max_wait_us / 1e6, self._flush, window_len
            )
        return await entry.future

    # -- flush side ---------------------------------------------------------------

    def _flush(self, window_len: int) -> None:
        timer = self._timers.pop(window_len, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(window_len, [])
        self._pending_windows.pop(window_len, None)
        if not batch:
            return
        asyncio.get_running_loop().create_task(self._run_batch(batch))

    async def _run_batch(self, batch: list[_Pending]) -> None:
        features = np.concatenate([entry.features for entry in batch])
        receiver = np.concatenate([entry.receiver for entry in batch])
        message_size = None
        if self.predictor.task == "mct":
            message_size = np.concatenate([entry.message_size for entry in batch])
        try:
            try:
                predictions = await self._predict(features, receiver, message_size)
            except Exception as error:  # pragma: no cover - model-level failures
                for entry in batch:
                    if not entry.future.cancelled():
                        entry.future.set_exception(error)
                return
            if self.metrics is not None:
                self.metrics.record_batch(len(batch), len(features))
            start = 0
            for entry in batch:
                stop = start + len(entry.features)
                if not entry.future.cancelled():
                    entry.future.set_result(predictions[start:stop])
                start = stop
        finally:
            self._inflight_windows -= len(features)

    async def _run_alone(self, features, receiver, message_size) -> np.ndarray:
        predictions = await self._predict(features, receiver, message_size)
        if self.metrics is not None:
            self.metrics.record_batch(1, len(features))
        return predictions

    async def _predict(self, features, receiver, message_size) -> np.ndarray:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.executor,
            self.predictor.predict,
            features,
            receiver,
            message_size,
        )

    async def drain(self) -> None:
        """Flush everything pending and wait for the results (shutdown)."""
        futures = [
            entry.future
            for bucket in self._pending.values()
            for entry in bucket
        ]
        for window_len in list(self._pending):
            self._flush(window_len)
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)
