"""Tests for the experiment pipeline (scales, context, table runners).

The table runners themselves are exercised end-to-end by the benchmark
suite; here we verify structure and caching on the smoke scale.
"""

import pytest

from repro.core.pipeline import (
    ExperimentContext,
    format_rows,
    get_scale,
    run_table2,
)
from repro.netsim.scenarios import ScenarioKind


class TestScales:
    def test_known_scales(self):
        for name in ("smoke", "small", "paper"):
            scale = get_scale(name)
            assert scale.name == name

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("enormous")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_scenario_presets_per_scale(self):
        assert get_scale("paper").scenario(ScenarioKind.PRETRAIN).n_senders == 60
        assert get_scale("smoke").scenario(ScenarioKind.PRETRAIN).n_senders == 4

    def test_model_config_fits_window(self):
        for name in ("smoke", "small", "paper"):
            scale = get_scale(name)
            config = scale.model_config()
            assert config.aggregation.seq_len <= scale.window.window_len

    def test_aggregation_variants_fit_window(self):
        for name in ("smoke", "small", "paper"):
            scale = get_scale(name)
            for variant in scale.aggregation_variants.values():
                assert variant.seq_len <= scale.window.window_len, (name, variant)


class TestContext:
    def test_bundles_cached(self):
        context = ExperimentContext(get_scale("smoke"))
        first = context.bundle(ScenarioKind.PRETRAIN)
        second = context.bundle(ScenarioKind.PRETRAIN)
        assert first is second

    def test_case_bundles_share_receiver_index(self):
        context = ExperimentContext(get_scale("smoke"))
        pre = context.bundle(ScenarioKind.PRETRAIN)
        case1 = context.bundle(ScenarioKind.CASE1)
        for key, value in pre.receiver_index.items():
            assert case1.receiver_index[key] == value

    def test_pretrained_cached(self):
        context = ExperimentContext(get_scale("smoke"))
        assert context.pretrained() is context.pretrained()


class TestRunners:
    def test_table2_structure(self):
        scale = get_scale("smoke")
        context = ExperimentContext(scale)
        rows = run_table2(scale, context)
        assert set(rows) == {
            "pretrained_full",
            "pretrained_10pct",
            "scratch_full",
            "scratch_10pct",
        }
        for row in rows.values():
            assert row["delay_mse"] > 0
            assert row["training_time_s"] > 0
        # Decoder-only fine-tuning must be faster than full training on
        # the same data.
        assert (
            rows["pretrained_full"]["training_time_s"]
            < rows["scratch_full"]["training_time_s"]
        )

    def test_format_rows_readable(self):
        text = format_rows({"row": {"delay_mse": 0.001, "note": "x"}})
        assert "row" in text and "delay_mse" in text
