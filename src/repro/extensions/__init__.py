"""Extensions implementing the paper's §5 research agenda.

* :mod:`repro.extensions.federated` — "Collaborative pre-training":
  combine NTTs pre-trained on private data shards by federated
  averaging, so organisations share models instead of traces.
* :mod:`repro.extensions.continual` — "Continual learning": decide when
  a deployed (fine-tuned) NTT has gone stale and should be re-trained.

Both workloads register first-class pipeline stages
(``federated_pretrain`` and ``drift_monitor``, in
:mod:`repro.extensions.stages`) in the
:data:`~repro.api.stages.STAGE_REGISTRY`, so they plan, cache,
parallelise and manifest through the :mod:`repro.runtime` campaign
engine — ``repro sweep --stages federated_pretrain`` — exactly like the
built-in traces→…→evaluate chain.
"""

from repro.extensions.federated import FederatedTrainer, federated_average
from repro.extensions.continual import DriftMonitor, DriftReport

# Imported last: stage registration pulls in repro.api submodules, which
# federated/continual must not (repro.api re-exports them — see the
# repro.extensions.stages docstring).
from repro.extensions import stages as _stages  # noqa: F401

__all__ = ["FederatedTrainer", "federated_average", "DriftMonitor", "DriftReport"]
