"""Point-to-point links.

A full-duplex link is a pair of :class:`Channel` objects.  Each channel
owns an egress queue and a transmitter: the head-of-line packet occupies
the transmitter for its serialization delay, then propagates for the
channel's propagation delay before being delivered to the peer node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.netsim.core import Simulator
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.units import serialization_delay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.netsim.node import Node

__all__ = ["Channel", "Link"]


class Channel:
    """One direction of a link: queue + transmitter + propagation."""

    def __init__(
        self,
        sim: Simulator,
        dst_node: "Node",
        rate_bps: float,
        propagation_delay: float,
        queue: DropTailQueue,
        name: str = "",
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise ValueError(f"propagation delay must be non-negative, got {propagation_delay}")
        self.sim = sim
        self.dst_node = dst_node
        self.rate_bps = float(rate_bps)
        self.propagation_delay = float(propagation_delay)
        self.queue = queue
        self.name = name
        self.busy = False
        self.bytes_sent = 0
        self.packets_sent = 0
        self.busy_time = 0.0

    def send(self, packet: Packet) -> bool:
        """Hand ``packet`` to this channel.

        If the transmitter is idle the packet starts serializing
        immediately; otherwise it is enqueued (and possibly dropped).
        Returns False when the packet was dropped at the queue.
        """
        if self.busy:
            return self.queue.enqueue(packet)
        self._start_transmission(packet)
        return True

    def _start_transmission(self, packet: Packet) -> None:
        self.busy = True
        tx_delay = serialization_delay(packet.size, self.rate_bps)
        self.busy_time += tx_delay
        self.sim.schedule(tx_delay, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self.sim.schedule(self.propagation_delay, self.dst_node.receive, packet)
        next_packet = self.queue.dequeue()
        if next_packet is None:
            self.busy = False
        else:
            self._start_transmission(next_packet)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:
        return f"Channel({self.name or hex(id(self))}, rate={self.rate_bps:.3g}bps)"


class Link:
    """A full-duplex link between two nodes.

    Queue capacity applies independently per direction, as in ns-3's
    point-to-point net devices.
    """

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        node_b: "Node",
        rate_bps: float,
        propagation_delay: float,
        queue_packets: int,
        queue_factory=None,
    ):
        make_queue = queue_factory if queue_factory is not None else DropTailQueue
        self.node_a = node_a
        self.node_b = node_b
        self.forward = Channel(
            sim,
            node_b,
            rate_bps,
            propagation_delay,
            make_queue(queue_packets),
            name=f"{node_a.name}->{node_b.name}",
        )
        self.backward = Channel(
            sim,
            node_a,
            rate_bps,
            propagation_delay,
            make_queue(queue_packets),
            name=f"{node_b.name}->{node_a.name}",
        )

    def channel_from(self, node: "Node") -> Channel:
        """The egress channel as seen from ``node``."""
        if node is self.node_a:
            return self.forward
        if node is self.node_b:
            return self.backward
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def other_end(self, node: "Node") -> "Node":
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node!r} is not an endpoint of this link")
