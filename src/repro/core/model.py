"""The Network Traffic Transformer (Fig. 3).

Three stages:

1. **Embedding** — every packet's continuous features pass through a
   shared linear embedding; the receiver ID adds a learned embedding
   vector ("an IP address proxy").  The delay of the most recent packet
   is masked: its value is zeroed and a learned mask embedding marks the
   position (BERT-style).
2. **Aggregation** — the learned multi-timescale aggregation of
   :mod:`repro.core.aggregation`.
3. **Transformer encoder** — outputs the context-rich encoded sequence
   consumed by a task decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.aggregation import AggregationSpec, Aggregator
from repro.core.decoders import DelayDecoder, MCTDecoder
from repro.core.features import FeatureSpec
from repro.nn import fastpath
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, Parameter
from repro.nn.positional import SinusoidalPositionalEncoding
from repro.nn.tensor import Tensor, _unbroadcast
from repro.nn.transformer import TransformerEncoder
from repro.utils.rng import RngFactory

__all__ = ["NTTConfig", "NTT", "NTTForDelay", "NTTForMCT"]


def _fused_add3(a: Tensor, b: Tensor, c: Tensor) -> Tensor:
    """``(a + b) + c`` as one autograd node (bit-identical).

    The embedding combine adds two full ``(batch, seq, d_emb)`` arrays
    to the continuous embedding every step; fusing the chain drops one
    full-size temporary and one graph node.
    """
    data = a.data + b.data
    np.add(data, c.data, out=data)

    def backward(grad):
        return (
            grad,
            _unbroadcast(grad, b.data.shape),
            _unbroadcast(grad, c.data.shape),
        )

    return Tensor._from_op(data, (a, b, c), backward)


@dataclass(frozen=True)
class NTTConfig:
    """Hyper-parameters of the NTT and its decoders."""

    features: FeatureSpec = field(default_factory=FeatureSpec.full)
    aggregation: AggregationSpec = field(
        default_factory=AggregationSpec.multi_timescale_512
    )
    d_emb: int = 32
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 128
    dropout: float = 0.1
    decoder_hidden: int = 64
    n_receivers: int = 16
    seed: int = 0

    def __post_init__(self):
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} must be divisible by n_heads={self.n_heads}"
            )

    @classmethod
    def small(cls, **overrides) -> "NTTConfig":
        """The scaled default used by tests and benchmarks."""
        return replace(cls(), **overrides) if overrides else cls()

    @classmethod
    def paper(cls, **overrides) -> "NTTConfig":
        """Paper-scale model: 1024-packet windows, wider encoder."""
        config = cls(
            aggregation=AggregationSpec.multi_timescale_paper(),
            d_emb=64,
            d_model=128,
            n_heads=8,
            n_layers=4,
            d_ff=512,
            decoder_hidden=128,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def smoke(cls, **overrides) -> "NTTConfig":
        """Tiny model for fast unit tests (64-packet windows)."""
        config = cls(
            aggregation=AggregationSpec.from_pairs([(4, 9), (4, 4), (12, 1)]),
            d_emb=12,
            d_model=24,
            n_heads=2,
            n_layers=1,
            d_ff=48,
            decoder_hidden=24,
            dropout=0.0,
        )
        return replace(config, **overrides) if overrides else config


class NTT(Module):
    """Embedding → aggregation → encoder (Fig. 3).

    ``forward`` takes numpy arrays straight from the dataset pipeline:

    * ``features`` — normalised continuous features, shape
      ``(batch, window_len, 3)`` with the full raw column layout; the
      model selects the columns its :class:`FeatureSpec` keeps and uses
      only the last ``aggregation.seq_len`` packets.
    * ``receiver`` — int ids, shape ``(batch, window_len)``.

    Returns the encoded sequence ``(batch, out_len, d_model)``.
    """

    def __init__(self, config: NTTConfig):
        super().__init__()
        self.config = config
        rng = RngFactory(config.seed).derive("ntt-init")
        spec = config.features
        self.embed_continuous = Linear(spec.n_continuous, config.d_emb, rng)
        if spec.use_receiver:
            self.embed_receiver = Embedding(config.n_receivers, config.d_emb, rng)
        else:
            self.embed_receiver = None
        # Learned mask embedding flags the masked-delay position.
        self.mask_embedding = Parameter(
            rng.normal(0.0, 0.02, size=(config.d_emb,)), name="mask_embedding"
        )
        self.aggregator = Aggregator(config.aggregation, config.d_emb, config.d_model, rng)
        self.positional = SinusoidalPositionalEncoding(
            config.d_model, max_len=max(config.aggregation.out_len, 64)
        )
        self.encoder = TransformerEncoder(
            config.n_layers,
            config.d_model,
            config.n_heads,
            config.d_ff,
            rng,
            dropout=config.dropout,
        )

    @property
    def seq_len(self) -> int:
        return self.config.aggregation.seq_len

    def forward(self, features: np.ndarray, receiver: np.ndarray) -> Tensor:
        features = np.asarray(features, dtype=np.float64)
        receiver = np.asarray(receiver, dtype=np.int64)
        if features.ndim != 3:
            raise ValueError(f"features must be 3-D, got shape {features.shape}")
        window_len = features.shape[1]
        seq_len = self.seq_len
        if window_len < seq_len:
            raise ValueError(
                f"window of {window_len} packets is shorter than the model's "
                f"sequence length {seq_len}"
            )
        spec = self.config.features
        # Fancy indexing already yields a fresh contiguous array, so the
        # masking below may write into it directly — no second copy.
        selected = features[:, window_len - seq_len :, list(spec.continuous_columns)]
        # Mask the most recent packet's delay (the pre-training target).
        delay_position = spec.delay_position
        if delay_position is not None:
            selected[:, -1, delay_position] = 0.0
        embedded = self.embed_continuous(Tensor(selected))
        # Flag the masked position with the learned mask embedding.
        flag = np.zeros((seq_len, 1), dtype=np.float64)
        flag[-1, 0] = 1.0
        flagged = Tensor(flag) * self.mask_embedding
        if self.embed_receiver is not None:
            receiver_embedded = self.embed_receiver(receiver[:, window_len - seq_len :])
            if fastpath.fused_ops_enabled():
                embedded = _fused_add3(embedded, receiver_embedded, flagged)
            else:
                embedded = embedded + receiver_embedded + flagged
        else:
            embedded = embedded + flagged
        aggregated = self.aggregator(embedded)
        return self.encoder(self.positional(aggregated))


class NTTForDelay(Module):
    """NTT + delay decoder: the pre-training model (and delay fine-tuning)."""

    def __init__(self, config: NTTConfig, ntt: NTT | None = None):
        super().__init__()
        self.config = config
        self.ntt = ntt if ntt is not None else NTT(config)
        rng = RngFactory(config.seed).derive("delay-decoder-init")
        self.decoder = DelayDecoder(config.d_model, config.decoder_hidden, rng)

    def forward(self, features: np.ndarray, receiver: np.ndarray) -> Tensor:
        return self.decoder(self.ntt(features, receiver))

    def reset_decoder(self, seed: int | None = None) -> None:
        """Fresh decoder weights (fine-tuning to a new environment)."""
        rng = RngFactory(seed if seed is not None else self.config.seed).derive(
            "delay-decoder-reset"
        )
        self.decoder = DelayDecoder(self.config.d_model, self.config.decoder_hidden, rng)


class NTTForMCT(Module):
    """NTT + MCT decoder: the new-task fine-tuning model.

    Wraps an existing (typically pre-trained) NTT; the decoder is always
    fresh because the task is new.
    """

    def __init__(self, config: NTTConfig, ntt: NTT, seed: int | None = None):
        super().__init__()
        self.config = config
        self.ntt = ntt
        rng = RngFactory(seed if seed is not None else config.seed).derive("mct-decoder-init")
        self.decoder = MCTDecoder(config.d_model, config.decoder_hidden, rng)

    def forward(
        self,
        features: np.ndarray,
        receiver: np.ndarray,
        message_size: np.ndarray,
    ) -> Tensor:
        encoded = self.ntt(features, receiver)
        return self.decoder(encoded, Tensor.ensure(message_size))
