"""Tests for the Experiment facade."""

from dataclasses import replace

import numpy as np
import pytest

from repro.api import ArtifactStore, Experiment, ExperimentSpec
from repro.core.pretrain import TrainSettings

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


def fast_spec(scenario: str = "pretrain", **kwargs) -> ExperimentSpec:
    return ExperimentSpec(
        scenario=scenario, scale="smoke", pretrain=FAST, finetune=FAST, **kwargs
    )


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "cache")


class TestConstruction:
    def test_keyword_shorthand(self, store):
        exp = Experiment(scenario="case1", scale="smoke", store=store)
        assert exp.spec.scenario == "case1"

    def test_spec_and_kwargs_conflict(self, store):
        with pytest.raises(TypeError):
            Experiment(ExperimentSpec(scale="smoke"), store=store, scenario="case1")

    def test_uncached_has_no_store(self):
        assert Experiment.uncached(fast_spec()).store is None

    def test_scale_resolves_overrides(self, store):
        exp = Experiment(fast_spec(), store=store)
        assert exp.scale.pretrain_settings.epochs == 1


class TestWorkflow:
    def test_bundle_defaults_to_spec_scenario(self, store):
        exp = Experiment(fast_spec("case1"), store=store)
        assert exp.bundle().name == "case1"

    def test_pretrained_serves_second_experiment_from_store(self, store):
        exp1 = Experiment(fast_spec(), store=store)
        first = exp1.pretrained()
        exp2 = Experiment(fast_spec(), store=store)
        second = exp2.pretrained()
        assert second.test_mse_seconds2 == first.test_mse_seconds2
        assert store.summary()["checkpoints"]["count"] == 1

    def test_traces_cached(self, store):
        exp = Experiment(fast_spec(), store=store)
        first = exp.traces()
        assert store.summary()["traces"]["count"] == len(first)
        second = Experiment(fast_spec(), store=store).traces()
        assert np.array_equal(first[0].send_time, second[0].send_time)

    def test_finetuned_cached_across_experiments(self, store):
        exp = Experiment(fast_spec("case1"), store=store)
        first = exp.finetuned(fraction=0.5)
        again = Experiment(fast_spec("case1"), store=store).finetuned(fraction=0.5)
        assert again.test_mse == first.test_mse
        assert again.task == "delay"

    def test_finetuned_unknown_task_rejected(self, store):
        with pytest.raises(ValueError, match="task"):
            Experiment(fast_spec("case1"), store=store).finetuned(task="jitter")

    def test_run_table_unknown_table_rejected(self, store):
        with pytest.raises(ValueError, match="table"):
            Experiment(fast_spec(), store=store).run_table(9)

    def test_predictor_round_trip_through_checkpoint(self, store, tmp_path):
        exp = Experiment(fast_spec(), store=store)
        predictor = exp.predictor()
        path = tmp_path / "model.npz"
        predictor.save(path)
        from repro.api import Predictor

        restored = Predictor.from_checkpoint(path)
        test = exp.bundle().test
        assert np.array_equal(
            predictor.predict_dataset(test), restored.predict_dataset(test)
        )

    def test_spec_seed_flows_into_scenario(self, store):
        exp = Experiment(replace(fast_spec(), seed=9), store=store)
        assert exp.context.scenario_config("pretrain").seed == 9


class TestRegisteredScenarioEndToEnd:
    def test_new_scenario_through_full_pipeline(self, store):
        """A plugin scenario must work end-to-end: simulate, window,
        share receiver identities with pre-training."""
        exp = Experiment(fast_spec("bursty_cross"), store=store)
        bundle = exp.bundle()
        assert len(bundle.train) > 0
        pre_index = exp.bundle("pretrain").receiver_index
        for key, value in pre_index.items():
            assert bundle.receiver_index[key] == value
