#!/usr/bin/env bash
# Incremental strict type-checking over an allowlist of modules.
#
# The repo is not fully typed; rather than run mypy loosely everywhere,
# we hold a small allowlist to strict standards and grow it module by
# module.  Add a file here once its public surface carries precise
# annotations (see src/repro/api/store.py and src/repro/obs/metrics.py
# for the expected level).
#
# mypy is optional tooling: when it is not installed the script skips
# with exit 0 so tier-1 environments without it stay green.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v mypy >/dev/null 2>&1; then
    echo "typecheck: mypy not installed; skipping"
    exit 0
fi

STRICT_MODULES=(
    src/repro/api/store.py
    src/repro/api/stages.py
    src/repro/obs/metrics.py
    src/repro/utils/clock.py
    src/repro/lint/findings.py
    src/repro/lint/baseline.py
    src/repro/lint/callgraph.py
    src/repro/lint/fingerprint.py
    src/repro/lint/taint.py
)

echo "typecheck: mypy over ${#STRICT_MODULES[@]} strict modules"
MYPYPATH=src exec mypy \
    --strict \
    --warn-unreachable \
    --no-error-summary \
    --follow-imports=silent \
    "${STRICT_MODULES[@]}"
