"""Discrete-event simulation core.

A tiny but complete event loop: events are ``(time, priority, sequence)``
ordered callbacks in a binary heap.  The sequence number makes the order
of same-time events deterministic (FIFO in scheduling order), which keeps
whole simulations bit-reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable

__all__ = ["Simulator", "Event", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the event loop."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events can be cancelled (used by TCP retransmission timers); a
    cancelled event stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will not run."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state})"


class Simulator:
    """The discrete-event scheduler.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=2.0)
    """

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable, *args, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among same-time events (lower runs first).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(self, time: float, callback: Callable, *args, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        When stopping at ``until``, the clock is advanced to ``until`` so
        subsequent scheduling is relative to the stop time.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            executed = 0
            while True:
                if max_events is not None and executed >= max_events:
                    return
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
