"""Optimizers: SGD (+momentum), Adam and AdamW, plus gradient clipping."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


class Optimizer:
    """Base class; holds the parameter list and the shared step counter."""

    def __init__(self, parameters: list[Parameter], lr: float):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = float(lr)
        self.steps = 0

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored."""
        self.steps += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            self._update(index, parameter)

    def _update(self, index: int, parameter: Parameter) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, index: int, parameter: Parameter) -> None:
        grad = parameter.grad
        if self.momentum > 0.0:
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(parameter.data)
            velocity = self.momentum * velocity + grad
            self._velocity[index] = velocity
            grad = velocity
        parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def _update(self, index: int, parameter: Parameter) -> None:
        grad = parameter.grad
        m = self._m.get(index)
        v = self._v.get(index)
        if m is None:
            m = np.zeros_like(parameter.data)
            v = np.zeros_like(parameter.data)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        self._m[index] = m
        self._v[index] = v
        m_hat = m / (1.0 - self.beta1**self.steps)
        v_hat = v / (1.0 - self.beta2**self.steps)
        parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter 2019)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps)
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.weight_decay = weight_decay

    def _update(self, index: int, parameter: Parameter) -> None:
        if self.weight_decay:
            parameter.data = parameter.data * (1.0 - self.lr * self.weight_decay)
        super()._update(index, parameter)


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Short transformer training runs on
    heavy-tailed targets occasionally produce gradient spikes; clipping
    keeps Adam's second-moment estimates sane.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float((g * g).sum()) for g in grads))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad = parameter.grad * scale
    return total
