"""Packet traces: what the simulator produces and the NTT consumes.

A trace is the list of *delivered, traced* packets with the four raw
features the paper uses (§3): timestamp, packet size, receiver ID and
end-to-end delay — plus the message bookkeeping needed for the MCT
fine-tuning task.

Collection is columnar: :class:`TraceCollector` writes each delivered
packet straight into preallocated, geometrically-grown numpy column
buffers, so finalizing a trace is a trim + one stable ``lexsort``
instead of materialising (and later re-walking) a Python object per
packet.  The pre-columnar collector survives as
:class:`repro.netsim.reference.ReferenceTraceCollector` for golden
equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.packet import Packet

__all__ = ["PacketRecord", "TraceCollector", "Trace"]

#: Initial per-column capacity of a collector (doubles when full).
_INITIAL_CAPACITY = 1024


@dataclass(slots=True)
class PacketRecord:
    """One delivered packet, as seen by the dataset pipeline."""

    send_time: float
    recv_time: float
    size: int
    receiver_id: int
    flow_id: int
    message_id: int
    message_size: int
    is_message_end: bool

    @property
    def delay(self) -> float:
        """End-to-end delay in seconds."""
        return self.recv_time - self.send_time


class TraceCollector:
    """Accumulates delivered packets into columnar numpy buffers."""

    __slots__ = (
        "_n",
        "_capacity",
        "_send_time",
        "_recv_time",
        "_size",
        "_receiver_id",
        "_flow_id",
        "_message_id",
        "_message_size",
        "_is_message_end",
    )

    def __init__(self):
        self._n = 0
        self._capacity = _INITIAL_CAPACITY
        self._send_time = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._recv_time = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._size = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._receiver_id = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._flow_id = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._message_id = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._message_size = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._is_message_end = np.empty(_INITIAL_CAPACITY, dtype=bool)

    def __len__(self) -> int:
        return self._n

    def _grow(self) -> None:
        capacity = self._capacity * 2
        for name in (
            "_send_time",
            "_recv_time",
            "_size",
            "_receiver_id",
            "_flow_id",
            "_message_id",
            "_message_size",
            "_is_message_end",
        ):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._n] = old
            setattr(self, name, grown)
        self._capacity = capacity

    def record(self, packet: Packet, recv_time: float) -> None:
        """Record a delivered packet (ignores packets marked untraced)."""
        if not packet.traced:
            return
        index = self._n
        if index == self._capacity:
            self._grow()
        self._send_time[index] = packet.send_time
        self._recv_time[index] = recv_time
        self._size[index] = packet.size
        self._receiver_id[index] = packet.dst
        self._flow_id[index] = packet.flow_id
        self._message_id[index] = packet.message_id
        self._message_size[index] = packet.message_size
        self._is_message_end[index] = packet.is_message_end
        self._n = index + 1

    def finalize(self) -> "Trace":
        """Sort by ``(send_time, message_id)`` and build the
        array-backed :class:`Trace` from trimmed column views.

        ``np.lexsort`` is stable, so ties beyond the sort key keep
        arrival order — the same total order the reference collector's
        ``sorted(records, key=...)`` produces.
        """
        n = self._n
        send_time = self._send_time[:n]
        message_id = self._message_id[:n]
        order = np.lexsort((message_id, send_time))
        return Trace(
            send_time=send_time[order],
            recv_time=self._recv_time[:n][order],
            size=self._size[:n][order],
            receiver_id=self._receiver_id[:n][order],
            flow_id=self._flow_id[:n][order],
            message_id=message_id[order],
            message_size=self._message_size[:n][order],
            is_message_end=self._is_message_end[:n][order],
        )


class Trace:
    """Array-backed packet trace.

    Columns (aligned numpy arrays of equal length):

    * ``send_time`` / ``recv_time`` — seconds.
    * ``size`` — bytes.
    * ``receiver_id`` — destination node id (the paper's "receiver ID",
      an IP-address proxy).
    * ``flow_id`` / ``message_id`` / ``message_size`` / ``is_message_end``.
    * ``mct`` — completion time of the packet's message (seconds),
      ``nan`` for packets whose message never completed (tail drop).
    """

    def __init__(self, **columns: np.ndarray):
        required = [
            "send_time",
            "recv_time",
            "size",
            "receiver_id",
            "flow_id",
            "message_id",
            "message_size",
            "is_message_end",
        ]
        lengths = set()
        for name in required:
            if name not in columns:
                raise ValueError(f"missing trace column {name!r}")
            lengths.add(len(columns[name]))
        if len(lengths) > 1:
            raise ValueError(f"trace columns have inconsistent lengths: {lengths}")
        self.send_time = np.asarray(columns["send_time"], dtype=np.float64)
        self.recv_time = np.asarray(columns["recv_time"], dtype=np.float64)
        self.size = np.asarray(columns["size"], dtype=np.int64)
        self.receiver_id = np.asarray(columns["receiver_id"], dtype=np.int64)
        self.flow_id = np.asarray(columns["flow_id"], dtype=np.int64)
        self.message_id = np.asarray(columns["message_id"], dtype=np.int64)
        self.message_size = np.asarray(columns["message_size"], dtype=np.int64)
        self.is_message_end = np.asarray(columns["is_message_end"], dtype=bool)
        self.mct = columns.get("mct")
        if self.mct is None:
            self.mct = self._compute_mct()
        else:
            self.mct = np.asarray(self.mct, dtype=np.float64)

    @classmethod
    def from_records(cls, records: list[PacketRecord]) -> "Trace":
        """Build a trace from a list of records (assumed pre-sorted)."""
        return cls(
            send_time=np.array([r.send_time for r in records], dtype=np.float64),
            recv_time=np.array([r.recv_time for r in records], dtype=np.float64),
            size=np.array([r.size for r in records], dtype=np.int64),
            receiver_id=np.array([r.receiver_id for r in records], dtype=np.int64),
            flow_id=np.array([r.flow_id for r in records], dtype=np.int64),
            message_id=np.array([r.message_id for r in records], dtype=np.int64),
            message_size=np.array([r.message_size for r in records], dtype=np.int64),
            is_message_end=np.array([r.is_message_end for r in records], dtype=bool),
        )

    def __len__(self) -> int:
        return int(self.send_time.size)

    @property
    def delay(self) -> np.ndarray:
        """Per-packet end-to-end delay in seconds."""
        return self.recv_time - self.send_time

    def _compute_mct(self) -> np.ndarray:
        """Message completion time per packet.

        The MCT of a message is the time from its first packet's send to
        its *last delivered* packet's receive — "the time until the final
        packet of a message is delivered" (§4).  Messages whose final
        packet was dropped get the completion time of their last
        delivered packet; this mirrors measuring MCT on the receiver-side
        trace.

        Vectorised: group by message id, reduce with exact float
        min/max, broadcast back — identical results to the per-packet
        loop it replaced (min/max introduce no rounding).
        """
        if len(self) == 0:
            return np.zeros(0, dtype=np.float64)
        _, inverse = np.unique(self.message_id, return_inverse=True)
        n_messages = int(inverse.max()) + 1
        starts = np.full(n_messages, np.inf, dtype=np.float64)
        ends = np.full(n_messages, -np.inf, dtype=np.float64)
        np.minimum.at(starts, inverse, self.send_time)
        np.maximum.at(ends, inverse, self.recv_time)
        return ends[inverse] - starts[inverse]

    def subset(self, mask: np.ndarray) -> "Trace":
        """Return a trace restricted to packets where ``mask`` is True."""
        return Trace(
            send_time=self.send_time[mask],
            recv_time=self.recv_time[mask],
            size=self.size[mask],
            receiver_id=self.receiver_id[mask],
            flow_id=self.flow_id[mask],
            message_id=self.message_id[mask],
            message_size=self.message_size[mask],
            is_message_end=self.is_message_end[mask],
            mct=self.mct[mask],
        )

    def save(self, path) -> None:
        """Serialize to an ``.npz`` file."""
        np.savez_compressed(
            path,
            send_time=self.send_time,
            recv_time=self.recv_time,
            size=self.size,
            receiver_id=self.receiver_id,
            flow_id=self.flow_id,
            message_id=self.message_id,
            message_size=self.message_size,
            is_message_end=self.is_message_end,
            mct=self.mct,
        )

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a trace previously stored with :meth:`save`."""
        with np.load(path) as data:
            return cls(**{key: data[key] for key in data.files})
