"""Golden tests: the netsim fast path changes no emitted byte.

The optimised stack (slotted event calendar, pre-booked link
departures, columnar trace collection, vectorised MCT) must produce
traces bit-identical to the pre-optimisation reference stack preserved
in :mod:`repro.netsim.reference` — for *every* registered scenario, at
smoke scale.  Any divergence means the fast path altered simulation
semantics and must not ship.

These tests are the enforcement of the fast path's contract: the one
corner it cannot reproduce (events coinciding with a
serialization-finish instant at exactly the same float — see the
:mod:`repro.netsim.link` docstring) never occurs in registered
scenarios, whose start times and arrivals are continuous random draws;
any new scenario is automatically covered by the parametrisation below.
"""

import numpy as np
import pytest

import repro.api  # noqa: F401 — registers the extension scenarios
from repro.api.registry import SCENARIOS
from repro.netsim import reference
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind, run_scenario

TRACE_COLUMNS = (
    "send_time",
    "recv_time",
    "size",
    "receiver_id",
    "flow_id",
    "message_id",
    "message_size",
    "is_message_end",
    "mct",
)


def assert_traces_bit_identical(expected, actual, context=""):
    for column in TRACE_COLUMNS:
        left = getattr(expected, column)
        right = getattr(actual, column)
        assert left.dtype == right.dtype, f"{context}{column}: dtype mismatch"
        assert np.array_equal(left, right), f"{context}{column}: values differ"


@pytest.mark.parametrize("name", sorted(SCENARIOS.names()))
def test_fast_path_bit_identical_to_reference(name):
    """Every registered scenario: reference stack == fast path, byte for
    byte (including the reference's loop-computed MCT against the
    vectorised one)."""
    config = SCENARIOS.build(name, scale="smoke", seed=5)
    with reference.legacy_path():
        baseline = run_scenario(config)
    fast = run_scenario(config)
    assert len(baseline) == len(fast) > 0
    assert_traces_bit_identical(baseline, fast, context=f"{name}: ")


@pytest.mark.parametrize("run_index", [0, 1])
def test_fast_path_bit_identical_across_run_indices(run_index):
    """Per-run derived seeds survive the fast path unchanged."""
    config = ScenarioConfig.smoke(ScenarioKind.CASE1, seed=11)
    with reference.legacy_path():
        baseline = run_scenario(config, run_index=run_index)
    fast = run_scenario(config, run_index=run_index)
    assert_traces_bit_identical(baseline, fast, context=f"run{run_index}: ")


def test_trace_independent_of_prior_scenarios():
    """Message-id regression: generating scenario B after scenario A
    yields the same trace as generating B without A (the message-id
    counter lives on the simulator, not in a process-global)."""
    config_a = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=3)
    config_b = ScenarioConfig.smoke(ScenarioKind.CASE1, seed=4)
    b_alone = run_scenario(config_b)
    run_scenario(config_a)  # interleave an unrelated simulation
    b_after_a = run_scenario(config_b)
    assert_traces_bit_identical(b_alone, b_after_a, context="B-after-A: ")
    assert b_alone.message_id.min() >= 0


def test_exact_time_delivery_tie_keeps_reference_order():
    """Two deliveries landing on the same node at *exactly* the same
    float time from different channels must tie-break like the
    reference stack (by serialization-finish instant, not by booking
    instant), so the downstream drop decision picks the same packet.

    Topology engineered for an exact tie: a->s (800 bps, 0.25 s prop)
    and b->s (800 bps, 0.75 s prop) both deliver at t=2.25 into the
    1-packet egress queue of the slow s->d link.
    """
    from repro.netsim.apps import PacketSink
    from repro.netsim.core import Simulator
    from repro.netsim.packet import Packet
    from repro.netsim.topology import Network
    from repro.netsim.trace import TraceCollector

    def build_and_run():
        if reference.fast_path_enabled():
            sim, collector = Simulator(), TraceCollector()
        else:
            sim = reference.ReferenceSimulator()
            collector = reference.ReferenceTraceCollector()
        net = Network(sim)
        a, b, s, d = (net.add_node(name) for name in "absd")
        net.add_link(a, s, rate_bps=800, propagation_delay=0.25, queue_packets=10)
        net.add_link(b, s, rate_bps=800, propagation_delay=0.75, queue_packets=10)
        net.add_link(s, d, rate_bps=80, propagation_delay=0.0, queue_packets=1)
        net.compute_routes()
        PacketSink(sim, d, collector).install_default()

        def send_from_a():
            # Two back-to-back 100 B packets: finishes at t=1.0 and t=2.0,
            # deliveries at t=1.25 and t=2.25.
            a.send(Packet(src=a.node_id, dst=d.node_id, size=100, flow_id=1))
            a.send(Packet(src=a.node_id, dst=d.node_id, size=100, flow_id=1, seq=1))

        def send_from_b():
            # One 50 B packet: finish t=1.5, delivery at exactly t=2.25.
            b.send(Packet(src=b.node_id, dst=d.node_id, size=50, flow_id=2))

        sim.schedule(0.0, send_from_a)
        sim.schedule(1.0, send_from_b)
        sim.run(until=60.0)
        return collector.finalize()

    with reference.legacy_path():
        baseline = build_and_run()
    fast = build_and_run()
    # The 1-packet queue forces a drop among the tied arrivals: both
    # stacks must drop the same one.
    assert_traces_bit_identical(baseline, fast, context="tie: ")
    assert len(fast) == 2


def test_legacy_path_flag_restored():
    """The legacy-path context manager is exception-safe."""
    assert reference.fast_path_enabled()
    with pytest.raises(RuntimeError):
        with reference.legacy_path():
            assert not reference.fast_path_enabled()
            raise RuntimeError("boom")
    assert reference.fast_path_enabled()
