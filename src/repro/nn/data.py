"""Datasets and mini-batch loading."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "DataLoader"]


class ArrayDataset:
    """A dataset backed by aligned numpy arrays.

    ``dataset[i]`` returns a tuple with the ``i``-th row of every array.
    Arrays may have arbitrary trailing dimensions but must share their
    first (sample) dimension.
    """

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("ArrayDataset needs at least one array")
        lengths = {len(array) for array in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays have inconsistent lengths: {lengths}")
        self.arrays = tuple(np.asarray(array) for array in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index):
        return tuple(array[index] for array in self.arrays)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """A new dataset containing only ``indices`` (fancy indexing)."""
        return ArrayDataset(*(array[indices] for array in self.arrays))

    def split(self, fraction: float, rng: np.random.Generator | None = None):
        """Split into ``(first, second)`` with ``fraction`` of samples first.

        Shuffles when an RNG is provided; otherwise splits by position
        (useful for temporal splits where test data must come later).
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        count = len(self)
        cut = int(round(count * fraction))
        cut = min(max(cut, 1), count - 1)
        indices = np.arange(count)
        if rng is not None:
            rng.shuffle(indices)
        return self.subset(indices[:cut]), self.subset(indices[cut:])


class DataLoader:
    """Iterate over mini-batches of an :class:`ArrayDataset`.

    Shuffling uses the provided RNG so epochs are reproducible.  The
    last short batch is kept (dropping data would bias small datasets).

    With ``reuse_buffers=True`` the loader materialises each batch via
    ``numpy.take`` into one preallocated buffer per dataset array (the
    training hot loop's zero-allocation path) instead of allocating a
    fresh fancy-indexed copy per batch.  Batch *values* are identical;
    the arrays yielded for one batch are overwritten by the next, so the
    flag is only safe when batches are consumed before advancing — true
    for the :class:`~repro.nn.trainer.Trainer` loops — and a loader must
    not be iterated from two places at once.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
        reuse_buffers: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if shuffle and rng is None:
            raise ValueError("shuffle=True requires an explicit rng for reproducibility")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng
        self.drop_last = drop_last
        self.reuse_buffers = reuse_buffers
        self._buffers: tuple[np.ndarray, ...] | None = None

    def __len__(self) -> int:
        count = len(self.dataset)
        if self.drop_last:
            return count // self.batch_size
        return (count + self.batch_size - 1) // self.batch_size

    def _batch_buffers(self) -> tuple[np.ndarray, ...]:
        if self._buffers is None:
            self._buffers = tuple(
                np.empty((self.batch_size,) + array.shape[1:], dtype=array.dtype)
                for array in self.dataset.arrays
            )
        return self._buffers

    def __iter__(self) -> Iterator[tuple]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(indices)
        if not self.reuse_buffers:
            for start in range(0, len(indices), self.batch_size):
                batch = indices[start : start + self.batch_size]
                if self.drop_last and len(batch) < self.batch_size:
                    return
                yield self.dataset[batch]
            return
        buffers = self._batch_buffers()
        arrays = self.dataset.arrays
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start : start + self.batch_size]
            count = len(batch)
            if self.drop_last and count < self.batch_size:
                return
            yield tuple(
                np.take(array, batch, axis=0, out=buffer[:count])
                for array, buffer in zip(arrays, buffers)
            )
