#!/usr/bin/env python
"""New-task fine-tuning: message completion time (MCT) prediction.

The paper's second task (§4), through ``repro.api``: swap the delay
decoder for an MCT decoder that consumes the encoded packet history
*plus the message size*, and fine-tune on the case-1 environment.  The
pre-trained encoder transfers to the new task; naive baselines do not.
The fine-tuned model is then served through the batched
:class:`Predictor`.

Run::

    python examples/mct_prediction.py
    python examples/mct_prediction.py --scale small
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import (
    Experiment,
    ExperimentSpec,
    FinetuneMode,
    evaluate_baselines,
    train_mct_from_scratch,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    args = parser.parse_args()

    exp = Experiment(ExperimentSpec(scenario="case1", scale=args.scale))
    scale = exp.scale

    print("== Pre-training (delay task) and preparing the case-1 dataset")
    pre = exp.pretrained()
    case1 = exp.bundle().small_fraction(scale.fine_fraction)

    print("== Fine-tuning to the NEW task: message completion times")
    finetuned = exp.finetuned(
        task="mct", mode=FinetuneMode.DECODER_ONLY, fraction=scale.fine_fraction
    )
    print(f"   pre-trained encoder + new MCT decoder: log-MSE {finetuned.test_mse:.4f}")

    print("== From-scratch comparison (fresh encoder, same decoder)")
    scratch = train_mct_from_scratch(
        scale.model_config(), pre.pipeline, case1, settings=scale.finetune_settings
    )
    print(f"   from scratch:                           log-MSE {scratch.test_mse:.4f}")

    print("== Naive baselines (Table 1: last observed / EWMA)")
    baselines = evaluate_baselines(case1.test)
    for name, row in baselines.items():
        print(f"   {name:14s}: log-MSE {row['mct_log_mse']:.4f}")

    print("== Sample predictions via the batched Predictor (milliseconds)")
    predictor = exp.predictor(task="mct", fraction=scale.fine_fraction)
    test = case1.test.with_completed_messages_only()
    sample = test.subset(np.arange(min(5, len(test))))
    log_predictions = predictor.predict_dataset(sample)
    for log_prediction, actual, size in zip(
        log_predictions, sample.mct_target, sample.message_size
    ):
        print(
            f"   message of {int(size):7d} B: predicted MCT "
            f"{np.exp(log_prediction) * 1e3:8.1f} ms   actual {actual * 1e3:8.1f} ms"
        )


if __name__ == "__main__":
    main()
