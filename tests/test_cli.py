"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scenario == "pretrain"
        assert args.scale == "smoke"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "bogus"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["--version"])
        assert exit_info.value.code == 0


class TestNewParser:
    def test_registered_scenarios_accepted(self):
        args = build_parser().parse_args(["simulate", "--scenario", "bursty_cross"])
        assert args.scenario == "bursty_cross"

    def test_unknown_scale_exits_with_code_2(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["simulate", "--scale", "enormous"])
        assert exit_info.value.code == 2
        # argparse lists the valid choices in the error message.
        assert "smoke" in capsys.readouterr().err

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.table == "2"
        assert not args.no_cache


class TestApiCommands:
    def test_run_table2_cached_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "run", "--table", "2", "--scale", "smoke", "--epochs", "1",
            "--cache-dir", cache,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "pretrained_full" in out
        # The second invocation is served from the artifact store.
        assert main(argv) == 0
        assert "Table 2" in capsys.readouterr().out
        from repro.api import ArtifactStore

        summary = ArtifactStore(cache).summary()
        assert summary["bundles"]["count"] >= 1
        assert summary["checkpoints"]["count"] >= 1

    def test_predict_serves_batches(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main([
            "predict", "--scale", "smoke", "--scenario", "pretrain",
            "--cache-dir", cache, "--limit", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out
        assert "test MSE" in out

    def test_predict_from_checkpoint(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--scale", "smoke", "--epochs", "1",
            "--cache-dir", cache, "--output", str(checkpoint),
        ]) == 0
        assert main([
            "predict", "--scale", "smoke", "--scenario", "pretrain",
            "--checkpoint", str(checkpoint), "--cache-dir", cache,
        ]) == 0
        assert "test MSE" in capsys.readouterr().out

    def test_predict_missing_checkpoint_is_clean_error(self, tmp_path, capsys):
        assert main([
            "predict", "--scale", "smoke", "--checkpoint",
            str(tmp_path / "nope.npz"), "--no-cache",
        ]) == 2
        assert "repro: error" in capsys.readouterr().err

    def test_predict_metadata_less_checkpoint_exits_2(self, tmp_path, capsys):
        # A checkpoint without config metadata used to escape as a raw
        # KeyError traceback; it must exit 2 with a clean message.
        import numpy as np

        bare = tmp_path / "bare.npz"
        np.savez(bare, weight=np.zeros((2, 2)))
        assert main([
            "predict", "--scale", "smoke", "--checkpoint", str(bare), "--no-cache",
        ]) == 2
        err = capsys.readouterr().err
        assert "repro: error" in err
        assert "metadata" in err
        assert "Traceback" not in err

    def test_predict_resolves_store_refs(self, tmp_path, capsys):
        import shutil

        cache = tmp_path / "cache"
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--scale", "smoke", "--epochs", "1",
            "--cache-dir", str(cache), "--output", str(checkpoint),
        ]) == 0
        capsys.readouterr()
        from repro.api import ArtifactStore

        target = ArtifactStore(cache).path("checkpoints", "warmkey")
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(checkpoint, target)
        assert main([
            "predict", "--scale", "smoke", "--scenario", "pretrain",
            "--checkpoint", "store:warmkey", "--cache-dir", str(cache),
        ]) == 0
        assert "test MSE" in capsys.readouterr().out

    def test_cache_list_and_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["cache", "--cache-dir", cache]) == 0
        assert "artifact store" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_scenarios_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("pretrain", "case1", "case2", "bursty_cross"):
            assert name in out

    def test_stages_lists_registry(self, capsys):
        assert main(["stages"]) == 0
        out = capsys.readouterr().out
        for name in ("traces", "pretrain", "evaluate", "federated_pretrain",
                     "drift_monitor", "trace_stats"):
            assert name in out
        # Table-only stages are not sweepable and stay unlisted.
        assert "scratch" not in out


class TestSweep:
    def test_dry_run_prints_deduplicated_plan(self, tmp_path, capsys):
        assert main([
            "sweep", "--scenarios", "pretrain,case1", "--seeds", "0",
            "--cache-dir", str(tmp_path / "cache"), "--dry-run",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 spec(s)" in out
        # The shared pre-training environment plans exactly one task.
        pretrain_tasks = [
            line for line in out.splitlines() if line.strip().startswith("pretrain:")
        ]
        assert len(pretrain_tasks) == 1
        assert "finetune:" in out

    def test_sweep_runs_and_rerun_hits_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "sweep", "--scenarios", "pretrain,case1", "--seeds", "0",
            "--epochs", "1", "--cache-dir", cache,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 failed" in first
        assert "manifest:" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        # Every task of the re-run is served from the artifact store.
        assert "8/8 task(s) done, 8 cache hit(s)" in second

    def test_sweep_spec_file(self, tmp_path, capsys):
        import json as json_module

        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json_module.dumps({
            "specs": [{
                "scenario": "pretrain", "scale": "smoke",
                "pretrain": {"epochs": 1, "batch_size": 32, "patience": None},
            }],
        }))
        assert main([
            "sweep", "--spec-file", str(spec_file), "--stages", "traces,bundle",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        assert "2/2 task(s) done" in capsys.readouterr().out

    def test_sweep_unknown_scenario_is_clean_error(self, tmp_path, capsys):
        assert main([
            "sweep", "--scenarios", "bogus", "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sweep_unknown_stage_is_clean_error(self, tmp_path, capsys):
        assert main([
            "sweep", "--stages", "simulate", "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown stages" in err
        # The message lists the registered sweep stages, extensions included.
        for name in ("traces", "pretrain", "federated_pretrain", "drift_monitor"):
            assert name in err

    def test_sweep_registered_extension_stage_runs_and_hits_cache(
        self, tmp_path, capsys
    ):
        argv = [
            "sweep", "--scenarios", "pretrain", "--stages", "federated_pretrain",
            "--epochs", "1", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "1/1 task(s) done, 0 cache hit(s)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "1/1 task(s) done, 1 cache hit(s)" in capsys.readouterr().out

    def test_parallel_no_cache_rejected(self, capsys):
        assert main(["sweep", "--no-cache", "--workers", "2"]) == 2
        assert "artifact store" in capsys.readouterr().err


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "model.npz"])
        assert args.checkpoints == ["model.npz"]
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.precision == "float64"
        assert args.lru_size == 4
        assert args.max_batch_windows == 64
        assert args.max_wait_us == 2000.0

    def test_parser_accepts_multiple_models(self):
        args = build_parser().parse_args(["serve", "a.npz", "b.npz", "--port", "0"])
        assert args.checkpoints == ["a.npz", "b.npz"]

    def test_requires_at_least_one_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_missing_checkpoint_exits_2_before_binding(self, tmp_path, capsys):
        assert main([
            "serve", str(tmp_path / "nope.npz"), "--no-cache", "--port", "0",
        ]) == 2
        assert "repro: error" in capsys.readouterr().err

    def test_metadata_less_checkpoint_exits_2_before_binding(self, tmp_path, capsys):
        import numpy as np

        bare = tmp_path / "bare.npz"
        np.savez(bare, weight=np.zeros((2, 2)))
        assert main(["serve", str(bare), "--no-cache", "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert "repro: error" in err
        assert "metadata" in err


class TestCommands:
    def test_simulate_prints_report(self, capsys):
        assert main(["simulate", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "delays (ms)" in out

    def test_simulate_saves_trace(self, tmp_path, capsys):
        output = tmp_path / "trace.npz"
        assert main(["simulate", "--scale", "smoke", "--output", str(output)]) == 0
        assert output.exists()
        from repro.netsim.trace import Trace

        assert len(Trace.load(output)) > 0

    def test_report_prints_dataset(self, capsys):
        assert main(["report", "--scale", "smoke"]) == 0
        assert "windows" in capsys.readouterr().out

    def test_pretrain_then_evaluate_roundtrip(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        assert main([
            "pretrain", "--scale", "smoke", "--epochs", "1", "--output", str(checkpoint),
        ]) == 0
        assert checkpoint.exists()
        assert main([
            "evaluate", str(checkpoint), "--scale", "smoke", "--scenario", "case1",
        ]) == 0
        out = capsys.readouterr().out
        assert "checkpoint delay MSE" in out
        assert "baseline last_observed" in out


class TestTrace:
    def _manifest(self, tmp_path):
        """A minimal manifest carrying one campaign span tree."""
        manifest = {
            "campaign_id": "deadbeef",
            "observability": {
                "spans": [
                    {
                        "name": "campaign:deadbeef",
                        "start_us": 1_000.0,
                        "dur_us": 5_000.0,
                        "attrs": {},
                        "children": [
                            {
                                "name": "task:abc",
                                "start_us": 1_500.0,
                                "dur_us": 2_000.0,
                                "attrs": {"worker": 3},
                                "children": [],
                                "events": [],
                            }
                        ],
                        "events": [],
                    }
                ],
                "metrics": {},
            },
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(manifest))
        return path

    def test_trace_exports_chrome_json(self, tmp_path, capsys):
        path = self._manifest(tmp_path)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        output = tmp_path / "manifest.trace.json"
        assert str(output) in out
        trace = json.loads(output.read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert names == {"campaign:deadbeef", "task:abc"}

    def test_trace_jsonl_sidecar(self, tmp_path):
        path = self._manifest(tmp_path)
        output = tmp_path / "out.trace.json"
        assert main(["trace", str(path), "--output", str(output), "--jsonl"]) == 0
        lines = [
            json.loads(line)
            for line in (tmp_path / "out.trace.spans.jsonl").read_text().splitlines()
        ]
        assert [(row["name"], row["depth"]) for row in lines] == [
            ("campaign:deadbeef", 0),
            ("task:abc", 1),
        ]

    def test_trace_without_spans_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"campaign_id": "x"}))
        assert main(["trace", str(path)]) == 2
        assert "no observability spans" in capsys.readouterr().err

    def test_trace_missing_manifest_is_clean_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 2
        assert "cannot read manifest" in capsys.readouterr().err


class TestTop:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.url == "http://127.0.0.1:8080"
        assert args.interval == 2.0
        assert not args.once

    def test_unreachable_server_is_clean_error(self, capsys):
        assert main(["top", "--url", "http://127.0.0.1:1", "--once"]) == 2
        assert "cannot read" in capsys.readouterr().err
