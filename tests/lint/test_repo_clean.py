"""The repo itself must lint clean — this is the acceptance gate.

`repro lint` at HEAD exits 0: every finding in the tree is either
fixed, carries a justified inline suppression, or sits in the committed
`lint-baseline.json`.  Running it inside tier-1 makes the linter a test
any PR must keep green, exactly like the golden bit-identity gates.
"""

from repro.lint import (
    LINT_RULES,
    check_fingerprints,
    default_root,
    discover_baseline,
    discover_fingerprints,
    run_lint,
)


def test_repo_lints_clean_at_head():
    report = run_lint()  # default root + discovered committed baseline
    details = "\n".join(f.format() for f in report.findings)
    assert report.exit_code == 0, f"unbaselined lint findings:\n{details}"


def test_committed_baseline_has_no_stale_entries():
    # A stale entry means code was fixed but the grandfather clause
    # lingers; keep the committed baseline tight with --baseline-update.
    report = run_lint()
    assert report.stale_baseline == [], report.stale_baseline


def test_every_suppression_in_tree_is_justified():
    # Structural guarantee (a bare allow is a pragma finding), restated
    # here as a direct assertion over every suppression in the package.
    report = run_lint()
    for finding, excuse in report.suppressed:
        assert excuse.justification.strip(), finding.format()


def test_the_required_rules_are_registered():
    names = set(LINT_RULES.names())
    assert {
        "determinism", "stage-purity", "hot-loop-alloc",
        "async-blocking", "lock-discipline",
        "key-taint", "stage-fingerprint",
    } <= names


def test_committed_fingerprints_match_head():
    # The pin file is part of the tree's identity: any stage-body or
    # callee-closure edit must land together with a re-pin (and a
    # Stage.version bump when behaviour changed), never on its own.
    findings, pin_path, current = check_fingerprints([default_root()])
    details = "\n".join(f.format() for f in findings)
    assert findings == [], f"stage fingerprint drift:\n{details}"
    assert pin_path is not None
    assert pin_path.name == "stage-fingerprints.json"
    assert len(current) >= 10  # every registered stage is pinned


def test_fingerprint_discovery_finds_the_committed_file():
    pins = discover_fingerprints([default_root()])
    assert pins is not None
    assert pins.name == "stage-fingerprints.json"


def test_baseline_discovery_finds_the_committed_file():
    baseline = discover_baseline([default_root()])
    assert baseline is not None
    assert baseline.name == "lint-baseline.json"
