"""Known-bad interprocedural flows into cache keys."""

import os
import time

from api.hashing import stable_hash


def _stamp():
    return time.time()


def stamped_key(spec):
    salt = _stamp()
    return stable_hash({"spec": spec, "salt": salt})


def env_key(spec):
    mode = os.environ.get("REPRO_MODE", "fast")
    return _digest({"spec": spec, "mode": mode})


def _digest(payload):
    return stable_hash(payload)


def order_key(items):
    unique = set(items)
    return stable_hash(list(unique))
