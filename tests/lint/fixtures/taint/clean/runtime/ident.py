"""Fixture helper module: a process-identity source behind a function."""

import socket


def host_tag():
    return socket.gethostname()
