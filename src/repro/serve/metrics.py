"""Serving telemetry: throughput, batch occupancy, tail latency.

One :class:`ServingMetrics` instance is shared by the whole serving
runtime — the HTTP front records request latencies, the
:class:`~repro.serve.batcher.MicroBatcher` records flush sizes — and a
thread-safe :meth:`snapshot` backs both the ``/metrics`` endpoint and
the serving benchmark's reported numbers.

Latencies live in a bounded ring (the most recent
:data:`LATENCY_WINDOW` requests), so percentiles track current
behaviour instead of averaging over the process lifetime; counters are
monotone for the lifetime rates.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

__all__ = ["ServingMetrics", "LATENCY_WINDOW", "OCCUPANCY_BUCKETS"]

#: Ring size for the latency percentile window.
LATENCY_WINDOW = 8192

#: Upper edges (inclusive) of the batch-occupancy histogram, in windows
#: per fused forward pass.  The last bucket is open-ended.
OCCUPANCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

_PERCENTILES = (50.0, 95.0, 99.0)


class ServingMetrics:
    """Thread-safe counters and reservoirs for the serving runtime."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self.requests_total = 0
        self.predictions_total = 0
        self.batches_total = 0
        self.errors_total = 0
        self._occupancy = [0] * (len(OCCUPANCY_BUCKETS) + 1)
        self._latencies = deque(maxlen=LATENCY_WINDOW)

    # -- recording ----------------------------------------------------------------

    def record_batch(self, n_requests: int, n_windows: int) -> None:
        """One coalesced flush: ``n_requests`` callers, ``n_windows`` rows."""
        bucket = len(OCCUPANCY_BUCKETS)
        for index, edge in enumerate(OCCUPANCY_BUCKETS):
            if n_windows <= edge:
                bucket = index
                break
        with self._lock:
            self.batches_total += 1
            self.predictions_total += n_windows
            self._occupancy[bucket] += 1

    def record_request(self, latency_s: float, error: bool = False) -> None:
        """One served ``/predict`` request (end-to-end seconds)."""
        with self._lock:
            self.requests_total += 1
            if error:
                self.errors_total += 1
            else:
                self._latencies.append(float(latency_s))

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready view of every metric (the ``/metrics`` payload)."""
        with self._lock:
            elapsed = max(self._clock() - self._started, 1e-9)
            latencies = np.asarray(self._latencies, dtype=np.float64)
            occupancy = list(self._occupancy)
            batches = self.batches_total
            predictions = self.predictions_total
            snapshot = {
                "uptime_s": elapsed,
                "requests_total": self.requests_total,
                "predictions_total": predictions,
                "batches_total": batches,
                "errors_total": self.errors_total,
                "predictions_per_s": predictions / elapsed,
                "requests_per_s": self.requests_total / elapsed,
            }
        snapshot["mean_batch_windows"] = predictions / batches if batches else 0.0
        labels = [f"<={edge}" for edge in OCCUPANCY_BUCKETS] + [
            f">{OCCUPANCY_BUCKETS[-1]}"
        ]
        snapshot["batch_occupancy"] = dict(zip(labels, occupancy))
        if latencies.size:
            p50, p95, p99 = np.percentile(latencies, _PERCENTILES)
            snapshot["latency_ms"] = {
                "p50": p50 * 1e3,
                "p95": p95 * 1e3,
                "p99": p99 * 1e3,
                "max": float(latencies.max()) * 1e3,
                "window": int(latencies.size),
            }
        else:
            snapshot["latency_ms"] = {"window": 0}
        return snapshot
