"""Extra scenarios registered through the public extension point.

These two workloads go beyond the paper's Fig. 4 setups and exist to
prove that new environments plug in via :func:`@register_scenario
<repro.api.registry.register_scenario>` without touching
:mod:`repro.netsim.scenarios`:

* **bursty_cross** — case-1 topology whose TCP cross-traffic arrives as
  many clustered flows with widely jittered start times, so congestion
  comes and goes in bursts instead of a steady background load.
* **asymmetric_bottleneck** — case-2 topology where the receiver access
  links are much slower than the shared bottleneck, moving the dominant
  congestion point behind the fan-out and making per-receiver delays
  strongly asymmetric.
"""

from __future__ import annotations

from dataclasses import replace

from repro.api.registry import base_config, register_scenario
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind
from repro.netsim.units import mbps, milliseconds

__all__ = ["build_bursty_cross", "build_asymmetric_bottleneck"]


@register_scenario(
    "bursty_cross",
    description="case-1 topology with clustered, heavily jittered TCP cross-traffic bursts",
)
def build_bursty_cross(scale: str, seed: int) -> ScenarioConfig:
    base = base_config(ScenarioKind.CASE1, scale, seed)
    return replace(
        base,
        n_cross_flows=base.n_cross_flows * 3,
        cross_traffic_bps=base.cross_traffic_bps * 1.5,
        # Flows keep starting throughout the first half of the run, so
        # the bottleneck alternates between calm and overloaded phases.
        start_jitter=base.duration * 0.5,
    )


@register_scenario(
    "asymmetric_bottleneck",
    description="case-2 fan-out whose slow receiver links dominate the shared bottleneck",
)
def build_asymmetric_bottleneck(scale: str, seed: int) -> ScenarioConfig:
    base = base_config(ScenarioKind.CASE2, scale, seed)
    delays = tuple(
        milliseconds(1 + 6 * index) for index in range(base.n_receivers)
    )
    return replace(
        base,
        # Receiver links run well below the bottleneck rate: the shared
        # queue drains easily but the per-receiver queues saturate at
        # very different levels.
        receiver_rate_bps=max(base.bottleneck_rate_bps * 0.4, mbps(2)),
        receiver_queue_packets=max(base.receiver_queue_packets // 2, 20),
        receiver_delays=delays,
    )
