"""Known-bad hot-loop fixture: allocations inside a hot region."""

# repro: hot

import numpy as np


def step(grad: np.ndarray, state: np.ndarray) -> np.ndarray:
    buffer = np.zeros(grad.shape)
    np.sqrt(state)
    update = grad * 0.5
    buffer[:] = update
    return buffer
