#!/usr/bin/env python
"""Case 2: generalizing to a larger topology (Table 3).

The bottleneck now fans out to several receivers over paths with
different propagation delays and different cross-traffic levels.  The
example shows (i) the per-receiver delay structure in the raw traces,
(ii) that fine-tuning a pre-trained NTT adapts to the new topology, and
(iii) that receiver IDs are what lets it tell the paths apart.

Run::

    python examples/larger_topology.py
    python examples/larger_topology.py --scale small
"""

from __future__ import annotations

import argparse
import copy

import numpy as np

from repro.core.features import FeatureSpec
from repro.core.finetune import FinetuneMode, finetune_delay
from repro.core.pipeline import ExperimentContext, get_scale
from repro.netsim.scenarios import ScenarioKind, build_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    args = parser.parse_args()

    scale = get_scale(args.scale)
    context = ExperimentContext(scale)

    print("== Raw case-2 trace: per-receiver delay structure")
    handle = build_scenario(scale.scenario(ScenarioKind.CASE2))
    trace = handle.run()
    for receiver in sorted(set(trace.receiver_id.tolist())):
        delays = trace.delay[trace.receiver_id == receiver] * 1e3
        print(
            f"   receiver {receiver}: {delays.size:6d} packets, "
            f"mean {delays.mean():6.2f} ms, p99 {np.percentile(delays, 99):6.2f} ms"
        )

    print("== Pre-training on the simple topology, fine-tuning on case 2")
    pre = context.pretrained()
    case2 = context.bundle(ScenarioKind.CASE2)
    finetuned = finetune_delay(
        copy.deepcopy(pre.model), pre.pipeline, case2,
        settings=scale.finetune_settings, mode=FinetuneMode.FULL,
    )
    print(f"   fine-tuned delay MSE: {finetuned.test_mse_scaled:.4f} x1e-3 s^2")

    print("== Ablation: the same pipeline without receiver IDs")
    from repro.core.pretrain import pretrain

    no_rx = pretrain(
        scale.model_config(features=FeatureSpec.without_receiver()),
        context.bundle(ScenarioKind.PRETRAIN),
        settings=scale.pretrain_settings,
    )
    no_rx_finetuned = finetune_delay(
        no_rx.model, no_rx.pipeline, case2,
        settings=scale.finetune_settings, mode=FinetuneMode.FULL,
    )
    print(f"   without addressing:   {no_rx_finetuned.test_mse_scaled:.4f} x1e-3 s^2")
    print(
        "   -> receiver identity matters once paths differ "
        "(paper: 2.8 vs 0.004 x1e-3)"
    )


if __name__ == "__main__":
    main()
