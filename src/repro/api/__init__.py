"""``repro.api`` — the package's single public surface.

Everything an experiment needs lives behind four ideas:

* :class:`ExperimentSpec` — a declarative, hashable description of an
  experiment (scenario + scale + seed + overrides);
* :data:`SCENARIOS` / :func:`register_scenario` — the pluggable scenario
  registry (new topologies/workloads register themselves; core code
  never changes);
* :data:`STAGE_REGISTRY` / :func:`register_stage` — the pluggable
  pipeline-stage registry: registered stages gain content-addressed
  caching, worker-pool fan-out, campaign manifests and the
  ``repro sweep --stages`` CLI for free;
* :class:`ArtifactStore` — the content-addressed on-disk cache that
  turns repeated runs into disk reads;
* :class:`Experiment` / :class:`Predictor` — the runner and the batched
  serving facade built on top.

Quickstart::

    from repro.api import Experiment, ExperimentSpec

    exp = Experiment(ExperimentSpec(scenario="case1", scale="smoke"))
    pre = exp.pretrained()              # cached after the first run
    print(pre.test_mse_seconds2)
    predictor = exp.predictor()         # batched delay predictions
    test = exp.bundle().test
    delays = predictor.predict(test.features, test.receiver)

The classic building blocks (scenario configs, table runners, training
helpers, analysis and extensions) are re-exported so downstream code —
the bundled examples included — imports only ``repro.api``.
"""

from repro.analysis.attention import attention_summary
from repro.analysis.reports import dataset_report, trace_report
from repro.core.aggregation import AggregationSpec
from repro.core.baselines import evaluate_baselines
from repro.core.evaluation import (
    evaluate_delay,
    evaluate_mct,
    predict_delay,
    predict_mct,
)
from repro.core.features import FeaturePipeline, FeatureSpec
from repro.core.finetune import (
    FinetuneMode,
    FinetuneResult,
    finetune_delay,
    finetune_mct,
    train_delay_from_scratch,
    train_mct_from_scratch,
)
from repro.core.model import NTT, NTTConfig, NTTForDelay, NTTForMCT
from repro.core.pipeline import (
    ExperimentContext,
    ExperimentScale,
    format_rows,
    get_scale,
    run_table1,
    run_table2,
    run_table3,
)
from repro.core.pretrain import PretrainResult, TrainSettings, pretrain
from repro.datasets.generation import DatasetBundle, generate_dataset
from repro.datasets.windows import WindowConfig, WindowDataset
from repro.extensions.continual import DriftMonitor
from repro.extensions.federated import FederatedTrainer
from repro.netsim.scenarios import (
    ScenarioConfig,
    ScenarioKind,
    build_scenario,
    generate_traces,
    run_scenario,
)
from repro.nn.serialize import load_checkpoint, save_checkpoint

from repro.api.experiment import Experiment
from repro.api.hashing import stable_hash
from repro.api.predictor import Predictor
from repro.api.registry import SCENARIOS, ScenarioRegistry, register_scenario
from repro.api.spec import ExperimentSpec
from repro.api.stages import (
    STAGE_REGISTRY,
    Stage,
    StageRegistry,
    inputs_by_stage,
    register_stage,
)
from repro.api.store import ArtifactStore

# Importing the module registers the beyond-the-paper scenarios.
from repro.api import scenarios as _extra_scenarios  # noqa: F401

# Importing the module registers the built-in pipeline stages, so the
# re-exported STAGE_REGISTRY is complete for repro.api users (extension
# stages already registered via the repro.extensions imports above).
from repro.runtime import stages as _builtin_stages  # noqa: F401

__all__ = [
    # the new facade
    "Experiment",
    "ExperimentSpec",
    "Predictor",
    "ArtifactStore",
    "ScenarioRegistry",
    "SCENARIOS",
    "register_scenario",
    "Stage",
    "StageRegistry",
    "STAGE_REGISTRY",
    "register_stage",
    "inputs_by_stage",
    "stable_hash",
    # scales and runners
    "ExperimentContext",
    "ExperimentScale",
    "get_scale",
    "run_table1",
    "run_table2",
    "run_table3",
    "format_rows",
    # scenarios and datasets
    "ScenarioConfig",
    "ScenarioKind",
    "build_scenario",
    "run_scenario",
    "generate_traces",
    "generate_dataset",
    "DatasetBundle",
    "WindowConfig",
    "WindowDataset",
    # models and training
    "NTT",
    "NTTConfig",
    "NTTForDelay",
    "NTTForMCT",
    "FeatureSpec",
    "FeaturePipeline",
    "AggregationSpec",
    "TrainSettings",
    "PretrainResult",
    "pretrain",
    "FinetuneMode",
    "FinetuneResult",
    "finetune_delay",
    "finetune_mct",
    "train_delay_from_scratch",
    "train_mct_from_scratch",
    # evaluation and analysis
    "evaluate_delay",
    "evaluate_mct",
    "evaluate_baselines",
    "predict_delay",
    "predict_mct",
    "attention_summary",
    "dataset_report",
    "trace_report",
    # persistence
    "save_checkpoint",
    "load_checkpoint",
    # extensions
    "DriftMonitor",
    "FederatedTrainer",
]
