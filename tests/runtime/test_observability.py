"""Observability through the campaign engine.

A 2-worker campaign must tell the same telemetry story as the serial
one: identical merged counter totals, a span tree covering every
executed task, and a manifest whose timestamps come from one wall
stamp plus monotonic offsets.  The exported Chrome trace is validated
against the trace-event schema field-for-field.
"""

import datetime
import json
import warnings

import pytest

import repro.obs as obs
from repro.api import ArtifactStore
from repro.runtime import CampaignEngine, expand_grid, plan_campaign

#: traces + bundle exercise the netsim instrumentation without paying
#: for training; every task executes (fresh stores, no cache hits).
STAGES = ("traces", "bundle")


def _specs():
    return expand_grid(scenarios=["pretrain"], scales=["smoke"], seeds=[0, 1])


@pytest.fixture(scope="module")
def observed_pair(tmp_path_factory):
    """The same campaign run serially and on a 2-worker pool."""
    outcomes = {}
    for label, workers in (("serial", 1), ("pool", 2)):
        obs.reset()
        store = ArtifactStore(tmp_path_factory.mktemp(label) / "cache")
        plan = plan_campaign(_specs(), stages=STAGES)
        result = CampaignEngine(store=store, workers=workers).run(plan)
        assert not result.failed_tasks(), result.failed_tasks()
        outcomes[label] = result
    obs.reset()
    return outcomes


def _counters(manifest) -> dict:
    return {
        key: entry["value"]
        for key, entry in manifest["observability"]["metrics"]["counters"].items()
    }


def _task_spans(manifest) -> dict:
    """Task-level spans from the campaign root, keyed by task id."""
    (root,) = manifest["observability"]["spans"]
    spans = {}
    for span in root["children"]:
        if span["name"].startswith("task:"):
            spans[span["name"][len("task:"):]] = span
    return spans


class TestTimestamps:
    def test_started_at_is_iso8601_utc(self, observed_pair):
        for result in observed_pair.values():
            stamp = datetime.datetime.fromisoformat(result.manifest["started_at"])
            assert stamp.tzinfo is not None
            assert abs(stamp.timestamp() - result.manifest["created_unix"]) < 5.0

    def test_task_offsets_are_monotonic_within_the_run(self, observed_pair):
        for result in observed_pair.values():
            wall = result.manifest["wall_time_s"]
            for row in result.manifest["tasks"]:
                assert 0.0 <= row["started_offset_s"] <= row["ended_offset_s"]
                assert row["ended_offset_s"] <= wall + 0.25
                span = row["ended_offset_s"] - row["started_offset_s"]
                assert span >= row["wall_time_s"] - 0.25  # offsets bracket the work


class TestSpanCoverage:
    def test_every_executed_task_has_a_span(self, observed_pair):
        for label, result in observed_pair.items():
            executed = {
                row["id"]
                for row in result.manifest["tasks"]
                if row["status"] == "done"
            }
            spans = _task_spans(result.manifest)
            assert set(spans) == executed, label

    def test_task_spans_carry_stage_status_and_worker(self, observed_pair):
        for result in observed_pair.values():
            for task_id, span in _task_spans(result.manifest).items():
                attrs = span["attrs"]
                assert attrs["task_id"] == task_id
                assert attrs["status"] == "done"
                assert isinstance(attrs["worker"], int)
                assert span["dur_us"] >= 0

    def test_stage_work_nests_inside_task_spans(self, observed_pair):
        """netsim runs record spans inside whichever task ran them."""
        for result in observed_pair.values():
            spans = _task_spans(result.manifest)
            nested = [
                child["name"]
                for span in spans.values()
                for child in span.get("children", ())
            ]
            assert "netsim.run" in nested

    def test_pool_uses_multiple_worker_lanes(self, observed_pair):
        workers = {
            span["attrs"]["worker"]
            for span in _task_spans(observed_pair["pool"].manifest).values()
        }
        assert len(workers) >= 2


class TestMergedMetrics:
    def test_pool_counters_match_serial(self, observed_pair):
        serial = _counters(observed_pair["serial"].manifest)
        pool = _counters(observed_pair["pool"].manifest)
        assert serial, "serial campaign recorded no counters"
        assert serial == pool

    def test_netsim_counters_are_present(self, observed_pair):
        counters = _counters(observed_pair["serial"].manifest)
        assert counters["netsim.runs_total{scenario=pretrain}"] >= 2
        assert counters["netsim.packets_total{scenario=pretrain}"] > 0


class TestChromeTraceExport:
    @staticmethod
    def _validate_event(event: dict) -> None:
        """Field-for-field check against the trace-event format."""
        assert isinstance(event["name"], str) and event["name"]
        assert event["ph"] in ("M", "X", "i")
        assert isinstance(event["pid"], int)
        if event["ph"] == "M":
            assert "args" in event
            return
        assert isinstance(event["tid"], int)
        assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
        if event["ph"] == "X":
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] in ("t", "p", "g")

    def test_exported_trace_validates(self, observed_pair):
        manifest = observed_pair["pool"].manifest
        trace = obs.chrome_trace(manifest["observability"]["spans"])
        payload = json.loads(json.dumps(trace))  # survives serialization
        assert payload["traceEvents"]
        for event in payload["traceEvents"]:
            self._validate_event(event)

    def test_trace_covers_campaign_and_tasks(self, observed_pair):
        manifest = observed_pair["pool"].manifest
        names = {
            event["name"]
            for event in obs.chrome_trace(manifest["observability"]["spans"])[
                "traceEvents"
            ]
            if event["ph"] == "X"
        }
        assert f"campaign:{manifest['campaign_id']}" in names
        assert any(name.startswith("task:") for name in names)


class TestDowngradeEvent:
    def test_structured_event_and_warning(self, tmp_path):
        plan = plan_campaign(_specs(), stages=STAGES)
        engine = CampaignEngine(store=None, workers=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = engine.run(plan)
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        assert result.manifest["downgraded_to_serial"] is True
        (event,) = [
            event
            for event in result.manifest["events"]
            if event["event"] == "runtime.downgraded_to_serial"
        ]
        assert event["requested_workers"] == 2
        assert event["campaign_id"] == plan.campaign_id
        assert "time_unix" in event

    def test_no_event_when_store_present(self, observed_pair):
        for result in observed_pair.values():
            assert result.manifest["downgraded_to_serial"] is False
            assert result.manifest["events"] == []


class TestDisabled:
    def test_manifest_omits_observability_when_gated_off(self, tmp_path):
        with obs.scope(False):
            store = ArtifactStore(tmp_path / "cache")
            plan = plan_campaign(
                expand_grid(scenarios=["pretrain"], scales=["smoke"], seeds=[0]),
                stages=STAGES,
            )
            result = CampaignEngine(store=store, workers=1).run(plan)
        assert not result.failed_tasks()
        assert "observability" not in result.manifest
        for row in result.manifest["tasks"]:
            assert "spans" not in row and "metrics" not in row

    def test_manifest_is_json_serializable(self, observed_pair):
        for result in observed_pair.values():
            json.dumps(result.manifest)
