"""Packet traces: what the simulator produces and the NTT consumes.

A trace is the list of *delivered, traced* packets with the four raw
features the paper uses (§3): timestamp, packet size, receiver ID and
end-to-end delay — plus the message bookkeeping needed for the MCT
fine-tuning task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.packet import Packet

__all__ = ["PacketRecord", "TraceCollector", "Trace"]


@dataclass
class PacketRecord:
    """One delivered packet, as seen by the dataset pipeline."""

    send_time: float
    recv_time: float
    size: int
    receiver_id: int
    flow_id: int
    message_id: int
    message_size: int
    is_message_end: bool

    @property
    def delay(self) -> float:
        """End-to-end delay in seconds."""
        return self.recv_time - self.send_time


class TraceCollector:
    """Accumulates :class:`PacketRecord` objects from sink applications."""

    def __init__(self):
        self.records: list[PacketRecord] = []

    def record(self, packet: Packet, recv_time: float) -> None:
        """Record a delivered packet (ignores packets marked untraced)."""
        if not packet.traced:
            return
        self.records.append(
            PacketRecord(
                send_time=packet.send_time,
                recv_time=recv_time,
                size=packet.size,
                receiver_id=packet.dst,
                flow_id=packet.flow_id,
                message_id=packet.message_id,
                message_size=packet.message_size,
                is_message_end=packet.is_message_end,
            )
        )

    def finalize(self) -> "Trace":
        """Sort by send time and build the array-backed :class:`Trace`."""
        ordered = sorted(self.records, key=lambda r: (r.send_time, r.message_id))
        return Trace.from_records(ordered)


class Trace:
    """Array-backed packet trace.

    Columns (aligned numpy arrays of equal length):

    * ``send_time`` / ``recv_time`` — seconds.
    * ``size`` — bytes.
    * ``receiver_id`` — destination node id (the paper's "receiver ID",
      an IP-address proxy).
    * ``flow_id`` / ``message_id`` / ``message_size`` / ``is_message_end``.
    * ``mct`` — completion time of the packet's message (seconds),
      ``nan`` for packets whose message never completed (tail drop).
    """

    def __init__(self, **columns: np.ndarray):
        required = [
            "send_time",
            "recv_time",
            "size",
            "receiver_id",
            "flow_id",
            "message_id",
            "message_size",
            "is_message_end",
        ]
        lengths = set()
        for name in required:
            if name not in columns:
                raise ValueError(f"missing trace column {name!r}")
            lengths.add(len(columns[name]))
        if len(lengths) > 1:
            raise ValueError(f"trace columns have inconsistent lengths: {lengths}")
        self.send_time = np.asarray(columns["send_time"], dtype=np.float64)
        self.recv_time = np.asarray(columns["recv_time"], dtype=np.float64)
        self.size = np.asarray(columns["size"], dtype=np.int64)
        self.receiver_id = np.asarray(columns["receiver_id"], dtype=np.int64)
        self.flow_id = np.asarray(columns["flow_id"], dtype=np.int64)
        self.message_id = np.asarray(columns["message_id"], dtype=np.int64)
        self.message_size = np.asarray(columns["message_size"], dtype=np.int64)
        self.is_message_end = np.asarray(columns["is_message_end"], dtype=bool)
        self.mct = columns.get("mct")
        if self.mct is None:
            self.mct = self._compute_mct()
        else:
            self.mct = np.asarray(self.mct, dtype=np.float64)

    @classmethod
    def from_records(cls, records: list[PacketRecord]) -> "Trace":
        """Build a trace from a list of records (assumed pre-sorted)."""
        return cls(
            send_time=np.array([r.send_time for r in records], dtype=np.float64),
            recv_time=np.array([r.recv_time for r in records], dtype=np.float64),
            size=np.array([r.size for r in records], dtype=np.int64),
            receiver_id=np.array([r.receiver_id for r in records], dtype=np.int64),
            flow_id=np.array([r.flow_id for r in records], dtype=np.int64),
            message_id=np.array([r.message_id for r in records], dtype=np.int64),
            message_size=np.array([r.message_size for r in records], dtype=np.int64),
            is_message_end=np.array([r.is_message_end for r in records], dtype=bool),
        )

    def __len__(self) -> int:
        return int(self.send_time.size)

    @property
    def delay(self) -> np.ndarray:
        """Per-packet end-to-end delay in seconds."""
        return self.recv_time - self.send_time

    def _compute_mct(self) -> np.ndarray:
        """Message completion time per packet.

        The MCT of a message is the time from its first packet's send to
        its *last delivered* packet's receive — "the time until the final
        packet of a message is delivered" (§4).  Messages whose final
        packet was dropped get the completion time of their last
        delivered packet; this mirrors measuring MCT on the receiver-side
        trace.
        """
        if len(self) == 0:
            return np.zeros(0, dtype=np.float64)
        mct = np.zeros(len(self), dtype=np.float64)
        starts: dict[int, float] = {}
        ends: dict[int, float] = {}
        ids = self.message_id
        for index in range(len(self)):
            message = int(ids[index])
            send = float(self.send_time[index])
            recv = float(self.recv_time[index])
            if message not in starts or send < starts[message]:
                starts[message] = send
            if message not in ends or recv > ends[message]:
                ends[message] = recv
        for index in range(len(self)):
            message = int(ids[index])
            mct[index] = ends[message] - starts[message]
        return mct

    def subset(self, mask: np.ndarray) -> "Trace":
        """Return a trace restricted to packets where ``mask`` is True."""
        return Trace(
            send_time=self.send_time[mask],
            recv_time=self.recv_time[mask],
            size=self.size[mask],
            receiver_id=self.receiver_id[mask],
            flow_id=self.flow_id[mask],
            message_id=self.message_id[mask],
            message_size=self.message_size[mask],
            is_message_end=self.is_message_end[mask],
            mct=self.mct[mask],
        )

    def save(self, path) -> None:
        """Serialize to an ``.npz`` file."""
        np.savez_compressed(
            path,
            send_time=self.send_time,
            recv_time=self.recv_time,
            size=self.size,
            receiver_id=self.receiver_id,
            flow_id=self.flow_id,
            message_id=self.message_id,
            message_size=self.message_size,
            is_message_end=self.is_message_end,
            mct=self.mct,
        )

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a trace previously stored with :meth:`save`."""
        with np.load(path) as data:
            return cls(**{key: data[key] for key in data.files})
