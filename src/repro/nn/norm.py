"""Layer normalisation."""

from __future__ import annotations

import numpy as np

from repro.nn import fastpath, init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, _unbroadcast

__all__ = ["LayerNorm", "layer_norm"]


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float) -> Tensor:
    """Fused LayerNorm forward/backward as one autograd node.

    The composite implementation builds a ~12-node graph (mean, centre,
    variance, rsqrt, scale, shift); this op performs the same numpy
    arithmetic in the same order — forward values and gradients are
    bit-identical — while writing into shared buffers instead of fresh
    temporaries and skipping the per-node closure/graph overhead.

    The backward hands ``x`` *two* contributions (the centring path and
    the mean path), in the exact order the composite engine accumulated
    them, so downstream gradient sums keep their float association.
    """
    x = Tensor.ensure(x)
    count = x.data.shape[-1]
    c = 1.0 / count
    mean = x.data.sum(axis=-1, keepdims=True)
    np.multiply(mean, c, out=mean)
    centered = x.data - mean
    # ``norm_buf`` holds centered**2 for the variance, then is reused for
    # the normalised output.
    norm_buf = centered * centered
    var = norm_buf.sum(axis=-1, keepdims=True)
    np.multiply(var, c, out=var)
    np.add(var, eps, out=var)
    sd = np.sqrt(var)
    normalised = norm_buf
    np.divide(centered, sd, out=normalised)
    out = normalised * gamma.data
    np.add(out, beta.data, out=out)

    def backward(grad):
        gbeta = _unbroadcast(grad, beta.data.shape)
        gnorm = grad * gamma.data
        # Centring-path contribution (the composite division node).
        gcentered = gnorm / sd
        # ``gnorm`` is free now; reuse it for the variance-path temps.
        np.negative(gnorm, out=gnorm)
        np.multiply(gnorm, centered, out=gnorm)
        np.divide(gnorm, sd**2, out=gnorm)
        gsd = _unbroadcast(gnorm, sd.shape)
        np.multiply(gsd, 0.5, out=gsd)
        np.divide(gsd, sd, out=gsd)  # sqrt backward
        np.multiply(gsd, c, out=gsd)  # variance-mean backward
        # Broadcast-multiply pairs each element with its row's gsd —
        # identical values to the composite broadcast-copy-then-multiply.
        gs2 = gnorm
        np.multiply(gsd, centered, out=gs2)
        # centered received (div, square, square) contributions in that
        # order in the composite graph.
        np.add(gcentered, gs2, out=gcentered)
        np.add(gcentered, gs2, out=gcentered)
        # Mean-path contribution to x; handed to the engine as a
        # broadcast view (accumulating adds broadcast it identically).
        gmean = _unbroadcast(gcentered, mean.shape)
        np.negative(gmean, out=gmean)
        np.multiply(gmean, c, out=gmean)
        gx_mean = np.broadcast_to(gmean, x.data.shape)
        if grad.ndim > 1:
            tmp = fastpath.scratch(x.data.shape, grad.dtype)
            np.multiply(grad, normalised, out=tmp)
            ggamma = _unbroadcast(tmp, gamma.data.shape)
        else:
            # 1-D input: the reduction is the identity, so the result
            # must be a fresh array, not a pooled scratch buffer.
            ggamma = grad * normalised
        return (gcentered, gx_mean, ggamma, gbeta)

    return Tensor._from_op(out, (x, x, gamma, beta), backward)


class LayerNorm(Module):
    """Normalise the last axis to zero mean / unit variance, then scale
    and shift with learned ``gamma`` / ``beta``.

    The default forward is the fused single-node kernel
    (:func:`layer_norm`); :func:`repro.nn.fastpath.composite_ops`
    restores the original primitive-op graph, whose gradient is
    exercised by the same finite-difference checks as every other op.
    """

    def __init__(self, normalized_dim: int, eps: float = 1e-5):
        super().__init__()
        if normalized_dim <= 0:
            raise ValueError(f"normalized_dim must be positive, got {normalized_dim}")
        self.normalized_dim = normalized_dim
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((normalized_dim,)), name="gamma")
        self.beta = Parameter(init.zeros((normalized_dim,)), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor.ensure(x)
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"LayerNorm expected last dim {self.normalized_dim}, got {x.shape[-1]}"
            )
        if fastpath.fused_ops_enabled():
            return layer_norm(x, self.gamma, self.beta, self.eps)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_dim}, eps={self.eps})"
