"""Command-line interface: ``python -m repro <command>``.

Commands mirror the ``repro.api`` workflow:

* ``run`` — run the paper's evaluation tables through the cached
  experiment facade.
* ``sweep`` — run a campaign of specs (a scenario × scale × seed grid,
  or a JSON sweep file) through the ``repro.runtime`` engine, optionally
  on a worker pool (``--workers N``); ``--stages`` selects any
  registered pipeline stages (see ``repro stages``) and ``--dry-run``
  prints the planned, deduplicated task graph.
* ``predict`` — serve batched predictions from a checkpoint (or the
  cached pre-trained/fine-tuned model); checkpoints load through the
  serving runtime's ``ModelManager``, so paths and ``store:<key>`` refs
  both work.
* ``serve`` — run the ``repro.serve`` prediction service: warm-model
  LRU, micro-batched fused forwards, asyncio HTTP front
  (``/predict``, ``/models``, ``/healthz``, ``/metrics``).
* ``cache`` — inspect or clear the on-disk artifact store.
* ``scenarios`` — list every registered scenario.
* ``stages`` — list every registered pipeline stage.
* ``simulate`` — run one scenario and print a trace report (or save
  the trace as ``.npz``); ``--profile`` attaches the event-loop
  profiler and prints per-handler accounting.
* ``pretrain`` — pre-train an NTT and save a self-describing checkpoint.
* ``evaluate`` — evaluate a checkpoint against the naive baselines.
* ``report`` — dataset statistics for any scenario/scale.
* ``trace`` — export a campaign manifest's span tree as Chrome
  trace-event JSON (loadable in Perfetto / ``chrome://tracing``).
* ``top`` — tail a live ``repro serve`` instance's ``/metrics``.

Unknown scales or scenario names exit with code 2 and a message listing
the valid choices (instead of a ``ValueError`` traceback from deep in
the call stack).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.version import __version__

__all__ = ["main", "build_parser", "CLIError"]

_SCALES = ["smoke", "small", "paper"]


class CLIError(Exception):
    """A user-facing CLI error: printed cleanly, exit code 2."""


def _scenario_arg(value: str) -> str:
    """Parse-time scenario validation.

    A ``type`` callable instead of argparse ``choices`` keeps the heavy
    ``repro.api`` import off the startup path (``--help``/``--version``
    and commands using the default never pay it)."""
    from repro.api.registry import SCENARIOS

    if value not in SCENARIOS:
        raise argparse.ArgumentTypeError(
            f"unknown scenario {value!r}; choose from {SCENARIOS.names()}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network Traffic Transformer reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the paper's tables (cached via repro.api)")
    # No --scenario: the table runners prescribe their own scenarios.
    _add_common(run, scenario=False)
    run.add_argument(
        "--table", default="2", choices=["1", "2", "3", "all"],
        help="which evaluation table to reproduce",
    )
    run.add_argument("--epochs", type=int, default=None, help="override training epochs")
    _add_cache_options(run)

    sweep = sub.add_parser(
        "sweep", help="run a spec campaign through the repro.runtime engine"
    )
    sweep.add_argument(
        "--scenarios", default="pretrain",
        help="comma-separated registered scenarios (see `repro scenarios`)",
    )
    sweep.add_argument(
        "--scales", default="smoke", help="comma-separated scales (smoke/small/paper)"
    )
    sweep.add_argument("--seeds", default="0", help="comma-separated base seeds")
    sweep.add_argument(
        "--spec-file", default=None,
        help="JSON sweep file with a grid and/or an explicit 'specs' list "
             "(replaces the grid flags)",
    )
    sweep.add_argument(
        "--stages", default=None,
        help="comma-separated registered stages (see `repro stages`; "
             "default: the standard traces,bundle,pretrain,finetune,evaluate "
             "pipeline)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = in-process)"
    )
    sweep.add_argument(
        "--retries", type=int, default=1, help="re-attempts per failed task"
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock timeout on pool runs (hung workers are "
             "reaped and the task retried); a spec's per-stage 'timeout_s' "
             "in stage_params overrides it per task",
    )
    sweep.add_argument("--epochs", type=int, default=None, help="override training epochs")
    sweep.add_argument(
        "--dry-run", action="store_true",
        help="print the planned task graph and exit without executing",
    )
    _add_cache_options(sweep)

    resume = sub.add_parser(
        "resume",
        help="resume a crashed or failed sweep campaign from its journal",
    )
    resume.add_argument(
        "campaign_id",
        help="the campaign id `repro sweep` printed (its journal lives at "
             "<store>/manifests/<id>.journal.jsonl)",
    )
    resume.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = in-process)"
    )
    resume.add_argument(
        "--retries", type=int, default=1, help="re-attempts per failed task"
    )
    resume.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock timeout on pool runs",
    )
    resume.add_argument(
        "--cache-dir", default=None,
        help="artifact store root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )

    predict = sub.add_parser("predict", help="serve batched predictions")
    _add_common(predict)
    predict.add_argument(
        "--checkpoint", default=None,
        help="predictor checkpoint (a file path or store:<key>); "
             "defaults to the cached experiment model",
    )
    predict.add_argument("--task", default="delay", choices=["delay", "mct"])
    predict.add_argument("--limit", type=int, default=5, help="sample rows to print")
    predict.add_argument(
        "--precision", default="float64", choices=["float64", "float32"],
        help="compute dtype checkpoints are loaded and served in",
    )
    _add_cache_options(predict)

    serve = sub.add_parser(
        "serve", help="run the repro.serve prediction service"
    )
    serve.add_argument(
        "checkpoints", nargs="+", metavar="MODEL",
        help="model refs to serve: checkpoint paths or store:<key> refs "
             "(the first is the default model)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    serve.add_argument(
        "--precision", default="float64", choices=["float64", "float32"],
        help="compute dtype models are loaded and served in",
    )
    serve.add_argument(
        "--lru-size", type=int, default=4, help="warm models kept in the LRU"
    )
    serve.add_argument(
        "--max-batch-windows", type=int, default=64,
        help="micro-batch flush size (windows per fused forward)",
    )
    serve.add_argument(
        "--max-wait-us", type=float, default=2000.0,
        help="micro-batch flush age (max microseconds a request waits)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=1024,
        help="forward chunk size of each warm predictor",
    )
    serve.add_argument(
        "--max-pending-windows", type=int, default=4096,
        help="saturation cap: windows queued per model before requests "
             "are shed with HTTP 503 + Retry-After",
    )
    _add_cache_options(serve)

    cache = sub.add_parser("cache", help="inspect or clear the artifact store")
    cache.add_argument("action", nargs="?", default="list", choices=["list", "clear"])
    cache.add_argument(
        "--kind", default=None, choices=["traces", "bundles", "checkpoints"],
        help="restrict `clear` to one artifact kind",
    )
    cache.add_argument("--cache-dir", default=None, help="artifact store root")

    sub.add_parser("scenarios", help="list registered scenarios")

    sub.add_parser("stages", help="list registered pipeline stages")

    simulate = sub.add_parser("simulate", help="run a scenario simulation")
    _add_common(simulate)
    simulate.add_argument("--output", help="save the trace to this .npz path")
    simulate.add_argument("--runs", type=int, default=1, help="number of runs")
    simulate.add_argument(
        "--profile", action="store_true",
        help="attach the event-loop profiler and print per-handler accounting",
    )

    pretrain = sub.add_parser("pretrain", help="pre-train an NTT and save a checkpoint")
    _add_common(pretrain)
    pretrain.add_argument("--output", default="ntt_checkpoint.npz", help="checkpoint path")
    pretrain.add_argument("--epochs", type=int, default=None, help="override epochs")
    _add_cache_options(pretrain)

    evaluate = sub.add_parser("evaluate", help="evaluate a checkpoint vs baselines")
    _add_common(evaluate)
    evaluate.add_argument("checkpoint", help="checkpoint produced by `repro pretrain`")

    report = sub.add_parser("report", help="dataset statistics for a scenario")
    _add_common(report)

    trace = sub.add_parser(
        "trace", help="export a campaign manifest's spans as Chrome trace JSON"
    )
    trace.add_argument(
        "manifest",
        help="campaign manifest JSON (the path `repro sweep` prints)",
    )
    trace.add_argument(
        "--output", default=None,
        help="trace file path (default: <manifest>.trace.json alongside the input)",
    )
    trace.add_argument(
        "--jsonl", action="store_true",
        help="also write the flattened spans as <output>.spans.jsonl",
    )

    top = sub.add_parser("top", help="tail a live repro serve /metrics endpoint")
    top.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="base URL of the running server",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between samples"
    )
    top.add_argument("--once", action="store_true", help="print one sample and exit")
    top.add_argument(
        "--count", type=int, default=None, help="stop after N samples (default: forever)"
    )

    lint = sub.add_parser(
        "lint",
        help="run the repro.lint static invariant checks (exit 0 clean, 1 findings)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--rule", action="append", default=None, metavar="NAME[,NAME...]",
        help="restrict to specific rules (repeatable or comma-separated)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: nearest lint-baseline.json above the lint root)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    lint.add_argument(
        "--baseline-update", action="store_true",
        help="rewrite the baseline from this run (adds new, expires fixed)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="lint only files differing from the git merge base "
        "(fingerprints still check the whole tree)",
    )
    lint.add_argument(
        "--fingerprints", action="store_true",
        help="check every registered stage's normalized-AST fingerprint "
        "against stage-fingerprints.json (exit 1 on drift)",
    )
    lint.add_argument(
        "--fingerprints-update", action="store_true",
        help="re-pin stage-fingerprints.json from the current tree",
    )
    return parser


def _add_common(parser: argparse.ArgumentParser, scenario: bool = True) -> None:
    if scenario:
        parser.add_argument(
            "--scenario", default="pretrain", type=_scenario_arg,
            help="a registered scenario (see `repro scenarios`)",
        )
    parser.add_argument("--scale", default="smoke", choices=_SCALES)
    parser.add_argument("--seed", type=int, default=0)


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact store root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the artifact store"
    )


def _resolve_scale(name: str):
    from repro.core.pipeline import get_scale

    try:
        return get_scale(name)
    except ValueError as error:
        raise CLIError(str(error)) from None


def _load_predictor(ref, store=None, precision: str = "float64"):
    """Load a checkpoint through the serving runtime's ``ModelManager``.

    ``repro predict`` and ``repro serve`` share this path, so both
    accept file paths and ``store:<key>`` refs, and both turn loader
    failures (missing file, unknown task metadata, missing pipeline
    metadata) into a clean exit-code-2 message instead of a traceback.
    """
    from repro.serve import ModelManager, ModelNotFound

    manager = ModelManager(store=store, capacity=1, precision=precision)
    try:
        return manager.get(ref)
    except (ModelNotFound, FileNotFoundError, ValueError) as error:
        raise CLIError(str(error)) from None


def _build_experiment(args, scenario: str | None = None, cached: bool = True):
    """An :class:`Experiment` honouring the shared CLI options.

    ``cached=False`` (read-only commands like ``report``) skips the
    artifact store entirely.
    """
    from repro.api import ArtifactStore, Experiment, ExperimentSpec

    scale = _resolve_scale(args.scale)
    overrides = {}
    epochs = getattr(args, "epochs", None)
    if epochs is not None:
        overrides["pretrain"] = scale.pretrain_settings.scaled(epochs)
        overrides["finetune"] = scale.finetune_settings.scaled(epochs)
    try:
        spec = ExperimentSpec(
            scenario=scenario if scenario is not None else getattr(args, "scenario", "pretrain"),
            scale=scale.name,
            seed=args.seed,
            **overrides,
        )
    except ValueError as error:
        raise CLIError(str(error)) from None
    if not cached or getattr(args, "no_cache", False):
        store = None
    else:
        store = ArtifactStore(getattr(args, "cache_dir", None))
    return Experiment(spec, store=store)


# -- commands ---------------------------------------------------------------------


def _cmd_run(args) -> int:
    from repro.core.pipeline import format_rows

    experiment = _build_experiment(args)
    if experiment.store is not None:
        print(f"artifact store: {experiment.store.root}")
    tables = [1, 2, 3] if args.table == "all" else [int(args.table)]
    for table in tables:
        rows = experiment.run_table(table)
        print(f"\n== Table {table} ({experiment.spec.scale} scale)")
        print(format_rows(rows))
    return 0


def _sweep_specs(args):
    """The sweep's spec list from the flags or the spec file."""
    from repro.runtime import expand_grid, specs_from_file

    try:
        if args.spec_file is not None:
            return specs_from_file(args.spec_file)
        specs = expand_grid(
            scenarios=[name.strip() for name in args.scenarios.split(",") if name.strip()],
            scales=[name.strip() for name in args.scales.split(",") if name.strip()],
            seeds=[int(seed) for seed in args.seeds.split(",") if seed.strip()],
        )
    except (ValueError, OSError, json.JSONDecodeError) as error:
        raise CLIError(str(error)) from None
    if not specs:
        raise CLIError("the sweep grid is empty; provide scenarios, scales and seeds")
    return specs


def _cmd_sweep(args) -> int:
    from repro.api import ArtifactStore
    from repro.runtime import CampaignEngine, plan_campaign

    specs = _sweep_specs(args)
    if args.epochs is not None:
        specs = [
            spec.with_overrides(
                pretrain=spec.to_scale().pretrain_settings.scaled(args.epochs),
                finetune=spec.to_scale().finetune_settings.scaled(args.epochs),
            )
            for spec in specs
        ]
    # None → the registry's standard pipeline; anything else is
    # validated against the registered sweep stages by plan_campaign,
    # whose error message lists them.
    stages = None
    if args.stages is not None:
        stages = tuple(name.strip() for name in args.stages.split(",") if name.strip())
    if args.no_cache:
        if args.workers > 1:
            raise CLIError(
                "parallel sweeps need the artifact store; drop --no-cache or use --workers 1"
            )
        store = None
    else:
        store = ArtifactStore(args.cache_dir)
    try:
        plan = plan_campaign(specs, stages=stages)
    except ValueError as error:
        raise CLIError(str(error)) from None
    if args.dry_run:
        print(plan.describe(store))
        return 0
    if store is not None:
        print(f"artifact store: {store.root}")
    engine = CampaignEngine(
        store=store,
        workers=args.workers,
        retries=args.retries,
        task_timeout_s=args.timeout,
    )
    result = engine.run(plan)
    print(result.format_summary())
    return 0 if result.ok else 1


def _cmd_resume(args) -> int:
    from repro.api import ArtifactStore
    from repro.runtime import CampaignEngine

    store = ArtifactStore(args.cache_dir)
    engine = CampaignEngine(
        store=store,
        workers=args.workers,
        retries=args.retries,
        task_timeout_s=args.timeout,
    )
    try:
        result = engine.resume(args.campaign_id)
    except ValueError as error:
        raise CLIError(str(error)) from None
    print(result.format_summary())
    return 0 if result.ok else 1


def _cmd_predict(args) -> int:
    import numpy as np

    experiment = _build_experiment(args)
    if args.checkpoint is not None:
        predictor = _load_predictor(
            args.checkpoint, store=experiment.store, precision=args.precision
        )
        if predictor.task != args.task:
            raise CLIError(
                f"checkpoint serves task {predictor.task!r}, requested {args.task!r}"
            )
    else:
        predictor = experiment.predictor(task=args.task)
    test = experiment.bundle().test
    if args.task == "mct":
        test = test.with_completed_messages_only()
    if len(test) == 0:
        raise CLIError(f"scenario {args.scenario!r} produced no test windows")
    predictions = predictor.predict_dataset(test)
    actual = np.log(test.mct_target) if args.task == "mct" else test.delay_target
    mse = float(np.mean((predictions - actual) ** 2))
    unit = "log-s" if args.task == "mct" else "s"
    print(f"{predictor!r} on {args.scenario} ({len(test)} windows)")
    for index in range(min(args.limit, len(test))):
        print(
            f"  window {index}: predicted {predictions[index]:.6f} {unit}, "
            f"actual {actual[index]:.6f} {unit}"
        )
    print(f"test MSE: {mse:.6e} {unit}^2")
    return 0


def _cmd_cache(args) -> int:
    from repro.api import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    if args.action == "clear":
        removed = store.clear(args.kind)
        print(f"removed {removed} artifact(s) from {store.root}")
        return 0
    summary = store.summary()
    print(f"artifact store: {store.root}")
    total = 0
    for kind, row in summary.items():
        total += row["bytes"]
        print(f"  {kind:12s} {row['count']:5d} file(s)  {row['bytes'] / 1e6:8.2f} MB")
    print(f"  {'total':12s} {'':5s}         {total / 1e6:8.2f} MB")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.api.registry import SCENARIOS

    for entry in SCENARIOS.entries():
        print(f"{entry.name:24s} {entry.description}")
    return 0


def _cmd_stages(args) -> int:
    import repro.runtime  # noqa: F401 — registers the built-in stages
    from repro.api.stages import STAGE_REGISTRY

    for name in STAGE_REGISTRY.sweep_stages():
        stage = STAGE_REGISTRY.get(name)
        marker = "*" if stage.default else " "
        deps = ",".join(stage.deps) if stage.deps else "-"
        print(
            f"{marker} {stage.name:20s} v{stage.version}  "
            f"kind={stage.kind or '-':12s} deps={deps:16s} {stage.description}"
        )
    print("(* = standard pipeline; table-only stages not shown)")
    return 0


def _cmd_simulate(args) -> int:
    from repro.analysis.reports import trace_report
    from repro.netsim.scenarios import build_scenario, generate_traces

    scale = _resolve_scale(args.scale)
    config = scale.scenario(args.scenario, seed=args.seed)
    profiler = None
    if args.profile:
        from repro.netsim.profiler import EventLoopProfiler

        profiler = EventLoopProfiler()
        traces = []
        for run_index in range(args.runs):
            handle = build_scenario(config, run_index)
            if not hasattr(handle.sim, "attach_profiler"):
                raise CLIError(
                    "profiling needs the fast simulator; unset the reference-path env"
                )
            handle.sim.attach_profiler(profiler)
            traces.append(handle.run())
    else:
        traces = generate_traces(config, n_runs=args.runs)
    for index, trace in enumerate(traces):
        print(trace_report(trace, name=f"{args.scenario} run {index}"))
    if profiler is not None:
        print(profiler.format_report())
    if args.output:
        traces[0].save(args.output)
        print(f"saved first run to {args.output}")
    return 0


def _cmd_pretrain(args) -> int:
    experiment = _build_experiment(args, scenario="pretrain")
    result = experiment.pretrained()
    print(
        f"pre-trained in {result.history.wall_time:.0f}s; "
        f"test delay MSE {result.test_mse_scaled:.4f} x1e-3 s^2"
    )
    from repro.api import Predictor

    Predictor(result.model, result.pipeline).save(args.output)
    print(f"checkpoint written to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    import numpy as np

    from repro.core.baselines import evaluate_baselines

    experiment = _build_experiment(args, cached=False)
    bundle = experiment.bundle()

    predictor = _load_predictor(args.checkpoint)
    predictions = predictor.predict_dataset(bundle.test)
    mse = float(np.mean((predictions - bundle.test.delay_target) ** 2))
    print(f"checkpoint delay MSE on {args.scenario}: {mse * 1e3:.4f} x1e-3 s^2")
    for name, row in evaluate_baselines(bundle.test).items():
        print(f"baseline {name:14s}: {row['delay_mse'] * 1e3:.4f} x1e-3 s^2")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.api import ArtifactStore
    from repro.serve import (
        ModelManager,
        ModelNotFound,
        PredictionServer,
        ServerConfig,
    )

    store = None if args.no_cache else ArtifactStore(args.cache_dir)
    try:
        config = ServerConfig(
            models=tuple(args.checkpoints),
            host=args.host,
            port=args.port,
            precision=args.precision,
            lru_capacity=args.lru_size,
            max_batch_windows=args.max_batch_windows,
            max_wait_us=args.max_wait_us,
            batch_size=args.batch_size,
            max_pending_windows=args.max_pending_windows,
        )
        manager = ModelManager(
            store=store,
            capacity=args.lru_size,
            precision=args.precision,
            batch_size=args.batch_size,
        )
        # Warm the default model up front: a bad ref or a metadata-less
        # checkpoint should exit 2 now, not 500 on the first request.
        manager.get(config.models[0])
    except (ModelNotFound, FileNotFoundError, ValueError) as error:
        raise CLIError(str(error)) from None

    server = PredictionServer(config, manager=manager)

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                # Explicit handlers (not KeyboardInterrupt): background
                # jobs inherit SIGINT ignored from non-interactive
                # shells, and these override that so `kill -INT` still
                # shuts the service down cleanly (the CI serving job
                # relies on it).
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, OSError):  # pragma: no cover
                pass
        await server.start()
        print(
            f"serving {len(config.models)} model(s) on "
            f"http://{config.host}:{server.port} "
            f"(precision={config.precision}, lru={config.lru_capacity})",
            flush=True,
        )
        for ref in config.models:
            print(f"  model: {ref}", flush=True)
        # start() already accepts connections; wait for a signal, then
        # drain in-flight micro-batches and release the prediction lane.
        await stop.wait()
        await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - ctrl-C fallback
        pass
    snapshot = server.metrics.snapshot()
    print(
        f"shutdown: served {snapshot['requests_total']} request(s), "
        f"{snapshot['predictions_total']} prediction(s) in "
        f"{snapshot['batches_total']} batch(es)"
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.reports import dataset_report

    experiment = _build_experiment(args, cached=False)
    print(dataset_report(experiment.bundle()))
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    from repro.obs import chrome_trace, spans_to_jsonl

    path = Path(args.manifest)
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CLIError(f"cannot read manifest {path}: {error}") from None
    observability = manifest.get("observability") or {}
    spans = observability.get("spans")
    if not spans:
        raise CLIError(
            f"manifest {path} has no observability spans; "
            "re-run the sweep with REPRO_OBS unset or =1"
        )
    campaign_id = manifest.get("campaign_id", "campaign")
    trace = chrome_trace(spans, process_name=f"repro {campaign_id}")
    output = Path(args.output) if args.output else path.with_suffix(".trace.json")
    output.write_text(json.dumps(trace))
    print(f"wrote {len(trace['traceEvents'])} trace event(s) to {output}")
    if args.jsonl:
        jsonl_path = output.with_suffix(".spans.jsonl")
        jsonl_path.write_text(spans_to_jsonl(spans))
        print(f"wrote flattened spans to {jsonl_path}")
    return 0


def _cmd_top(args) -> int:
    import time
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/metrics"
    limit = 1 if args.once else args.count
    samples = 0
    try:
        while True:
            try:
                with urllib.request.urlopen(url, timeout=5) as response:
                    snapshot = json.loads(response.read().decode("utf-8"))
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
                raise CLIError(f"cannot read {url}: {error}") from None
            latency = snapshot.get("latency_ms", {})
            if latency.get("window"):
                tail = (
                    f"p50 {latency['p50']:.2f}ms p99 {latency['p99']:.2f}ms "
                    f"(window {latency['window']})"
                )
            else:
                tail = "no latency samples yet"
            print(
                f"up {snapshot['uptime_s']:7.1f}s  "
                f"req {snapshot['requests_total']} ({snapshot['requests_per_s']:.1f}/s)  "
                f"pred {snapshot['predictions_total']} "
                f"({snapshot['predictions_per_s']:.1f}/s)  "
                f"err {snapshot['errors_total']}  "
                f"batch {snapshot['mean_batch_windows']:.1f}w  " + tail,
                flush=True,
            )
            samples += 1
            if limit is not None and samples >= limit:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _lint_fingerprints(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.lint import LintReport, check_fingerprints, default_root
    from repro.lint.fingerprint import FINGERPRINT_FILENAME, save_fingerprints

    paths = [Path(p) for p in args.paths] or [default_root()]
    try:
        findings, pin_path, current = check_fingerprints(paths)
    except (FileNotFoundError, ValueError) as error:
        raise CLIError(str(error)) from None

    if args.fingerprints_update:
        if pin_path is None:
            pin_path = Path.cwd() / FINGERPRINT_FILENAME
        save_fingerprints(pin_path, current)
        print(f"fingerprints written: {pin_path} ({len(current)} stages)")
        return 0

    report = LintReport(
        roots=[str(p) for p in paths],
        findings=findings,
        baseline_path=None,
    )
    if args.format == "json":
        payload = report.to_dict()
        payload["fingerprints"] = str(pin_path) if pin_path else None
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.format_text())
        if pin_path is not None:
            print(f"fingerprints: {pin_path} ({len(current)} stages checked)")
    return report.exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.lint import LINT_RULES, run_lint

    if args.list_rules:
        for rule in LINT_RULES.entries():
            scopes = ", ".join(rule.scopes) if rule.scopes else "all files"
            print(f"{rule.name} [{rule.severity}] ({scopes})")
            print(f"    {rule.description}")
        return 0

    if args.fingerprints or args.fingerprints_update:
        return _lint_fingerprints(args)

    rule_names = None
    if args.rule:
        rule_names = [
            name.strip()
            for chunk in args.rule
            for name in chunk.split(",")
            if name.strip()
        ]
    try:
        report = run_lint(
            [Path(p) for p in args.paths] or None,
            rule_names=rule_names,
            baseline_path=Path(args.baseline) if args.baseline else None,
            use_baseline=not args.no_baseline,
            update_baseline=args.baseline_update,
            changed_only=args.changed,
        )
    except (FileNotFoundError, ValueError) as error:
        raise CLIError(str(error)) from None

    if args.format == "json":
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
        if args.baseline_update and report.baseline_path:
            print(f"baseline written: {report.baseline_path}")
    return report.exit_code


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "resume": _cmd_resume,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
    "scenarios": _cmd_scenarios,
    "stages": _cmd_stages,
    "simulate": _cmd_simulate,
    "pretrain": _cmd_pretrain,
    "evaluate": _cmd_evaluate,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except CLIError as error:
        # User-facing errors only — genuine bugs keep their traceback.
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
