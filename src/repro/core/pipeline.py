"""End-to-end experiment pipeline: the paper's evaluation (§4) as code.

:class:`ExperimentContext` owns datasets and the shared pre-trained
model for one *scale* (``smoke`` / ``small`` / ``paper``); the
``run_table1/2/3`` functions regenerate the corresponding tables.
Benchmarks and examples are thin wrappers around this module.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.aggregation import AggregationSpec
from repro.core.features import FeaturePipeline, FeatureSpec
from repro.core.model import NTTConfig
from repro.core.pretrain import PretrainResult, TrainSettings, pretrain
from repro.datasets.generation import DatasetBundle, generate_dataset
from repro.datasets.windows import WindowConfig
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind

__all__ = [
    "ExperimentScale",
    "ExperimentContext",
    "get_scale",
    "run_table1",
    "run_table2",
    "run_table3",
    "format_rows",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Everything that differs between smoke / small / paper runs."""

    name: str
    window: WindowConfig
    n_runs: int
    pretrain_settings: TrainSettings
    finetune_settings: TrainSettings
    fine_fraction: float = 0.1
    #: aggregation variants for the Table 1 ablations, keyed by name.
    aggregation_variants: dict = field(default_factory=dict)
    #: optional architecture override (set by :mod:`repro.api` specs);
    #: ``None`` selects the per-scale default config.
    model: NTTConfig | None = None

    def scenario(self, kind: str, seed: int = 0) -> ScenarioConfig:
        """Build any *registered* scenario at this scale.

        ``kind`` is a name in :data:`repro.api.registry.SCENARIOS` —
        the three Fig. 4 setups plus every plugin registered through
        ``@register_scenario``.
        """
        from repro.api.registry import SCENARIOS

        return SCENARIOS.build(kind, scale=self.name, seed=seed)

    def model_config(
        self,
        features: FeatureSpec | None = None,
        aggregation: AggregationSpec | None = None,
    ) -> NTTConfig:
        if self.model is not None:
            base = self.model
        elif self.name == "paper":
            base = NTTConfig.paper()
        elif self.name == "smoke":
            base = NTTConfig.smoke()
        else:
            base = NTTConfig.small()
        from dataclasses import replace

        overrides = {}
        if features is not None:
            overrides["features"] = features
        if aggregation is not None:
            overrides["aggregation"] = aggregation
        return replace(base, **overrides) if overrides else base


def _smoke_scale() -> ExperimentScale:
    return ExperimentScale(
        name="smoke",
        window=WindowConfig(window_len=64, stride=4),
        n_runs=1,
        pretrain_settings=TrainSettings.smoke(),
        finetune_settings=TrainSettings.smoke(),
        aggregation_variants={
            "multi": AggregationSpec.from_pairs([(4, 9), (4, 4), (12, 1)]),
            "none": AggregationSpec.none(20),
            "fixed": AggregationSpec.fixed(count=20, block=3),
        },
    )


def _small_scale() -> ExperimentScale:
    return ExperimentScale(
        name="small",
        window=WindowConfig(window_len=512, stride=8),
        n_runs=2,
        pretrain_settings=TrainSettings(epochs=15),
        finetune_settings=TrainSettings(epochs=10),
        aggregation_variants={
            "multi": AggregationSpec.multi_timescale_512(),
            "none": AggregationSpec.none(44),
            "fixed": AggregationSpec.fixed(count=42, block=12),
        },
    )


def _paper_scale() -> ExperimentScale:
    return ExperimentScale(
        name="paper",
        window=WindowConfig(window_len=1024, stride=16),
        n_runs=10,
        pretrain_settings=TrainSettings(epochs=30),
        finetune_settings=TrainSettings(epochs=20),
        aggregation_variants={
            "multi": AggregationSpec.multi_timescale_paper(),
            "none": AggregationSpec.none(48),
            "fixed": AggregationSpec.fixed_paper(),
        },
    )


_SCALES = {"smoke": _smoke_scale, "small": _small_scale, "paper": _paper_scale}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by name, defaulting to ``$REPRO_BENCH_SCALE`` or
    ``small``."""
    if name is None:
        name = os.environ.get("REPRO_BENCH_SCALE", "small")
    try:
        return _SCALES[name]()
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}") from None


class ExperimentContext:
    """Caches datasets and the shared pre-trained model for one scale.

    Dataset generation and pre-training dominate experiment wall time;
    the three table runners share them through this context.  Two layers
    of caching apply:

    * in-memory — repeated calls on one context return the same object;
    * on-disk — when constructed with an
      :class:`~repro.api.store.ArtifactStore`, bundles and checkpoints
      are content-addressed by everything that produced them, so a fresh
      context (even in a new process) with the same spec is served from
      disk instead of re-simulating / re-training.
    """

    def __init__(self, scale: ExperimentScale, store=None, seed: int = 0):
        self.scale = scale
        self.store = store
        self.seed = seed
        self._bundles: dict[str, DatasetBundle] = {}
        self._pretrained: PretrainResult | None = None
        self._pretrain_variants: dict[str, PretrainResult] = {}

    def scenario_config(self, kind: str) -> "ScenarioConfig":
        """The resolved scenario config for a registered scenario name."""
        return self.scale.scenario(kind, seed=self.seed)

    # -- simulation ---------------------------------------------------------------

    def traces(self, kind: str):
        """Raw simulation traces for one scenario (store-backed).

        Bundles are windowed from these, so two window configurations
        over the same scenario share one simulation run set.
        """
        from repro.netsim.scenarios import generate_traces

        scenario = self.scenario_config(kind)
        key = None
        if self.store is not None:
            from repro.api.stages import versioned_key
            from repro.api.store import traces_key

            key = versioned_key("traces", traces_key(scenario, self.scale.n_runs))
            cached = self.store.get_traces(key, self.scale.n_runs)
            if cached is not None:
                return cached
        traces = generate_traces(scenario, n_runs=self.scale.n_runs)
        if self.store is not None:
            self.store.put_traces(key, traces)
        return traces

    # -- datasets -----------------------------------------------------------------

    def bundle(self, kind: str) -> DatasetBundle:
        """The windowed dataset for one scenario (cached; store-backed)."""
        if kind not in self._bundles:
            receiver_index = None
            if kind != ScenarioKind.PRETRAIN:
                # Receiver identities are shared with pre-training.
                receiver_index = self.bundle(ScenarioKind.PRETRAIN).receiver_index
            scenario = self.scenario_config(kind)
            key = None
            if self.store is not None:
                from repro.api.stages import versioned_key
                from repro.api.store import bundle_key

                key = versioned_key(
                    "bundle",
                    bundle_key(
                        scenario, self.scale.window, self.scale.n_runs, receiver_index
                    ),
                )
                cached = self.store.get_bundle(key)
                if cached is not None:
                    self._bundles[kind] = cached
                    return cached
            bundle = generate_dataset(
                scenario,
                window_config=self.scale.window,
                n_runs=self.scale.n_runs,
                name=kind,
                receiver_index=receiver_index,
                traces=self.traces(kind) if self.store is not None else None,
            )
            if self.store is not None:
                self.store.put_bundle(key, bundle)
            self._bundles[kind] = bundle
        return self._bundles[kind]

    # -- models --------------------------------------------------------------------

    def _pretrain_cached(
        self,
        config: NTTConfig,
        settings: TrainSettings,
        precision: str = "float64",
    ) -> PretrainResult:
        """Pre-train one configuration, store-backed when possible.

        Results are also memoised in-process, so ablation variants are
        trained once per context even without an artifact store.
        ``precision`` folds into both cache layers only when non-default
        (float64 keys stay byte-identical).
        """
        from repro.api.hashing import stable_hash
        from repro.api.store import precision_key

        memo_key = stable_hash(
            {"config": config, "settings": settings, "precision": precision}
        )
        if memo_key in self._pretrain_variants:
            return self._pretrain_variants[memo_key]
        key = None
        if self.store is not None:
            from repro.api.stages import versioned_key
            from repro.api.store import pretrained_key

            key = precision_key(
                versioned_key(
                    "pretrain",
                    pretrained_key(
                        self.scenario_config(ScenarioKind.PRETRAIN),
                        self.scale.window,
                        self.scale.n_runs,
                        config,
                        settings,
                    ),
                ),
                precision,
            )
            cached = self.store.get_pretrained(key)
            if cached is not None:
                self._pretrain_variants[memo_key] = cached
                return cached
        result = pretrain(
            config, self.bundle(ScenarioKind.PRETRAIN), settings=settings, precision=precision
        )
        if self.store is not None:
            self.store.put_pretrained(key, result)
        self._pretrain_variants[memo_key] = result
        return result

    def pretrained(self, precision: str = "float64") -> PretrainResult:
        """The shared fully-featured pre-trained NTT (cached)."""
        if precision != "float64":
            return self._pretrain_cached(
                self.scale.model_config(), self.scale.pretrain_settings, precision
            )
        if self._pretrained is None:
            self._pretrained = self._pretrain_cached(
                self.scale.model_config(), self.scale.pretrain_settings
            )
        return self._pretrained

    def pretrain_variant(
        self,
        features: FeatureSpec | None = None,
        aggregation: AggregationSpec | None = None,
        pipeline: FeaturePipeline | None = None,
    ) -> PretrainResult:
        """Pre-train an ablated NTT variant.

        Store-backed like :meth:`pretrained` (each Table 1 row keys its
        own checkpoint) unless a custom ``pipeline`` is supplied, whose
        fitted statistics the cache key cannot see.
        """
        config = self.scale.model_config(features=features, aggregation=aggregation)
        if pipeline is None:
            return self._pretrain_cached(config, self.scale.pretrain_settings)
        return pretrain(
            config,
            self.bundle(ScenarioKind.PRETRAIN),
            settings=self.scale.pretrain_settings,
            pipeline=pipeline,
        )


# -- table runners -------------------------------------------------------------------
#
# Since the `repro.runtime` campaign engine, each table declares its
# independent training units as a task plan and submits them through a
# CampaignEngine, so the exact same stage code serves interactive runs,
# `repro sweep` campaigns and the benchmarks — and `workers=N` fans a
# table's independent units out over a process pool.


def _run_table_campaign(table: int, scale, context, engine, workers):
    """Plan one table for this context and execute it on an engine."""
    from repro.runtime.engine import CampaignEngine
    from repro.runtime.plan import plan_table, spec_for_scale

    scale = scale if scale is not None else get_scale()
    context = context if context is not None else ExperimentContext(scale)
    if engine is None:
        engine = CampaignEngine(store=context.store, workers=workers)
    spec = spec_for_scale(scale, seed=context.seed)
    plan, layout = plan_table(table, spec)
    outcome = engine.run(plan, context=context)
    failures = outcome.failed_tasks()
    if failures:
        raise RuntimeError(
            f"table {table} campaign failed at {failures[0]['id']}:\n"
            + failures[0]["error"]
        )
    return outcome, layout


def run_table1(
    scale: ExperimentScale | None = None,
    context: ExperimentContext | None = None,
    engine=None,
    workers: int = 1,
) -> dict:
    """Table 1: MSE for all models and tasks (case 1, 10% fine-tuning).

    Rows: pre-trained NTT, from-scratch NTT, the two naive baselines and
    four ablated NTTs.  Columns: pre-training delay MSE, fine-tuned
    delay MSE, fine-tuned log-MCT MSE (all in paper units ×10⁻³:
    seconds² for delay, log² for MCT).
    """
    outcome, layout = _run_table_campaign(1, scale, context, engine, workers)
    rows: dict[str, dict] = {}
    rows["ntt_pretrained"] = {
        "pretrain_delay_mse": outcome[layout["pretrain"]]["test_mse_seconds2"],
        "finetune_delay_mse": outcome[layout["ft_delay"]]["test_mse"],
        "finetune_mct_mse": outcome[layout["ft_mct"]]["test_mse"],
    }
    rows["ntt_from_scratch"] = {
        "pretrain_delay_mse": None,
        "finetune_delay_mse": outcome[layout["scratch_delay"]]["test_mse"],
        "finetune_mct_mse": outcome[layout["scratch_mct"]]["test_mse"],
    }
    # Naive baselines, evaluated on both test sets (the fine-tuning
    # fraction keeps the full test split, so case-1 numbers compare).
    pretrain_baselines = outcome[layout["baselines_pretrain"]]["rows"]
    case1_baselines = outcome[layout["baselines_case1"]]["rows"]
    for name in ("last_observed", "ewma"):
        rows[name] = {
            "pretrain_delay_mse": pretrain_baselines[name]["delay_mse"],
            "finetune_delay_mse": case1_baselines[name]["delay_mse"],
            "finetune_mct_mse": case1_baselines[name]["mct_log_mse"],
        }
    for name, units in layout["variants"].items():
        rows[name] = {
            "pretrain_delay_mse": outcome[units["pretrain"]]["test_mse_seconds2"],
            "finetune_delay_mse": outcome[units["ft_delay"]]["test_mse"],
            "finetune_mct_mse": outcome[units["ft_mct"]]["test_mse"],
        }
    return rows


def run_table2(
    scale: ExperimentScale | None = None,
    context: ExperimentContext | None = None,
    engine=None,
    workers: int = 1,
) -> dict:
    """Table 2: pre-training saves fine-tuning data and compute (case 1).

    Rows: pre-trained + decoder-only on full/10% data vs. from-scratch +
    full model on full/10% data; columns: delay MSE and wall-clock
    training time of the fine-tuning stage.
    """
    outcome, layout = _run_table_campaign(2, scale, context, engine, workers)
    rows: dict[str, dict] = {}
    for label in ("full", "10pct"):
        rows[f"pretrained_{label}"] = {
            "layers_trained": "decoder_only",
            "delay_mse": outcome[layout[f"pretrained_{label}"]]["test_mse"],
            "training_time_s": outcome[layout[f"pretrained_{label}"]]["training_time_s"],
        }
    for label in ("full", "10pct"):
        rows[f"scratch_{label}"] = {
            "layers_trained": "full",
            "delay_mse": outcome[layout[f"scratch_{label}"]]["test_mse"],
            "training_time_s": outcome[layout[f"scratch_{label}"]]["training_time_s"],
        }
    return rows


def run_table3(
    scale: ExperimentScale | None = None,
    context: ExperimentContext | None = None,
    engine=None,
    workers: int = 1,
) -> dict:
    """Table 3: the larger topology (case 2).

    Pre-trained models fine-tune (full model — the new receivers need
    their embeddings trained) on full/10% data; from-scratch fails; the
    no-receiver-ID ablation cannot tell receivers apart; baselines for
    reference.
    """
    outcome, layout = _run_table_campaign(3, scale, context, engine, workers)
    rows: dict[str, dict] = {}
    for label in ("full", "10pct"):
        rows[f"pretrained_{label}"] = {
            "delay_mse": outcome[layout[f"pretrained_{label}"]]["test_mse"],
            "training_time_s": outcome[layout[f"pretrained_{label}"]]["training_time_s"],
        }
    for label in ("full", "10pct"):
        rows[f"scratch_{label}"] = {
            "delay_mse": outcome[layout[f"scratch_{label}"]]["test_mse"],
            "training_time_s": outcome[layout[f"scratch_{label}"]]["training_time_s"],
        }
    # Baselines (the §4 "not shown" reference numbers).
    baselines = outcome[layout["baselines_case2"]]["rows"]
    rows["last_observed"] = {"delay_mse": baselines["last_observed"]["delay_mse"]}
    rows["ewma"] = {"delay_mse": baselines["ewma"]["delay_mse"]}
    # Without addressing information the receivers are indistinguishable.
    rows["without_receiver_id"] = {
        "delay_mse": outcome[layout["without_receiver_id"]]["test_mse"]
    }
    return rows


def format_rows(rows: dict, scale_factor: float = 1e3, unit: str = "x1e-3") -> str:
    """Human-readable table of nested result dictionaries."""
    lines = []
    for row_name, columns in rows.items():
        parts = []
        for column, value in columns.items():
            if isinstance(value, float):
                parts.append(f"{column}={value * scale_factor:10.4f}{unit}"
                             if "mse" in column else f"{column}={value:.2f}")
            else:
                parts.append(f"{column}={value}")
        lines.append(f"{row_name:24s} " + "  ".join(parts))
    return "\n".join(lines)
