"""Human-readable reports on traces and datasets.

These are the sanity checks behind dataset generation: does the
bottleneck congest, do receivers differ, how heavy is the message-size
tail?  The benchmark for Fig. 4 prints the same quantities; examples use
these helpers for readable output.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generation import DatasetBundle
from repro.netsim.trace import Trace
from repro.utils.stats import percentile_summary

__all__ = ["trace_report", "dataset_report"]


def trace_report(trace: Trace, name: str = "trace") -> str:
    """Multi-line summary of one packet trace."""
    if len(trace) == 0:
        return f"{name}: empty trace"
    delays_ms = trace.delay * 1e3
    summary = percentile_summary(delays_ms)
    lines = [
        f"{name}: {len(trace)} packets, {int(trace.is_message_end.sum())} completed messages",
        (
            f"  delays (ms): mean {summary.mean:.2f}  p50 {summary.p50:.2f}  "
            f"p99 {summary.p99:.2f}  p99.9 {summary.p999:.2f}  max {summary.max:.2f}"
        ),
        (
            f"  sizes (B): min {int(trace.size.min())}  median "
            f"{int(np.median(trace.size))}  max {int(trace.size.max())}"
        ),
        f"  span: {trace.send_time.min():.2f}s .. {trace.send_time.max():.2f}s",
    ]
    receivers = sorted(set(trace.receiver_id.tolist()))
    if len(receivers) > 1:
        lines.append("  per-receiver mean delay (ms):")
        for receiver in receivers:
            mean = delays_ms[trace.receiver_id == receiver].mean()
            lines.append(f"    receiver {receiver}: {mean:.2f}")
    completed = trace.mct[np.isfinite(trace.mct) & trace.is_message_end]
    if completed.size:
        mct = percentile_summary(completed * 1e3)
        lines.append(
            f"  MCT (ms): mean {mct.mean:.1f}  p50 {mct.p50:.1f}  p99 {mct.p99:.1f}"
        )
    return "\n".join(lines)


def dataset_report(bundle: DatasetBundle) -> str:
    """Multi-line summary of a windowed dataset bundle."""
    lines = [
        f"dataset {bundle.name!r} ({bundle.scenario.kind} scenario)",
        f"  {bundle.n_packets} packets -> {bundle.n_windows} windows of "
        f"{bundle.window_config.window_len} packets (stride {bundle.window_config.stride})",
        f"  splits: train {len(bundle.train)} / val {len(bundle.val)} / test {len(bundle.test)}",
        f"  receivers: {len(bundle.receiver_index)} "
        f"({sorted(bundle.receiver_index.keys())})",
    ]
    targets_ms = bundle.train.delay_target * 1e3
    if targets_ms.size:
        lines.append(
            f"  train delay targets (ms): mean {targets_ms.mean():.2f}, "
            f"std {targets_ms.std():.2f}"
        )
    valid_mct = bundle.train.mct_target[
        np.isfinite(bundle.train.mct_target) & (bundle.train.mct_target > 0)
    ]
    lines.append(
        f"  MCT labels available: {valid_mct.size}/{len(bundle.train)} train windows"
    )
    return "\n".join(lines)
