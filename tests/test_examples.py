"""Smoke tests: every example script must run end-to-end.

Examples default to the ``smoke`` scale so these stay fast; each test
asserts on the script's stdout to ensure it produced its story, not just
an exit code.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "pretrain_finetune.py",
        "mct_prediction.py",
        "larger_topology.py",
        "ablation_study.py",
        "federated_pretraining.py",
        "continual_monitoring.py",
        "scenario_sweep.py",
        "custom_stage.py",
        "serving.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Pre-training the NTT" in out
    assert "NTT (pre-trained)" in out
    assert "predicted" in out


def test_pretrain_finetune():
    out = run_example("pretrain_finetune.py")
    assert "Fine-tuning the pre-trained model" in out
    assert "from scratch" in out
    assert "Verdict" in out


def test_mct_prediction():
    out = run_example("mct_prediction.py")
    assert "NEW task" in out
    assert "log-MSE" in out
    assert "actual" in out


def test_larger_topology():
    out = run_example("larger_topology.py")
    assert "per-receiver delay structure" in out
    assert "without addressing" in out


def test_ablation_study():
    out = run_example("ablation_study.py")
    assert "without delay" in out
    assert "full NTT" in out


def test_federated_pretraining(tmp_path):
    out = run_example(
        "federated_pretraining.py", "--rounds", "1", "--clients", "2",
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert "FedAvg" in out
    assert "global test MSE" in out
    # The second submission is served from the artifact store.
    assert "1/1 task(s) were cache hits" in out


def test_continual_monitoring(tmp_path):
    out = run_example(
        "continual_monitoring.py", "--cache-dir", str(tmp_path / "cache")
    )
    assert "drifted=" in out
    assert "attend" in out
    assert "Manifest:" in out


def test_custom_stage(tmp_path):
    out = run_example(
        "custom_stage.py", "--workers", "2", "--cache-dir", str(tmp_path / "cache"),
        "--output-dir", str(tmp_path / "out"),
    )
    assert "registered in-line" in out
    assert "0 failed" in out
    assert "cache hit" in out
    assert (tmp_path / "out" / "custom_stage.json").exists()


def test_scenario_sweep(tmp_path):
    out = run_example(
        "scenario_sweep.py", "--workers", "2", "--cache-dir", str(tmp_path / "cache")
    )
    assert "deduplicated tasks" in out
    assert "0 failed" in out
    assert "no retraining" in out
    assert "Manifest at" in out


def test_serving():
    out = run_example("serving.py", "--requests", "32")
    assert "Starting the prediction server" in out
    assert "0 errors" in out
    assert "fused batches" in out
    assert "stopped cleanly" in out
