"""Tests for the Packet dataclass."""

import pytest

from repro.netsim.packet import Packet, PacketKind


def test_defaults():
    packet = Packet(src=0, dst=1, size=1500)
    assert packet.kind == PacketKind.DATA
    assert not packet.is_ack
    assert packet.traced
    assert packet.hops == 0


def test_uids_unique():
    uids = {Packet(src=0, dst=1, size=100).uid for _ in range(100)}
    assert len(uids) == 100


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, size=0)
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, size=-10)


def test_reply_template_swaps_endpoints():
    packet = Packet(src=3, dst=9, size=1500, flow_id=42, message_id=7)
    reply = packet.reply_template(size=40)
    assert reply.src == 9 and reply.dst == 3
    assert reply.flow_id == 42
    assert reply.is_ack
    assert not reply.traced


def test_is_ack_flag():
    ack = Packet(src=0, dst=1, size=40, kind=PacketKind.ACK)
    assert ack.is_ack
