"""Clean mirror: the helper write is guard-covered — its only call
site holds the lock one frame up — and the direct write is guarded."""

import threading


class Pump:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = None
        self.level = 0

    def start(self):
        self._thread = threading.Thread(target=self._run)
        with self._lock:
            self.level = 1
        self._thread.start()

    def _run(self):
        with self._lock:
            self._step()

    def _step(self):
        self.level = 2
