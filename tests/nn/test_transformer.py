"""Tests for transformer encoder blocks."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer


def test_layer_preserves_shape(rng):
    layer = TransformerEncoderLayer(16, 4, 32, rng)
    out = layer(Tensor(rng.normal(size=(2, 7, 16))))
    assert out.shape == (2, 7, 16)


def test_encoder_preserves_shape(rng):
    encoder = TransformerEncoder(3, 16, 4, 32, rng)
    out = encoder(Tensor(rng.normal(size=(2, 7, 16))))
    assert out.shape == (2, 7, 16)


def test_residual_path_exists(rng):
    """With zeroed branch outputs the block must be the identity."""
    layer = TransformerEncoderLayer(8, 2, 16, rng, dropout=0.0)
    layer.eval()
    # Zero the output projections of both branches.
    layer.attention.w_out.weight.data[:] = 0.0
    layer.attention.w_out.bias.data[:] = 0.0
    layer.feed_forward[2].weight.data[:] = 0.0
    layer.feed_forward[2].bias.data[:] = 0.0
    x = rng.normal(size=(1, 4, 8))
    out = layer(Tensor(x)).data
    assert np.allclose(out, x)


def test_gradients_flow_to_input_and_parameters(rng):
    encoder = TransformerEncoder(2, 8, 2, 16, rng)
    x = Tensor(rng.normal(size=(2, 5, 8)), requires_grad=True)
    encoder(x).sum().backward()
    assert x.grad is not None
    missing = [n for n, p in encoder.named_parameters() if p.grad is None]
    assert not missing


def test_dropout_only_in_training(rng):
    encoder = TransformerEncoder(1, 8, 2, 16, rng, dropout=0.5)
    x = Tensor(rng.normal(size=(1, 4, 8)))
    encoder.eval()
    a = encoder(x).data
    b = encoder(x).data
    assert np.allclose(a, b)  # deterministic in eval
    encoder.train()
    c = encoder(x).data
    d = encoder(x).data
    assert not np.allclose(c, d)  # stochastic in train


def test_invalid_layer_count(rng):
    with pytest.raises(ValueError):
        TransformerEncoder(0, 8, 2, 16, rng)


def test_mask_propagates_to_all_layers(rng):
    encoder = TransformerEncoder(2, 8, 2, 16, rng)
    for layer in encoder.layers:
        layer.attention.record_attention = True
    encoder.eval()
    x = rng.normal(size=(1, 6, 8))
    mask = np.zeros((1, 1, 6, 6), dtype=bool)
    mask[..., 5] = True
    encoder(Tensor(x), mask=mask)
    for layer in encoder.layers:
        assert np.allclose(layer.attention.last_attention[..., 5], 0.0, atol=1e-6)


def test_parameter_count_scales_with_layers(rng):
    one = TransformerEncoder(1, 8, 2, 16, rng).num_parameters()
    two = TransformerEncoder(2, 8, 2, 16, rng).num_parameters()
    final_norm = 2 * 8
    assert two - final_norm == 2 * (one - final_norm)
