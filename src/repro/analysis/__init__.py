"""Analysis and interpretability tooling.

* :mod:`repro.analysis.attention` — inspect what the NTT's encoder
  attends to across its multi-timescale history.
* :mod:`repro.analysis.reports` — human-readable summaries of traces and
  datasets (the sanity checks behind Fig. 4).
"""

from repro.analysis.attention import AttentionSummary, attention_summary
from repro.analysis.reports import dataset_report, trace_report

__all__ = ["AttentionSummary", "attention_summary", "trace_report", "dataset_report"]
