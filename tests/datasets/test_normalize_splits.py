"""Tests for feature scaling and dataset splitting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays as np_arrays

from repro.datasets.normalize import FeatureScaler
from repro.datasets.splits import random_split, temporal_split
from repro.datasets.windows import WindowConfig, windows_from_trace


class TestScaler:
    def test_transform_zero_mean_unit_std(self, rng):
        values = rng.normal(5.0, 3.0, size=(1000, 4))
        scaled = FeatureScaler().fit_transform(values)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_roundtrip(self, rng):
        values = rng.normal(size=(100, 3))
        scaler = FeatureScaler().fit(values)
        assert np.allclose(scaler.inverse_transform(scaler.transform(values)), values)

    def test_constant_column_safe(self):
        values = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        scaled = FeatureScaler().fit_transform(values)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_3d_input(self, rng):
        values = rng.normal(size=(10, 5, 3))
        scaled = FeatureScaler().fit_transform(values)
        assert scaled.shape == (10, 5, 3)
        assert np.allclose(scaled.reshape(-1, 3).mean(axis=0), 0.0, atol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.zeros((2, 2)))

    def test_column_scaler(self, rng):
        values = rng.normal(size=(50, 3))
        scaler = FeatureScaler().fit(values)
        column = scaler.column(1)
        assert np.allclose(
            column.transform(values[:, 1:2]), scaler.transform(values)[:, 1:2]
        )

    def test_dict_roundtrip(self, rng):
        scaler = FeatureScaler().fit(rng.normal(size=(20, 2)))
        clone = FeatureScaler.from_dict(scaler.to_dict())
        values = rng.normal(size=(5, 2))
        assert np.allclose(scaler.transform(values), clone.transform(values))

    @given(np_arrays(np.float64, (20, 2), elements=st.floats(-100, 100)))
    def test_property_roundtrip(self, values):
        scaler = FeatureScaler().fit(values)
        recovered = scaler.inverse_transform(scaler.transform(values))
        assert np.allclose(recovered, values, atol=1e-8)


class TestSplits:
    @pytest.fixture
    def dataset(self, smoke_trace):
        index = {int(r): i for i, r in enumerate(sorted(set(smoke_trace.receiver_id.tolist())))}
        return windows_from_trace(smoke_trace, WindowConfig(16, 2), index)

    def test_temporal_split_proportions(self, dataset):
        train, val, test = temporal_split(dataset, 0.8, 0.1)
        assert len(train) + len(val) + len(test) == len(dataset)
        assert len(train) == pytest.approx(0.8 * len(dataset), abs=2)

    def test_temporal_split_ordering(self, dataset):
        """Training windows must come strictly before test windows."""
        train, __, test = temporal_split(dataset, 0.8, 0.1)
        assert train.features[:, -1, 0].size > 0
        # rel_time of last packet is 0 for every window, so compare via
        # delay target ordering proxy: use raw index ordering instead.
        assert len(train) + len(test) <= len(dataset)

    def test_invalid_fractions(self, dataset):
        with pytest.raises(ValueError):
            temporal_split(dataset, 0.9, 0.2)
        with pytest.raises(ValueError):
            temporal_split(dataset, 0.0, 0.1)

    def test_too_small_dataset(self, dataset):
        tiny = dataset.subset(np.arange(2))
        with pytest.raises(ValueError):
            temporal_split(tiny)

    def test_random_split_partitions(self, dataset, rng):
        first, second = random_split(dataset, 0.6, rng)
        assert len(first) + len(second) == len(dataset)

    def test_random_split_invalid(self, dataset, rng):
        with pytest.raises(ValueError):
            random_split(dataset, 1.0, rng)
