"""Basic layers: Linear, activations, Dropout, Embedding, Sequential."""

from __future__ import annotations

import numpy as np

from repro.nn import fastpath, init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, linear

__all__ = ["Linear", "ReLU", "GELU", "Tanh", "Dropout", "Embedding", "Sequential", "Identity"]


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    Weights have shape ``(in_features, out_features)`` and apply to the
    last axis of the input, so the layer works for both ``(batch, d)``
    and ``(batch, seq, d)`` inputs.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor.ensure(x)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        if fastpath.fused_ops_enabled() and x.ndim >= 2:
            # One graph node for matmul + bias (bit-identical results).
            return linear(x, self.weight, self.bias)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return Tensor.ensure(x).relu()


class GELU(Module):
    """Gaussian Error Linear Unit (the transformer default)."""

    def forward(self, x: Tensor) -> Tensor:
        return Tensor.ensure(x).gelu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return Tensor.ensure(x).tanh()


class Identity(Module):
    """Pass-through layer (placeholder in ablations)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        return x.dropout(self.rate, self._rng)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used by the NTT for receiver IDs — "an IP address proxy, as we do
    not want to learn IP address parsing (yet)" (§3 footnote).
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("num_embeddings and embedding_dim must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), rng, std=0.02), name="weight"
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding indices out of range [0, {self.num_embeddings}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return self.weight.take_rows(indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Sequential(Module):
    """Feed input through a fixed chain of layers."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers = list(layers)
        for index, layer in enumerate(layers):
            self._modules[str(index)] = layer

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]
