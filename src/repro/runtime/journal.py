"""Append-only campaign journals: the crash-safe record of a run.

The campaign manifest is written once, after every task settles — a
SIGKILLed engine therefore used to leave *nothing* behind.  The journal
closes that gap: the engine appends one JSON line through the store as
each task reaches a final status (``done`` / ``error`` / ``skipped``),
fsyncing every line, so the on-disk record is never more than one task
behind reality no matter how the process dies.

Layout (``<store>/manifests/<campaign_id>.journal.jsonl``)::

    {"type": "campaign", "campaign_id": ..., "seed": ..., "stages": [...],
     "specs": [...], "tasks": [...], ...}          # header, always first
    {"type": "task", "id": ..., "status": ..., ...}  # one per settle
    {"type": "event", "event": ..., ...}             # engine events
    {"type": "complete", "status": ..., "summary": ...}  # normal end

Readers must tolerate a torn final line (the crash may land mid-write);
:func:`read_journal` stops at the first undecodable line and reports it
via :attr:`JournalState.torn_tail` instead of raising.  The header
records the campaign's specs, stage selection and seed, which is enough
for :meth:`~repro.runtime.engine.CampaignEngine.resume` to re-plan the
identical task graph and re-execute only what never finished.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.clock import wall_time_unix

__all__ = ["CampaignJournal", "JournalState", "read_journal"]

#: Task-record keys that stay out of the journal: span trees and metric
#: snapshots are bulky telemetry, not recovery state (the final manifest
#: carries them for completed runs).
_TELEMETRY_KEYS = ("spans", "metrics")


class CampaignJournal:
    """Append-only writer for one campaign's journal file.

    Every line is flushed and fsynced before :meth:`append` returns, so
    a settled task survives any subsequent crash of the engine process.
    The file opens in append mode: resuming a campaign extends the same
    journal (a second ``campaign`` header line marks the new run).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, entry: dict) -> None:
        """Write one journal line durably (flush + fsync)."""
        if self._handle is None:
            raise ValueError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def header(
        self,
        plan,
        workers: int,
        retries: int,
        resumed: tuple[str, ...] | list[str] = (),
    ) -> None:
        """The run's opening line: everything resume needs to re-plan.

        ``plan.stages`` is recorded when the plan came from
        :func:`~repro.runtime.plan.plan_campaign`; bespoke plans (table
        layouts, hand-built graphs) journal ``stages: null`` and are not
        resumable — their records still survive crashes.
        """
        self.append(
            {
                "type": "campaign",
                "campaign_id": plan.campaign_id,
                "time_unix": wall_time_unix(),
                "seed": plan.seed,
                "workers": workers,
                "retries": retries,
                "stages": list(plan.stages) if getattr(plan, "stages", None) else None,
                "specs": [spec.to_dict() for spec in plan.specs],
                "tasks": [task.id for task in plan.ordered()],
                "resumed": list(resumed),
            }
        )

    def task(self, record: dict) -> None:
        """Journal one settled task (telemetry stripped)."""
        entry = {key: value for key, value in record.items() if key not in _TELEMETRY_KEYS}
        entry["type"] = "task"
        entry["time_unix"] = wall_time_unix()
        self.append(entry)

    def event(self, event: dict) -> None:
        """Journal one engine event (already a structured dict)."""
        self.append({**event, "type": "event"})

    def complete(self, summary: dict, status: str) -> None:
        """The run's closing line (``status``: ``complete`` / ``crashed``)."""
        self.append(
            {
                "type": "complete",
                "time_unix": wall_time_unix(),
                "status": status,
                "summary": summary,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JournalState:
    """What a journal file says happened (possibly mid-crash)."""

    #: the *latest* ``campaign`` header (resumed runs append another).
    header: dict | None = None
    #: last journalled record per task id (a retry's settle supersedes).
    records: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    #: the closing line of the latest run, ``None`` if it crashed.
    completed: dict | None = None
    #: whether the file ends in a torn (undecodable) line.
    torn_tail: bool = False

    def done_records(self) -> dict:
        """Task records that settled as ``done`` (resume replays these)."""
        return {
            task_id: record
            for task_id, record in self.records.items()
            if record.get("status") == "done"
        }


def read_journal(path: str | os.PathLike) -> JournalState:
    """Parse a journal file, tolerating a torn tail.

    A crash can land mid-``write``; everything up to the first
    undecodable line is trusted, the rest ignored.  Raises ``OSError``
    only when the file itself cannot be opened — callers distinguish
    "no journal" from "journal of a crashed run" that way.
    """
    state = JournalState()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except json.JSONDecodeError:
                state.torn_tail = True
                break
            kind = entry.get("type")
            if kind == "campaign":
                state.header = entry
                state.completed = None  # a new run supersedes old closure
            elif kind == "task":
                state.records[entry["id"]] = entry
            elif kind == "event":
                state.events.append(entry)
            elif kind == "complete":
                state.completed = entry
    return state
