"""Discrete-event simulation core.

The whole module is a lint-enforced hot region (see the pragma after
this docstring): per-event work must stay tuple/heap/deque operations —
a numpy allocation creeping into the dispatch path is a finding, not a
code-review judgement call.

Events are ``(time, priority, sequence)``-ordered callbacks.  The
sequence number makes the order of same-time events deterministic (FIFO
in scheduling order), which keeps whole simulations bit-reproducible for
a fixed seed.

The calendar is *slotted*: instead of a single heap of comparable
``Event`` objects (the pre-PR design, preserved verbatim in
:mod:`repro.netsim.reference` for golden-equivalence testing), pending
events live in plain tuples ``(time, priority, alloc, seq, callback,
args, token)`` split across two structures (``alloc`` is the instant
the reference stack would have scheduled the event, so exact-time ties
resolve in reference order even for entries the fast path creates
early):

* a binary heap, where ordering is decided by C-level tuple comparison
  on the leading ``(time, priority, seq)`` fields (``seq`` is unique, so
  comparisons never reach the callback), and
* a *monotone tail*: a deque holding a non-decreasing run of keys.
  Scheduling an event at or after the tail's last key appends in O(1),
  and one before the tail's first key prepends in O(1) (the
  "next-to-run" case) — no heap churn at all in either direction.

Popping merges both structures (the smaller front wins), so execution
order is exactly the single-heap order.  Which patterns hit the O(1)
fast path?  Any scheduling sequence whose keys never decrease relative
to the last tail entry — in this simulator that is the
*enqueue-next-departure* pattern of a busy link (each departure books
the next one strictly later), periodic monitor samples, and message
sources arming their next Poisson arrival.  Cross-channel interleavings
with shorter delays fall back to the heap, which still beats the
pre-PR design because comparisons stay in C instead of calling
``Event.__lt__``.

:meth:`Simulator.post` / :meth:`Simulator.post_at` are the
fire-and-forget variants of :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at`: they skip the cancellation token for
callers that never cancel (links, sinks, monitors), avoiding one object
allocation per event on the hot path.
"""

# repro: hot

from __future__ import annotations

import heapq
import itertools
import math
import sys
from collections import deque
from typing import Callable

__all__ = ["Simulator", "Event", "SimStats", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the event loop."""


class SimStats:
    """Cheap per-simulation aggregate counters.

    One instance is owned by the :class:`Simulator` and threaded through
    links and queues at construction time, so simulation-wide drop
    telemetry is available as plain counters without installing
    per-packet monitor callbacks or walking the topology.  Only the
    *rare* path (drops) updates these; per-packet transmit counts stay
    on each channel, where monitors sample them pull-based.
    """

    __slots__ = ("packets_dropped", "bytes_dropped")

    def __init__(self):
        self.packets_dropped = 0
        self.bytes_dropped = 0

    def __repr__(self) -> str:
        return (
            f"SimStats(packets_dropped={self.packets_dropped}, "
            f"bytes_dropped={self.bytes_dropped})"
        )


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events can be cancelled (used by TCP retransmission timers); a
    cancelled event stays in the calendar but is skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will not run."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state})"


class Simulator:
    """The discrete-event scheduler.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=2.0)
    """

    __slots__ = (
        "_heap", "_tail", "_seq", "_now", "_processed", "_running", "stats",
        "_message_ids", "_profiler",
    )

    def __init__(self):
        # Calendar entries are (time, priority, alloc, seq, callback,
        # args, token) tuples; `token` is an Event for cancellable
        # entries, else None.  `alloc` is the simulation instant at
        # which the reference stack would have *scheduled* the event —
        # ``now`` for ordinary scheduling, the serialization-finish
        # time for pre-booked link deliveries — so ties at exactly
        # equal (time, priority) resolve in the reference's order even
        # though the fast path creates some entries earlier.
        self._heap: list[tuple] = []
        self._tail: deque[tuple] = deque()
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._running = False
        self.stats = SimStats()
        self._message_ids = itertools.count()
        self._profiler = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled ones)."""
        return len(self._heap) + len(self._tail)

    def next_message_id(self) -> int:
        """Message id unique within this simulation.

        Owned by the simulator (not a process-global counter) so the
        ``message_id`` column of a trace depends only on the scenario,
        never on what else ran earlier in the process.
        """
        return next(self._message_ids)

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among same-time events (lower runs first).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(self, time: float, callback: Callable, *args, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, args)
        entry = (time, priority, self._now, seq, callback, args, event)
        tail = self._tail
        if not tail or entry > tail[-1]:
            tail.append(entry)
        elif entry < tail[0]:
            tail.appendleft(entry)
        else:
            heapq.heappush(self._heap, entry)
        return event

    def post(self, delay: float, callback: Callable, args: tuple = (), priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle.

        The fast path for trusted internal callers (links, apps,
        monitors) that never cancel: skips the per-event ``Event``
        allocation and the delay validation.  ``delay`` must be
        non-negative and finite.
        """
        now = self._now
        entry = (now + delay, priority, now, next(self._seq), callback, args, None)
        tail = self._tail
        if not tail or entry > tail[-1]:
            tail.append(entry)
        elif entry < tail[0]:
            tail.appendleft(entry)
        else:
            heapq.heappush(self._heap, entry)

    def post_at(self, time: float, callback: Callable, args: tuple = (), priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule_at` (see :meth:`post`).

        ``time`` is used exactly as given, so callers controlling float
        arithmetic (e.g. a link fusing serialization + propagation) get
        bit-identical timestamps to the equivalent chained schedules.
        """
        entry = (time, priority, self._now, next(self._seq), callback, args, None)
        tail = self._tail
        if not tail or entry > tail[-1]:
            tail.append(entry)
        elif entry < tail[0]:
            tail.appendleft(entry)
        else:
            heapq.heappush(self._heap, entry)

    # -- execution ----------------------------------------------------------------

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        heap, tail = self._heap, self._tail
        while heap and heap[0][6] is not None and heap[0][6].cancelled:
            heapq.heappop(heap)
        while tail and tail[0][6] is not None and tail[0][6].cancelled:
            tail.popleft()
        if heap:
            if tail and tail[0] < heap[0]:
                return tail[0][0]
            return heap[0][0]
        if tail:
            return tail[0][0]
        return None

    def step(self) -> bool:
        """Run the next event.  Returns False when the calendar is empty."""
        heap, tail = self._heap, self._tail
        while heap or tail:
            if heap and not (tail and tail[0] < heap[0]):
                entry = heapq.heappop(heap)
            else:
                entry = tail.popleft()
            token = entry[6]
            if token is not None and token.cancelled:
                continue
            self._now = entry[0]
            self._processed += 1
            entry[4](*entry[5])
            return True
        return False

    def attach_profiler(self, profiler) -> None:
        """Opt into per-event profiling for subsequent :meth:`run` calls.

        ``profiler`` is an :class:`~repro.netsim.profiler.EventLoopProfiler`
        (or anything with its ``run_loop`` contract); ``None`` detaches.
        Profiling swaps in an instrumented copy of the event loop, so
        the unprofiled hot path carries zero extra work — not even a
        branch per event.
        """
        self._profiler = profiler

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the calendar drains, ``until`` is reached, or
        ``max_events`` have executed.

        When stopping at ``until``, the clock is advanced to ``until`` so
        subsequent scheduling is relative to the stop time.
        """
        if self._profiler is not None:
            return self._profiler.run_loop(self, until, max_events)
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            heap, tail = self._heap, self._tail
            heappop, heappush = heapq.heappop, heapq.heappush
            # Hoist the stop conditions out of the per-event branch work:
            # an open-ended run compares against +inf / maxsize instead
            # of re-testing ``is not None`` forty-thousand times.  The
            # live counter is updated in place so callbacks reading
            # ``events_processed`` (or driving ``step()`` themselves)
            # observe the same values as on the reference loop.
            horizon = math.inf if until is None else until
            budget = sys.maxsize if max_events is None else self._processed + max_events
            while True:
                if self._processed >= budget:
                    return
                if heap:
                    if tail and tail[0] < heap[0]:
                        entry = tail.popleft()
                    else:
                        entry = heappop(heap)
                elif tail:
                    entry = tail.popleft()
                else:
                    break
                token = entry[6]
                if token is not None and token.cancelled:
                    continue
                time = entry[0]
                if time > horizon:
                    heappush(heap, entry)
                    break
                self._now = time
                self._processed += 1
                entry[4](*entry[5])
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
