"""Opt-in event-loop profiling: events/sec by handler, queue depths.

The simulator's hot loop is deliberately instrumentation-free; callers
who want per-handler accounting attach an :class:`EventLoopProfiler`::

    profiler = EventLoopProfiler()
    sim.attach_profiler(profiler)
    sim.run(until=duration)
    print(profiler.format_report())

Attaching swaps :meth:`~repro.netsim.core.Simulator.run` for an
instrumented copy of the loop (:meth:`EventLoopProfiler.run_loop`)
that preserves execution order, clock advancement, horizon handling
and the re-entrancy guard bit-for-bit — the golden-equivalence suite
asserts a profiled run emits the identical trace — while recording per
event:

* the handler (callback ``__qualname__``), its call count and
  cumulative CPU seconds, and
* a calendar-depth sample every :attr:`sample_every` events (pending
  heap + monotone-tail entries), approximating queue-depth dynamics.

:meth:`report` returns plain data; :meth:`publish` folds the totals
into a ``repro.obs`` registry as labelled counters/gauges, so profiled
simulations surface through the same ``/metrics``-style snapshots as
everything else.
"""

from __future__ import annotations

import heapq
import math
import sys
import time

from repro.netsim.core import SimulationError

__all__ = ["EventLoopProfiler"]


class EventLoopProfiler:
    """Accumulates per-handler counts/CPU time and calendar depths."""

    def __init__(self, sample_every: int = 64, clock=time.perf_counter):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self._clock = clock
        self.counts: dict[str, int] = {}
        self.seconds: dict[str, float] = {}
        self.events_total = 0
        self.cpu_s = 0.0
        self.depth_samples = 0
        self.depth_sum = 0
        self.depth_max = 0

    # -- the instrumented loop ----------------------------------------------------

    def run_loop(self, sim, until: float | None, max_events: int | None) -> None:
        """A bookkeeping copy of ``Simulator.run`` (see its docstring).

        Mirrors the fast loop exactly — same pop order, cancellation
        handling, horizon re-insert and final clock advance — with a
        ``perf_counter`` pair and a counts update around each callback.
        """
        if sim._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        sim._running = True
        clock = self._clock
        counts, seconds = self.counts, self.seconds
        try:
            heap, tail = sim._heap, sim._tail
            heappop, heappush = heapq.heappop, heapq.heappush
            horizon = math.inf if until is None else until
            budget = sys.maxsize if max_events is None else sim._processed + max_events
            loop_started = clock()
            while True:
                if sim._processed >= budget:
                    return
                if heap:
                    if tail and tail[0] < heap[0]:
                        entry = tail.popleft()
                    else:
                        entry = heappop(heap)
                elif tail:
                    entry = tail.popleft()
                else:
                    break
                token = entry[6]
                if token is not None and token.cancelled:
                    continue
                event_time = entry[0]
                if event_time > horizon:
                    heappush(heap, entry)
                    break
                sim._now = event_time
                sim._processed += 1
                callback = entry[4]
                started = clock()
                callback(*entry[5])
                elapsed = clock() - started
                handler = getattr(callback, "__qualname__", repr(callback))
                counts[handler] = counts.get(handler, 0) + 1
                seconds[handler] = seconds.get(handler, 0.0) + elapsed
                self.events_total += 1
                if self.events_total % self.sample_every == 0:
                    depth = len(heap) + len(tail)
                    self.depth_samples += 1
                    self.depth_sum += depth
                    self.depth_max = max(self.depth_max, depth)
            if until is not None and until > sim._now:
                sim._now = until
        finally:
            self.cpu_s += clock() - loop_started
            sim._running = False

    # -- reporting ----------------------------------------------------------------

    def report(self) -> dict:
        """JSON-ready profile: totals, per-handler rows, depth stats."""
        handlers = {
            name: {
                "count": self.counts[name],
                "cpu_s": self.seconds.get(name, 0.0),
            }
            for name in sorted(
                self.counts, key=lambda name: -self.seconds.get(name, 0.0)
            )
        }
        return {
            "events_total": self.events_total,
            "cpu_s": self.cpu_s,
            "events_per_s": self.events_total / self.cpu_s if self.cpu_s else 0.0,
            "handlers": handlers,
            "queue_depth": {
                "samples": self.depth_samples,
                "sample_every": self.sample_every,
                "mean": self.depth_sum / self.depth_samples if self.depth_samples else 0.0,
                "max": self.depth_max,
            },
        }

    def publish(self, registry) -> None:
        """Fold totals into a metrics registry as labelled series."""
        for handler, count in self.counts.items():
            registry.counter("netsim.profiler.events_total", handler=handler).inc(count)
            registry.counter("netsim.profiler.cpu_seconds_total", handler=handler).inc(
                self.seconds.get(handler, 0.0)
            )
        depth = self.report()["queue_depth"]
        registry.gauge("netsim.profiler.queue_depth_mean").set(depth["mean"])
        registry.gauge("netsim.profiler.queue_depth_max").set(depth["max"])

    def format_report(self, top: int = 12) -> str:
        """Human-readable profile for the ``repro simulate --profile`` CLI."""
        report = self.report()
        lines = [
            f"event loop: {report['events_total']} events in "
            f"{report['cpu_s']:.3f}s CPU ({report['events_per_s']:,.0f} events/s)",
            f"calendar depth: mean {report['queue_depth']['mean']:.1f}, "
            f"max {report['queue_depth']['max']} "
            f"({report['queue_depth']['samples']} samples)",
            f"{'handler':<48} {'count':>10} {'cpu_s':>9} {'%':>6}",
        ]
        total = report["cpu_s"] or 1.0
        for name, row in list(report["handlers"].items())[:top]:
            lines.append(
                f"{name:<48} {row['count']:>10} {row['cpu_s']:>9.3f} "
                f"{100.0 * row['cpu_s'] / total:>5.1f}%"
            )
        remaining = len(report["handlers"]) - top
        if remaining > 0:
            lines.append(f"... and {remaining} more handler(s)")
        return "\n".join(lines)
