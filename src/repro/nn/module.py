"""Module system: parameter registration, state dicts, train/eval mode.

Mirrors the familiar torch.nn semantics at a fraction of the surface:
assigning a :class:`Parameter`, :class:`Module` or :class:`ModuleList`
to an attribute registers it automatically.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn import fastpath
from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "freeze_parameters"]


class Parameter(Tensor):
    """A tensor that is trainable by construction."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network components."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration ----------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicit registration (used for dynamically named parameters)."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    # -- traversal ---------------------------------------------------------------

    def parameters(self) -> list[Parameter]:
        """All trainable parameters in this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(parameter.size for parameter in self.parameters())

    # -- training state -------------------------------------------------------------

    def train(self) -> "Module":
        """Enable training mode (dropout active) recursively."""
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        """Enable inference mode (dropout disabled) recursively."""
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- state dict -------------------------------------------------------------------

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of every parameter's data, keyed by dotted name."""
        return OrderedDict(
            (name, parameter.data.copy()) for name, parameter in self.named_parameters()
        )

    def load_state_dict(self, state: dict, copy: bool = True) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on
        shape mismatches — silent partial loads hide real bugs.  Values
        are stored in the active compute dtype (float64 unless inside a
        :func:`repro.nn.fastpath.precision` scope).

        ``copy=False`` lets parameters alias the provided arrays when no
        dtype conversion is needed — the serving runtime loads
        memory-mapped checkpoints this way, so warm inference models
        share the OS page cache instead of private copies.  Aliased
        read-only arrays are only safe for inference: training writes
        parameters in place.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        dtype = fastpath.default_dtype()
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=dtype)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"checkpoint {value.shape} vs model {parameter.data.shape}"
                )
            parameter.data = value.copy() if copy else value

    def cast_parameters(self, dtype) -> "Module":
        """Convert every parameter's storage to ``dtype`` in place.

        Used when entering a non-default compute precision with an
        already-built model (e.g. fine-tuning a float64 checkpoint in
        float32); gradients and optimizer state follow automatically.
        """
        dtype = np.dtype(dtype)
        for parameter in self.parameters():
            parameter.data = parameter.data.astype(dtype, copy=False)
            parameter.grad = None
        return self

    # -- forward ----------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


@contextlib.contextmanager
def freeze_parameters(module: "Module"):
    """Temporarily set ``requires_grad=False`` on every parameter.

    Freezing does more than excluding parameters from the optimizer: the
    autograd graph stops extending through the frozen stage entirely, so
    backward passes skip it.  This is what makes the paper's
    "decoder-only" fine-tuning cheap (Table 2).
    """
    parameters = module.parameters()
    saved = [parameter.requires_grad for parameter in parameters]
    for parameter in parameters:
        parameter.requires_grad = False
    try:
        yield module
    finally:
        for parameter, state in zip(parameters, saved):
            parameter.requires_grad = state


class ModuleList(Module):
    """A list of sub-modules, registered under their indices."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its items instead")
