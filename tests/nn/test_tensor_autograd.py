"""Autograd engine semantics: accumulation, graph reuse, no_grad."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays as np_arrays

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


def test_backward_requires_scalar_without_grad():
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(RuntimeError):
        (x * 2).backward()


def test_backward_with_explicit_grad():
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    y = x * 3.0
    y.backward(np.full((2, 2), 2.0))
    assert np.allclose(x.grad, 6.0)


def test_backward_grad_shape_checked():
    x = Tensor(np.ones(3), requires_grad=True)
    y = x * 2.0
    with pytest.raises(ValueError):
        y.backward(np.ones(4))


def test_backward_on_constant_rejected():
    x = Tensor(np.ones(3))
    with pytest.raises(RuntimeError):
        x.sum().backward()


def test_grad_accumulates_across_backward_calls():
    x = Tensor(np.ones(3), requires_grad=True)
    (x.sum() * 1.0).backward()
    (x.sum() * 1.0).backward()
    assert np.allclose(x.grad, 2.0)


def test_zero_grad():
    x = Tensor(np.ones(3), requires_grad=True)
    x.sum().backward()
    x.zero_grad()
    assert x.grad is None


def test_diamond_graph_accumulates_once_per_path():
    x = Tensor(np.array([2.0]), requires_grad=True)
    y = x * 3.0
    z = y + y  # two paths through y
    z.backward(np.array([1.0]))
    assert x.grad[0] == pytest.approx(6.0)


def test_shared_subexpression():
    x = Tensor(np.array([1.5]), requires_grad=True)
    y = x * x  # dy/dx = 2x
    z = y * y  # dz/dx = 4x^3
    z.backward(np.array([1.0]))
    assert x.grad[0] == pytest.approx(4 * 1.5**3)


def test_no_grad_blocks_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = x * 2.0
    assert not y.requires_grad
    assert is_grad_enabled()


def test_no_grad_restores_on_exception():
    try:
        with no_grad():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert is_grad_enabled()


def test_detach_breaks_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    y = (x * 2.0).detach()
    assert not y.requires_grad
    assert np.shares_memory(y.data, (x * 2.0).data) is False or True  # data copy-free allowed


def test_constants_get_no_grad():
    x = Tensor(np.ones(3), requires_grad=True)
    c = Tensor(np.full(3, 5.0))
    (x * c).sum().backward()
    assert c.grad is None
    assert np.allclose(x.grad, 5.0)


def test_item_and_numpy():
    t = Tensor(np.array([[3.5]]))
    assert t.item() == 3.5
    assert t.numpy() is t.data


def test_item_requires_single_element():
    with pytest.raises(RuntimeError):
        Tensor(np.ones(3)).backward()
    with pytest.raises(Exception):
        Tensor(np.ones(3)).item()


def test_len_shape_ndim_size():
    t = Tensor(np.zeros((4, 5)))
    assert len(t) == 4
    assert t.shape == (4, 5)
    assert t.ndim == 2
    assert t.size == 20


def test_repr_mentions_shape():
    assert "shape=(2, 2)" in repr(Tensor(np.zeros((2, 2))))


def test_deep_chain_no_recursion_error():
    x = Tensor(np.array([1.0]), requires_grad=True)
    y = x
    for _ in range(3000):
        y = y + 1.0
    y.backward(np.array([1.0]))
    assert x.grad[0] == pytest.approx(1.0)


@given(np_arrays(np.float64, (3, 4), elements=st.floats(-10, 10)))
def test_property_add_commutative(values):
    a = Tensor(values)
    b = Tensor(values[::-1].copy())
    assert np.allclose((a + b).data, (b + a).data)


@given(np_arrays(np.float64, (2, 3), elements=st.floats(-5, 5)))
def test_property_softmax_is_distribution(values):
    out = Tensor(values).softmax(axis=-1).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@given(np_arrays(np.float64, (3, 3), elements=st.floats(-10, 10)))
def test_property_relu_idempotent(values):
    once = Tensor(values).relu().data
    twice = Tensor(once).relu().data
    assert np.allclose(once, twice)


@given(np_arrays(np.float64, (4,), elements=st.floats(-3, 3)))
def test_property_tanh_bounded(values):
    out = Tensor(values).tanh().data
    assert np.all(np.abs(out) <= 1.0)


@given(
    np_arrays(np.float64, (2, 3), elements=st.floats(-10, 10, allow_nan=False)),
    np_arrays(np.float64, (3,), elements=st.floats(-10, 10, allow_nan=False)),
)
def test_property_broadcast_grad_shapes(matrix, vector):
    m = Tensor(matrix, requires_grad=True)
    v = Tensor(vector, requires_grad=True)
    (m * v).sum().backward()
    assert m.grad.shape == matrix.shape
    assert v.grad.shape == vector.shape
    # Vector gradient is the column sums of the matrix.
    assert np.allclose(v.grad, matrix.sum(axis=0))
