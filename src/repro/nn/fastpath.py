"""Runtime switches for the nn hot loop: fused kernels and precision.

Mirrors :mod:`repro.netsim.reference`'s ``legacy_path()`` pattern for the
neural-network engine.  Two independent policies live here:

* **Fused ops** — the default.  Composite operator chains (LayerNorm,
  masked softmax, the attention core, ``Linear``'s matmul+bias, the MSE
  loss, the optimizer updates) collapse into single autograd nodes whose
  analytic backwards replay the exact numpy arithmetic of the composite
  graph, so results — forward values *and* gradients — are
  bit-identical to the pre-fusion engine.  :func:`composite_ops`
  restores the original many-node graphs (the ``fused=False`` escape
  hatch; the throughput benchmark measures one against the other).

* **Precision** — the default compute dtype is ``float64`` (finite
  difference gradchecks stay meaningful, and cached artifacts keep their
  bytes).  ``precision("float32")`` halves matmul memory bandwidth for
  exploratory sweeps; it is opt-in per training run and never the
  default, so float64 cache keys are untouched (see
  ``repro.api.store.precision_key``).
"""

# This module runs inside every fused forward/backward step; the
# hot-loop-alloc lint rule holds the whole file to the no-allocation
# discipline the scratch pool exists to provide.
# repro: hot

from __future__ import annotations

import contextlib

import numpy as np

__all__ = [
    "fused_ops_enabled",
    "set_fused_ops",
    "composite_ops",
    "default_dtype",
    "resolve_dtype",
    "precision",
    "PRECISIONS",
    "scratch",
    "clear_scratch",
]

_FUSED = True

#: Supported precision names (the ``precision=`` knob on training APIs).
PRECISIONS = ("float64", "float32")

_DEFAULT_DTYPE = np.float64

#: (shape, dtype, slot) → reusable buffer for *transient* backward
#: intermediates (batched gradient matmuls before their reductions).
#: Only values that die inside a single op's backward call may live
#: here — anything handed to the autograd engine must be fresh.
_SCRATCH: dict[tuple, np.ndarray] = {}


def scratch(shape: tuple, dtype, slot: int = 0) -> np.ndarray:
    """A reusable uninitialised buffer for one op-internal temporary.

    The pool turns the hot loop's largest allocations (tens of MB of
    batched-matmul gradient intermediates per step) into warm buffer
    reuse.  Distinct ``slot`` values guarantee two simultaneously-live
    temporaries of the same shape never collide.
    """
    key = (shape, np.dtype(dtype).str, slot)
    buffer = _SCRATCH.get(key)
    if buffer is None:
        buffer = np.empty(shape, dtype=dtype)  # repro: allow(hot-loop-alloc): pool miss — the one allocation warm steps exist to avoid
        _SCRATCH[key] = buffer
    return buffer


def clear_scratch() -> None:
    """Release every pooled scratch buffer (tests / memory pressure)."""
    _SCRATCH.clear()


def fused_ops_enabled() -> bool:
    """True when ops build fused single-node graphs (the default)."""
    return _FUSED


def set_fused_ops(enabled: bool) -> None:
    """Globally enable/disable the fused kernels."""
    global _FUSED
    _FUSED = bool(enabled)


@contextlib.contextmanager
def composite_ops():
    """Run the block on the pre-fusion composite operator graphs.

    This is the benchmark/debugging escape hatch: the composite path is
    the original implementation, kept callable so equivalence is always
    one context manager away.
    """
    global _FUSED
    previous = _FUSED
    _FUSED = False
    try:
        yield
    finally:
        _FUSED = previous


def default_dtype() -> np.dtype:
    """The dtype new tensors are stored in (float64 unless overridden)."""
    return _DEFAULT_DTYPE


def resolve_dtype(precision_name) -> np.dtype:
    """Map a precision name (or dtype) to a numpy dtype, validating it."""
    if precision_name is None:
        return np.dtype(np.float64)
    if isinstance(precision_name, str):
        if precision_name not in PRECISIONS:
            raise ValueError(
                f"unknown precision {precision_name!r}; choose from {PRECISIONS}"
            )
        return np.dtype(precision_name)
    dtype = np.dtype(precision_name)
    if dtype.name not in PRECISIONS:
        raise ValueError(f"unsupported compute dtype {dtype}; choose from {PRECISIONS}")
    return dtype


@contextlib.contextmanager
def precision(precision_name):
    """Set the default tensor dtype within the block.

    ``precision("float32")`` makes every tensor (parameters created
    inside the block included) store float32; gradients and optimizer
    state follow the parameter dtype automatically.
    """
    global _DEFAULT_DTYPE
    dtype = resolve_dtype(precision_name)
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = dtype
    try:
        yield
    finally:
        _DEFAULT_DTYPE = previous
