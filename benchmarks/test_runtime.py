"""Benchmark the campaign engine: serial vs. worker-pool execution.

A 4-spec smoke campaign (2 scenarios × 2 seeds; the shared pre-training
stages deduplicate to one task per seed) runs once in-process and once
on a 2-worker pool, each against its own cold artifact store, then once
more warm.  Recorded per mode: wall-clock, task counts and cache
hit/miss totals — the engine's value proposition is that the warm run
does no training at all.
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_results
from repro.api import ArtifactStore
from repro.runtime import CampaignEngine, expand_grid, plan_campaign

SCENARIOS = ("pretrain", "case1")
SEEDS = (0, 1)


def _run_campaign(scale, store, workers: int):
    specs = expand_grid(scenarios=SCENARIOS, scales=[scale.name], seeds=SEEDS)
    plan = plan_campaign(specs)
    engine = CampaignEngine(store=store, workers=workers)
    start = time.perf_counter()
    result = engine.run(plan)
    elapsed = time.perf_counter() - start
    assert not result.failed_tasks(), result.failed_tasks()
    return result, elapsed


def test_campaign_serial_vs_pool(scale, tmp_path, benchmark):
    """Cold serial vs. cold 2-worker vs. warm re-run of one campaign."""
    rows = {}

    def cold_serial():
        return _run_campaign(scale, ArtifactStore(tmp_path / "serial"), workers=1)

    result, elapsed = benchmark.pedantic(cold_serial, rounds=1, iterations=1)
    rows["serial_cold"] = {
        "workers": 1,
        "wall_time_s": elapsed,
        "tasks": result.summary["total"],
        "cache_hits": result.cache_hits,
    }

    result2, elapsed2 = _run_campaign(scale, ArtifactStore(tmp_path / "pool"), workers=2)
    rows["pool2_cold"] = {
        "workers": 2,
        "wall_time_s": elapsed2,
        "tasks": result2.summary["total"],
        "cache_hits": result2.cache_hits,
    }

    warm, warm_elapsed = _run_campaign(scale, ArtifactStore(tmp_path / "pool"), workers=2)
    rows["pool2_warm"] = {
        "workers": 2,
        "wall_time_s": warm_elapsed,
        "tasks": warm.summary["total"],
        "cache_hits": warm.cache_hits,
    }
    save_results("runtime_campaign", {"rows": rows})

    # Both cold runs execute every task; the warm run executes none.
    assert result.summary["executed"] == result.summary["total"]
    assert result2.summary["executed"] == result2.summary["total"]
    assert warm.cache_hits == warm.summary["total"]
    assert warm.summary["executed"] == 0

    print("\nCampaign engine (4 smoke specs -> deduplicated task graph):")
    for name, row in rows.items():
        print(
            f"  {name:12s} workers={row['workers']} tasks={row['tasks']:3d} "
            f"hits={row['cache_hits']:3d} wall={row['wall_time_s']:.2f}s"
        )
