"""Shared benchmark fixtures.

The experiment context (datasets + the shared pre-trained NTT) is
session-scoped: pre-training dominates wall time and all three table
benchmarks reuse it, exactly as the paper reuses one pre-trained model.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` (seconds),
``small`` (default, minutes) or ``paper`` (hours).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.pipeline import ExperimentContext, get_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def context(scale):
    return ExperimentContext(scale)


def save_results(name: str, payload: dict) -> Path:
    """Persist one benchmark's result rows as JSON for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path
