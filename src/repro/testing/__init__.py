"""Test-support utilities: deterministic fault injection for chaos tests.

Nothing in this package runs in production paths unless explicitly armed
through environment variables (see :mod:`repro.testing.faults`).
"""

from repro.testing.faults import (
    FAULT_SPEC_ENV,
    FaultInjected,
    FaultRule,
    maybe_inject,
    parse_fault_spec,
)

__all__ = [
    "FAULT_SPEC_ENV",
    "FaultInjected",
    "FaultRule",
    "maybe_inject",
    "parse_fault_spec",
]
