"""Tests for network construction, routing and forwarding."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.packet import Packet
from repro.netsim.topology import Network
from repro.netsim.units import mbps, milliseconds


def line_network(n_nodes=4):
    sim = Simulator()
    net = Network(sim)
    nodes = [net.add_node(f"n{i}") for i in range(n_nodes)]
    for left, right in zip(nodes, nodes[1:]):
        net.add_link(left, right, mbps(100), milliseconds(1), queue_packets=100)
    net.compute_routes()
    return sim, net, nodes


def test_add_node_assigns_ids():
    net = Network(Simulator())
    a = net.add_node("a")
    b = net.add_node("b")
    assert (a.node_id, b.node_id) == (0, 1)


def test_self_link_rejected():
    net = Network(Simulator())
    a = net.add_node()
    with pytest.raises(ValueError):
        net.add_link(a, a, mbps(1), 0.001, 10)


def test_duplicate_link_rejected():
    net = Network(Simulator())
    a, b = net.add_node(), net.add_node()
    net.add_link(a, b, mbps(1), 0.001, 10)
    with pytest.raises(ValueError):
        net.add_link(a, b, mbps(1), 0.001, 10)


def test_disconnected_routing_rejected():
    net = Network(Simulator())
    net.add_node()
    net.add_node()
    with pytest.raises(ValueError):
        net.compute_routes()


def test_multihop_delivery():
    sim, net, nodes = line_network(4)
    delivered = []
    nodes[3].default_handler = lambda packet: delivered.append(packet)
    packet = Packet(src=0, dst=3, size=1000)
    nodes[0].send(packet)
    sim.run()
    assert len(delivered) == 1
    assert delivered[0].hops == 3


def test_end_to_end_delay_accumulates_hops():
    sim, net, nodes = line_network(3)
    times = []
    nodes[2].default_handler = lambda packet: times.append(sim.now)
    nodes[0].send(Packet(src=0, dst=2, size=1000))
    sim.run()
    # Two hops: 2 * (serialization 80 µs + propagation 1 ms).
    expected = 2 * (1000 * 8 / mbps(100) + milliseconds(1))
    assert times[0] == pytest.approx(expected)


def test_shortest_path_prefers_low_delay():
    sim = Simulator()
    net = Network(sim)
    a, b, c = net.add_node("a"), net.add_node("b"), net.add_node("c")
    net.add_link(a, c, mbps(100), milliseconds(50), 100)  # slow direct
    net.add_link(a, b, mbps(100), milliseconds(1), 100)
    net.add_link(b, c, mbps(100), milliseconds(1), 100)
    net.compute_routes()
    delivered = []
    c.default_handler = lambda packet: delivered.append(packet)
    a.send(Packet(src=0, dst=2, size=100))
    sim.run()
    assert delivered[0].hops == 2  # went via b


def test_no_route_counts_drop():
    sim = Simulator()
    net = Network(sim)
    a = net.add_node()
    net.add_node()
    packet = Packet(src=0, dst=1, size=100)
    assert a.forward(packet) is False
    assert a.packets_dropped_no_route == 1


def test_node_by_name():
    net = Network(Simulator())
    net.add_node("alpha")
    assert net.node_by_name("alpha").name == "alpha"
    with pytest.raises(KeyError):
        net.node_by_name("missing")


def test_link_between():
    net = Network(Simulator())
    a, b, c = net.add_node(), net.add_node(), net.add_node()
    link = net.add_link(a, b, mbps(1), 0.001, 10)
    net.add_link(b, c, mbps(1), 0.001, 10)
    assert net.link_between(a, b) is link
    with pytest.raises(KeyError):
        net.link_between(a, c)


def test_total_drops_aggregates():
    sim = Simulator()
    net = Network(sim)
    a, b = net.add_node(), net.add_node()
    net.add_link(a, b, mbps(1), 0.001, queue_packets=1)
    net.compute_routes()
    for seq in range(10):
        a.send(Packet(src=0, dst=1, size=1500, seq=seq))
    assert net.total_drops() == 8  # 1 transmitting + 1 queued


def test_flow_handler_takes_precedence_over_default():
    sim, net, nodes = line_network(2)
    default_hits, flow_hits = [], []
    nodes[1].default_handler = lambda packet: default_hits.append(packet)
    nodes[1].register_flow(7, lambda packet: flow_hits.append(packet))
    nodes[0].send(Packet(src=0, dst=1, size=100, flow_id=7))
    nodes[0].send(Packet(src=0, dst=1, size=100, flow_id=8))
    sim.run()
    assert len(flow_hits) == 1
    assert len(default_hits) == 1


def test_duplicate_flow_registration_rejected():
    sim, net, nodes = line_network(2)
    nodes[1].register_flow(7, lambda packet: None)
    with pytest.raises(ValueError):
        nodes[1].register_flow(7, lambda packet: None)


def test_loopback_send_delivers_locally():
    sim, net, nodes = line_network(2)
    delivered = []
    nodes[0].default_handler = lambda packet: delivered.append(packet)
    nodes[0].send(Packet(src=0, dst=0, size=100))
    sim.run()
    assert len(delivered) == 1
