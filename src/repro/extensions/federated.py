"""Collaborative pre-training via federated averaging (§5).

The paper argues that pre-training at scale will need data no single
organisation can share: "Organizations could keep their data private and
only share pre-trained models, which can be combined into a final
collectively pre-trained model."  This module implements exactly that
loop with FedAvg [McMahan et al. 2017]:

1. every *client* holds a private dataset bundle (its own traces);
2. each round, clients copy the global weights, train locally for a few
   epochs, and return their updated weights;
3. the server averages the weights (weighted by local dataset size) into
   the next global model.

Only state dicts cross the client boundary — never packets.

The loop is also exposed as the registered ``federated_pretrain``
pipeline stage (see :mod:`repro.extensions.stages`), so federated
pre-training plans, caches (the collective model lands in the checkpoint
store), parallelises and manifests through the :mod:`repro.runtime`
campaign engine exactly like the built-in pipeline —
``repro sweep --stages federated_pretrain`` runs it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import evaluate_delay
from repro.core.features import FeaturePipeline
from repro.core.model import NTTConfig, NTTForDelay
from repro.core.pretrain import TrainSettings, make_delay_loaders, _delay_forward
from repro.datasets.generation import DatasetBundle
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer

__all__ = ["federated_average", "FederatedTrainer", "FederatedRound"]


def federated_average(states: list[dict], weights: list[float] | None = None) -> dict:
    """Weighted average of parameter state dicts (FedAvg's server step).

    All states must share exactly the same keys and shapes; the weights
    (typically local dataset sizes) are normalised internally.
    """
    if not states:
        raise ValueError("need at least one state dict to average")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError(f"{len(states)} states but {len(weights)} weights")
    if any(weight <= 0 for weight in weights):
        raise ValueError("weights must be positive")
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise ValueError("state dicts have mismatched parameter names")
    total = float(sum(weights))
    averaged = {}
    for key in keys:
        stacked = [np.asarray(state[key], dtype=np.float64) for state in states]
        shapes = {array.shape for array in stacked}
        if len(shapes) != 1:
            raise ValueError(f"parameter {key!r} has mismatched shapes {shapes}")
        averaged[key] = sum(
            (weight / total) * array for weight, array in zip(weights, stacked)
        )
    return averaged


@dataclass
class FederatedRound:
    """Telemetry for one federated round."""

    round_index: int
    client_losses: list[float]
    global_test_mse: float


@dataclass
class FederatedTrainer:
    """Runs FedAvg pre-training over several private dataset bundles.

    Args:
        config: NTT configuration shared by all parties.
        clients: one :class:`DatasetBundle` per organisation.
        settings: local-training hyper-parameters; ``settings.epochs`` is
            interpreted as *local epochs per round*.
        pipeline: shared feature pipeline.  In a real deployment the
            normalisation statistics would be agreed upon out-of-band;
            here they are fitted on the first client's training split.
    """

    config: NTTConfig
    clients: list[DatasetBundle]
    settings: TrainSettings = field(default_factory=TrainSettings)
    pipeline: FeaturePipeline | None = None

    def __post_init__(self):
        if not self.clients:
            raise ValueError("federated training needs at least one client")
        if self.pipeline is None:
            self.pipeline = FeaturePipeline().fit(self.clients[0].train)
        self.global_model = NTTForDelay(self.config)
        self.rounds: list[FederatedRound] = []

    def _train_client(self, bundle: DatasetBundle, state: dict) -> tuple[dict, float]:
        """One client's local update: load global weights, train, return."""
        model = NTTForDelay(self.config)
        model.load_state_dict(state)
        train_loader, val_loader = make_delay_loaders(
            self.pipeline, bundle.train, bundle.val, self.settings
        )
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=self.settings.lr),
            mse_loss,
            forward_fn=_delay_forward,
            grad_clip=self.settings.grad_clip,
        )
        history = trainer.fit(
            train_loader, val_loader, epochs=self.settings.epochs, patience=None
        )
        return model.state_dict(), history.final_train_loss

    def run_round(self, evaluation_bundle: DatasetBundle | None = None) -> FederatedRound:
        """Execute one FedAvg round across all clients."""
        global_state = self.global_model.state_dict()
        client_states, client_losses, client_weights = [], [], []
        for bundle in self.clients:
            state, loss = self._train_client(bundle, copy.deepcopy(global_state))
            client_states.append(state)
            client_losses.append(loss)
            client_weights.append(float(len(bundle.train)))
        merged = federated_average(client_states, client_weights)
        self.global_model.load_state_dict(merged)
        test_bundle = evaluation_bundle if evaluation_bundle is not None else self.clients[0]
        test_mse = evaluate_delay(self.global_model, self.pipeline, test_bundle.test)
        outcome = FederatedRound(
            round_index=len(self.rounds), client_losses=client_losses, global_test_mse=test_mse
        )
        self.rounds.append(outcome)
        return outcome

    def run(self, n_rounds: int, evaluation_bundle: DatasetBundle | None = None) -> list[FederatedRound]:
        """Run several rounds; returns their telemetry."""
        if n_rounds <= 0:
            raise ValueError(f"n_rounds must be positive, got {n_rounds}")
        return [self.run_round(evaluation_bundle) for _ in range(n_rounds)]
