"""Baseline round-trips: grandfather, match, expire, and re-surface."""

import json

import pytest

from repro.lint import run_lint
from repro.lint.baseline import load_baseline

BAD_STAMP = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)
CLEAN_STAMP = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.perf_counter()\n"
)


@pytest.fixture()
def project(tmp_path):
    package = tmp_path / "proj" / "netsim"
    package.mkdir(parents=True)
    (package / "mod.py").write_text(BAD_STAMP, encoding="utf-8")
    return tmp_path / "proj", tmp_path / "baseline.json"


def test_update_grandfathers_current_findings(project):
    root, baseline = project
    report = run_lint(
        [root], baseline_path=baseline, update_baseline=True
    )
    assert report.findings == []
    assert len(report.baselined) == 1
    assert report.exit_code == 0

    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1
    (entry,) = payload["entries"]
    assert entry["rule"] == "determinism"
    assert entry["path"] == "netsim/mod.py"
    assert entry["snippet"] == "return time.time()"
    assert entry["count"] == 1


def test_baselined_finding_does_not_fail_the_run(project):
    root, baseline = project
    run_lint([root], baseline_path=baseline, update_baseline=True)

    report = run_lint([root], baseline_path=baseline)
    assert report.findings == []
    assert len(report.baselined) == 1
    assert report.stale_baseline == []
    assert report.exit_code == 0


def test_fixed_code_reports_stale_entry_and_update_expires_it(project):
    root, baseline = project
    run_lint([root], baseline_path=baseline, update_baseline=True)

    (root / "netsim" / "mod.py").write_text(CLEAN_STAMP, encoding="utf-8")
    report = run_lint([root], baseline_path=baseline)
    assert report.findings == []
    assert report.baselined == []
    assert len(report.stale_baseline) == 1
    assert report.stale_baseline[0]["snippet"] == "return time.time()"
    assert report.exit_code == 0  # stale entries warn, they don't fail

    run_lint([root], baseline_path=baseline, update_baseline=True)
    assert json.loads(baseline.read_text())["entries"] == []
    assert load_baseline(baseline) == {}


def test_new_finding_is_not_absorbed_by_the_baseline(project):
    root, baseline = project
    run_lint([root], baseline_path=baseline, update_baseline=True)

    (root / "netsim" / "other.py").write_text(BAD_STAMP, encoding="utf-8")
    report = run_lint([root], baseline_path=baseline)
    assert [f.path for f in report.findings] == ["netsim/other.py"]
    assert [f.path for f in report.baselined] == ["netsim/mod.py"]
    assert report.exit_code == 1


def test_count_matching_absorbs_only_that_many(project):
    root, baseline = project
    duplicated = BAD_STAMP + "\n\ndef stamp2():\n    return time.time()\n"
    (root / "netsim" / "mod.py").write_text(duplicated, encoding="utf-8")
    run_lint([root], baseline_path=baseline, update_baseline=True)
    (entry,) = json.loads(baseline.read_text())["entries"]
    assert entry["count"] == 2

    # A third identical call on a new line exceeds the grandfathered count.
    tripled = duplicated + "\n\ndef stamp3():\n    return time.time()\n"
    (root / "netsim" / "mod.py").write_text(tripled, encoding="utf-8")
    report = run_lint([root], baseline_path=baseline)
    assert len(report.baselined) == 2
    assert len(report.findings) == 1
    assert report.exit_code == 1


def test_discovery_finds_nearest_baseline_above_root(project):
    root, _ = project
    committed = root.parent / "lint-baseline.json"
    run_lint([root], baseline_path=committed, update_baseline=True)

    report = run_lint([root])  # no explicit path: discovery walks up
    assert report.baseline_path == str(committed)
    assert report.findings == []
    assert report.exit_code == 0


def test_no_baseline_flag_reports_everything(project):
    root, baseline = project
    run_lint([root], baseline_path=baseline, update_baseline=True)
    report = run_lint([root], use_baseline=False)
    assert len(report.findings) == 1
    assert report.exit_code == 1


def test_unsupported_baseline_version_is_an_error(project):
    root, baseline = project
    baseline.write_text('{"version": 99, "entries": []}', encoding="utf-8")
    with pytest.raises(ValueError, match="unsupported baseline version"):
        run_lint([root], baseline_path=baseline)
