"""Nodes: hosts and routers.

A node receives packets and either delivers them locally (packets
addressed to it) or forwards them along the next hop from its forwarding
table.  Hosts additionally run applications (message senders, TCP
endpoints, sinks) registered per flow id.
"""

from __future__ import annotations

from typing import Callable

from repro.netsim.core import Simulator
from repro.netsim.link import Channel, Link
from repro.netsim.packet import Packet

__all__ = ["Node"]


class Node:
    """A network node.

    Attributes:
        node_id: integer id, unique within a :class:`Network`.
        name: human-readable label used in queue/link names.
        forwarding: maps destination node id → egress :class:`Channel`.
        flow_handlers: maps flow id → callable invoked with each locally
            delivered packet of that flow.
        default_handler: fallback for flows without a dedicated handler.
    """

    __slots__ = (
        "sim",
        "node_id",
        "name",
        "links",
        "forwarding",
        "flow_handlers",
        "default_handler",
        "packets_forwarded",
        "packets_delivered",
        "packets_dropped_no_route",
        "_fh_get",
    )

    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"n{node_id}"
        self.links: list[Link] = []
        self.forwarding: dict[int, Channel] = {}
        self.flow_handlers: dict[int, Callable[[Packet], None]] = {}
        self._fh_get = self.flow_handlers.get
        self.default_handler: Callable[[Packet], None] | None = None
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped_no_route = 0

    def attach_link(self, link: Link) -> None:
        """Register ``link`` as incident to this node."""
        self.links.append(link)

    def set_route(self, dst_id: int, channel: Channel) -> None:
        """Install a forwarding entry: packets to ``dst_id`` exit via ``channel``."""
        self.forwarding[dst_id] = channel

    def register_flow(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        """Deliver local packets of ``flow_id`` to ``handler``."""
        if flow_id in self.flow_handlers:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self.flow_handlers[flow_id] = handler

    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from a channel (or locally).

        Runs once per store-and-forward hop, so local delivery and
        forwarding are inlined rather than dispatched through
        :meth:`forward` / ``_deliver``.
        """
        packet.hops += 1
        dst = packet.dst
        if dst == self.node_id:
            self.packets_delivered += 1
            handler = self._fh_get(packet.flow_id, self.default_handler)
            if handler is not None:
                handler(packet)
            return
        try:
            channel = self.forwarding[dst]
        except KeyError:
            self.packets_dropped_no_route += 1
            return
        self.packets_forwarded += 1
        channel.send(packet)

    def send(self, packet: Packet) -> bool:
        """Inject a locally generated packet into the network.

        Sets the packet's ``send_time`` and forwards it.  Returns False
        if the first hop dropped it.
        """
        packet.send_time = self.sim._now
        dst = packet.dst
        if dst == self.node_id:
            # Loopback: deliver after the current event completes.
            self.sim.post(0.0, self._deliver, (packet,))
            return True
        try:
            channel = self.forwarding[dst]
        except KeyError:
            self.packets_dropped_no_route += 1
            return False
        self.packets_forwarded += 1
        return channel.send(packet)

    def forward(self, packet: Packet) -> bool:
        """Forward ``packet`` toward its destination.

        Packets without a forwarding entry are dropped (counted), which
        turns routing bugs into visible statistics instead of crashes.
        """
        try:
            channel = self.forwarding[packet.dst]
        except KeyError:
            self.packets_dropped_no_route += 1
            return False
        self.packets_forwarded += 1
        return channel.send(packet)

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        handler = self.flow_handlers.get(packet.flow_id, self.default_handler)
        if handler is not None:
            handler(packet)

    def __repr__(self) -> str:
        return f"Node({self.node_id}, {self.name!r})"
