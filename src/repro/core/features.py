"""Feature selection and normalisation for the NTT.

The proof-of-concept NTT uses minimal information per packet (§3):
timestamp, packet size, receiver ID and end-to-end delay.  The paper's
ablations drop individual features ("without packet size", "without
delay", and case 2's "without addressing information"); a
:class:`FeatureSpec` expresses those variants.

:class:`FeaturePipeline` owns the scalers.  Statistics come from the
pre-training split and are reused during fine-tuning — a fine-tuned
encoder expects inputs on the scale it was pre-trained with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.normalize import FeatureScaler
from repro.datasets.windows import RAW_FEATURES, WindowDataset

__all__ = ["FeatureSpec", "FeaturePipeline", "DELAY_COLUMN"]

#: Index of the delay column in the raw feature layout.
DELAY_COLUMN = RAW_FEATURES.index("delay")


@dataclass(frozen=True)
class FeatureSpec:
    """Which raw inputs the model sees.

    The full NTT uses everything; ablations switch individual inputs
    off.  ``use_time`` is kept for completeness (no paper ablation).
    """

    use_time: bool = True
    use_size: bool = True
    use_delay: bool = True
    use_receiver: bool = True

    @property
    def continuous_columns(self) -> tuple[int, ...]:
        """Indices into the raw feature columns this spec keeps."""
        columns = []
        if self.use_time:
            columns.append(RAW_FEATURES.index("rel_time"))
        if self.use_size:
            columns.append(RAW_FEATURES.index("size"))
        if self.use_delay:
            columns.append(RAW_FEATURES.index("delay"))
        if not columns:
            raise ValueError("FeatureSpec keeps no continuous features at all")
        return tuple(columns)

    @property
    def n_continuous(self) -> int:
        return len(self.continuous_columns)

    @property
    def delay_position(self) -> int | None:
        """Position of the delay column within the *selected* features,
        or None when delay is ablated."""
        if not self.use_delay:
            return None
        return self.continuous_columns.index(DELAY_COLUMN)

    @classmethod
    def full(cls) -> "FeatureSpec":
        return cls()

    @classmethod
    def without_size(cls) -> "FeatureSpec":
        """Table 1 ablation: "Without packet size"."""
        return cls(use_size=False)

    @classmethod
    def without_delay(cls) -> "FeatureSpec":
        """Table 1 ablation: "Without delay"."""
        return cls(use_delay=False)

    @classmethod
    def without_receiver(cls) -> "FeatureSpec":
        """Case 2 ablation: "Without addressing information"."""
        return cls(use_receiver=False)


class FeaturePipeline:
    """Normalises window datasets into model-ready arrays.

    Call :meth:`fit` once on the pre-training split, then
    :meth:`transform` on any dataset.  Targets:

    * delay — z-scored with the *feature* delay statistics, so the MSE
      converts back to seconds² by multiplying with ``delay_std ** 2``.
    * MCT — natural log, then z-scored with statistics fitted on the
      first fine-tuning dataset seen ("processed on a logarithmic scale
      to limit the impact of outliers", §4).
    """

    def __init__(self):
        self.feature_scaler = FeatureScaler()
        self.mct_scaler = FeatureScaler()
        self.message_size_scaler = FeatureScaler()

    # -- fitting -----------------------------------------------------------

    def fit(self, dataset: WindowDataset) -> "FeaturePipeline":
        """Fit feature statistics (pre-training data)."""
        self.feature_scaler.fit(dataset.features)
        sizes = dataset.message_size[dataset.message_size > 0]
        if sizes.size == 0:
            raise ValueError("dataset has no message sizes to fit on")
        self.message_size_scaler.fit(np.log(sizes)[:, None])
        return self

    def fit_mct(self, dataset: WindowDataset) -> "FeaturePipeline":
        """Fit the MCT target scaler (first fine-tuning dataset)."""
        valid = dataset.mct_target[np.isfinite(dataset.mct_target) & (dataset.mct_target > 0)]
        if valid.size == 0:
            raise ValueError("dataset has no completed messages to fit the MCT scaler")
        self.mct_scaler.fit(np.log(valid)[:, None])
        return self

    # -- conversions -----------------------------------------------------------

    @property
    def delay_std(self) -> float:
        """Std of raw delays (seconds); converts normalised MSE to s²."""
        return float(self.feature_scaler.std[DELAY_COLUMN])

    @property
    def mct_log_std(self) -> float:
        """Std of log-MCTs; converts normalised MSE to (log-seconds)²."""
        return float(self.mct_scaler.std[0])

    def transform_features(self, dataset: WindowDataset) -> np.ndarray:
        """Normalised continuous features, shape ``(n, window, 3)``.

        All three columns are produced; the model selects those its
        :class:`FeatureSpec` keeps.
        """
        return self.feature_scaler.transform(dataset.features)

    def transform_delay_target(self, dataset: WindowDataset) -> np.ndarray:
        """Normalised delay targets, shape ``(n,)``."""
        mean = self.feature_scaler.mean[DELAY_COLUMN]
        return (dataset.delay_target - mean) / self.delay_std

    def transform_mct_target(self, dataset: WindowDataset) -> np.ndarray:
        """Normalised log-MCT targets (requires completed messages)."""
        mct = dataset.mct_target
        if np.any(~np.isfinite(mct)) or np.any(mct <= 0):
            raise ValueError(
                "MCT targets contain incomplete messages; call "
                "dataset.with_completed_messages_only() first"
            )
        return self.mct_scaler.transform(np.log(mct)[:, None])[:, 0]

    def transform_message_size(self, dataset: WindowDataset) -> np.ndarray:
        """Normalised log message sizes, shape ``(n,)``."""
        sizes = np.maximum(dataset.message_size, 1.0)
        return self.message_size_scaler.transform(np.log(sizes)[:, None])[:, 0]

    # -- unit conversion for reporting ------------------------------------------

    def delay_mse_to_seconds2(self, normalised_mse: float) -> float:
        """Normalised-unit delay MSE → seconds²."""
        return float(normalised_mse) * self.delay_std**2

    def mct_mse_to_log2(self, normalised_mse: float) -> float:
        """Normalised-unit MCT MSE → (natural-log seconds)²."""
        return float(normalised_mse) * self.mct_log_std**2
