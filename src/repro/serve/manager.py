"""Warm-model management: checkpoint resolution, LRU cache, precision.

The serving runtime never rebuilds a model per request.  A
:class:`ModelManager` resolves model *refs* — filesystem checkpoint
paths or content-addressed artifact-store keys — into warm
:class:`~repro.api.predictor.Predictor` instances, keeps the most
recently used ones alive in a bounded LRU, and guards each ref's load
with its own lock so a cold model is only ever materialised once even
under a thundering herd of first requests.

Checkpoint payloads are loaded through
:func:`repro.nn.serialize.load_state_mmap`: checkpoints written with
``compress=False`` serve their parameters as read-only memory maps
(shared page cache, lazy fault-in), and compressed ones transparently
fall back to a normal read.  The PR 5 ``precision="float32"`` policy is
applied at load time, so a float32 manager stores and runs every model
at half the memory bandwidth.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path

from repro.api.predictor import Predictor
from repro.api.store import ArtifactStore
from repro.nn import fastpath

__all__ = ["ModelManager", "ModelNotFound", "STORE_PREFIX"]

#: Ref prefix selecting the artifact store: ``store:<checkpoint-key>``.
STORE_PREFIX = "store:"


class ModelNotFound(Exception):
    """A model ref that resolves to no checkpoint (HTTP 404 upstream)."""


class ModelManager:
    """Resolves model refs to warm, LRU-cached predictors.

    Args:
        store: optional :class:`ArtifactStore` backing ``store:<key>``
            refs (bare refs that are no file on disk are also tried as
            store keys when a store is configured).
        capacity: maximum number of warm models kept alive.
        precision: compute dtype models are loaded in (``float64`` /
            ``float32``; the PR 5 policy).
        batch_size: forward chunk size handed to each predictor — the
            serving default is sized so one micro-batch flush runs as a
            single fused forward pass.
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        capacity: int = 4,
        precision: str = "float64",
        batch_size: int = 1024,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.store = store
        self.capacity = capacity
        self.precision = fastpath.resolve_dtype(precision).name
        self.batch_size = batch_size
        self._lock = threading.Lock()
        self._models: OrderedDict[str, Predictor] = OrderedDict()
        self._loading: dict[str, threading.Lock] = {}
        self.loads_total = 0
        self.evictions_total = 0

    def __repr__(self) -> str:
        return (
            f"ModelManager(capacity={self.capacity}, precision={self.precision!r}, "
            f"warm={len(self._models)})"
        )

    # -- resolution ---------------------------------------------------------------

    def resolve(self, ref: str) -> Path:
        """The checkpoint file a ref names, or raise :class:`ModelNotFound`.

        Resolution order: explicit ``store:<key>`` refs hit the artifact
        store only; anything else is first a filesystem path, then (when
        a store is configured) a checkpoint key.
        """
        if ref.startswith(STORE_PREFIX):
            key = ref[len(STORE_PREFIX):]
            if self.store is None:
                raise ModelNotFound(
                    f"model ref {ref!r} needs an artifact store, but none is configured"
                )
            path = self.store.get("checkpoints", key)
            if path is None:
                raise ModelNotFound(f"no checkpoint {key!r} in {self.store.root}")
            return path
        path = Path(ref)
        if path.exists():
            return path
        if self.store is not None:
            stored = self.store.get("checkpoints", ref)
            if stored is not None:
                return stored
        raise ModelNotFound(
            f"model ref {ref!r} is neither a checkpoint file nor a stored key"
        )

    # -- warm cache ---------------------------------------------------------------

    def get(self, ref: str) -> Predictor:
        """The warm predictor for a ref, loading (and evicting) as needed."""
        with self._lock:
            predictor = self._models.get(ref)
            if predictor is not None:
                self._models.move_to_end(ref)
                return predictor
            # One loader per ref: herd followers block on the ref's own
            # lock, not on other models' loads or the manager lock.
            ref_lock = self._loading.setdefault(ref, threading.Lock())
        with ref_lock:
            with self._lock:
                predictor = self._models.get(ref)
                if predictor is not None:
                    self._models.move_to_end(ref)
                    return predictor
            predictor = self._load(ref)
            with self._lock:
                self._models[ref] = predictor
                self._models.move_to_end(ref)
                self.loads_total += 1
                while len(self._models) > self.capacity:
                    self._models.popitem(last=False)
                    self.evictions_total += 1
            return predictor

    def _load(self, ref: str) -> Predictor:
        path = self.resolve(ref)
        try:
            return Predictor.from_checkpoint(
                path,
                batch_size=self.batch_size,
                precision=self.precision,
                mmap=True,
            )
        except FileNotFoundError as error:  # raced a concurrent delete
            raise ModelNotFound(str(error)) from None

    def warm_refs(self) -> list[str]:
        """Currently warm refs, least → most recently used."""
        with self._lock:
            return list(self._models)

    def evict(self, ref: str) -> bool:
        """Drop one warm model; returns whether it was loaded."""
        with self._lock:
            dropped = self._models.pop(ref, None)
            if dropped is not None:
                self.evictions_total += 1
            return dropped is not None

    def describe(self, ref: str) -> dict:
        """JSON-ready description of one warm model (``/models`` rows)."""
        predictor = self.get(ref)
        config = predictor.model.config
        return {
            "ref": ref,
            "task": predictor.task,
            "precision": predictor.precision,
            "min_window_len": config.aggregation.seq_len,
            "parameters": predictor.model.num_parameters(),
            "batch_size": predictor.batch_size,
        }
