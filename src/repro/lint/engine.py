"""The lint engine: collect files, run rules, apply suppressions and
baseline, produce a :class:`LintReport`.

Scope paths are computed relative to the nearest non-package ancestor
(for files inside a package) or the passed directory (for plain trees
like the test fixtures), so rule scopes like ``serve/`` match both
``repro/serve/http.py`` in the real tree and ``serve/bad.py`` in a
fixture tree.  Matching is segment-aware: a scope prefix matches at the
start of the path or at any ``/`` boundary.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from .baseline import apply_baseline, discover_baseline, load_baseline, save_baseline
from .context import load_module
from .findings import Finding
from .rules import LINT_RULES, LintRuleRegistry

__all__ = [
    "LintReport",
    "REPORT_VERSION",
    "changed_files",
    "collect_files",
    "default_root",
    "run_lint",
]

#: JSON report schema version.  v2 added per-finding ``chain`` (the
#: interprocedural source→sink witness) and guarantees ``stale_baseline``
#: is present in JSON output, not only rendered in text mode.
REPORT_VERSION = 2


def default_root() -> Path:
    """The repro package itself — what a bare ``repro lint`` scans."""
    return Path(__file__).resolve().parent.parent


def _package_root(directory: Path) -> Path:
    """Walk up while the directory is a package, returning the first
    non-package ancestor (files are scoped relative to it)."""
    current = directory
    while (current / "__init__.py").is_file():
        parent = current.parent
        if parent == current:
            break
        current = parent
    return current


def collect_files(paths: Sequence[Path]) -> List[Tuple[Path, str]]:
    """Expand inputs into sorted (file, scope_path) pairs."""
    collected: List[Tuple[Path, str]] = []
    for path in paths:
        path = Path(path).resolve()
        if path.is_dir():
            root = (
                _package_root(path)
                if (path / "__init__.py").is_file()
                else path
            )
            files = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.is_file():
            root = _package_root(path.parent)
            files = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for file in files:
            collected.append((file, file.relative_to(root).as_posix()))
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique = []
    for file, scope in sorted(collected, key=lambda pair: pair[1]):
        if file not in seen:
            seen.add(file)
            unique.append((file, scope))
    return unique


def _git(args: List[str], cwd: Path) -> Optional[str]:
    try:
        result = subprocess.run(
            ["git"] + args,
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    return result.stdout


def changed_files(anchor: Path) -> Optional[Set[Path]]:
    """Files differing from the merge base, for ``repro lint --changed``.

    Resolved against the repository containing ``anchor``: the diff of
    the working tree against ``merge-base HEAD <main>`` (first of
    origin/main, origin/master, main, master that exists; bare HEAD as
    the fallback, which reduces to uncommitted changes), plus untracked
    files.  Returns None when ``anchor`` is not inside a git work tree.
    """
    cwd = anchor if anchor.is_dir() else anchor.parent
    toplevel = _git(["rev-parse", "--show-toplevel"], cwd)
    if toplevel is None:
        return None
    repo = Path(toplevel.strip())
    base = "HEAD"
    for ref in ("origin/main", "origin/master", "main", "master"):
        merge_base = _git(["merge-base", "HEAD", ref], cwd)
        if merge_base is not None:
            base = merge_base.strip()
            break
    changed: Set[Path] = set()
    diff = _git(["diff", "--name-only", "-z", base], cwd)
    untracked = _git(
        ["ls-files", "--others", "--exclude-standard", "-z"], cwd
    )
    for listing in (diff, untracked):
        if listing is None:
            continue
        for name in listing.split("\0"):
            if name:
                path = (repo / name).resolve()
                if path.is_file():
                    changed.add(path)
    return changed


@dataclass
class LintReport:
    """Everything one lint run decided, ready for text or JSON."""

    roots: List[str]
    findings: List[Finding] = field(default_factory=list)  # active
    suppressed: List[Tuple[Finding, object]] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    baseline_path: Optional[str] = None

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "roots": self.roots,
            "rules": [
                {
                    "name": rule.name,
                    "severity": rule.severity,
                    "description": rule.description,
                    "scopes": list(rule.scopes),
                }
                for rule in LINT_RULES.entries()
            ],
            "findings": [f.to_dict() for f in self.findings],
            "counts": {
                "active": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
            "baseline": self.baseline_path,
            "stale_baseline": self.stale_baseline,
        }

    def format_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        if self.stale_baseline:
            lines.append("")
            lines.append(
                f"{len(self.stale_baseline)} stale baseline entr"
                f"{'y' if len(self.stale_baseline) == 1 else 'ies'} "
                "(fixed code still grandfathered — run --baseline-update):"
            )
            for entry in self.stale_baseline:
                lines.append(
                    f"  {entry['rule']} {entry['path']}: {entry['snippet']!r}"
                )
        summary = (
            f"{len(self.findings)} finding"
            f"{'' if len(self.findings) == 1 else 's'}"
            f" ({len(self.suppressed)} suppressed,"
            f" {len(self.baselined)} baselined)"
        )
        lines.append(summary)
        return "\n".join(lines)


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    *,
    rule_names: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
    update_baseline: bool = False,
    changed_only: bool = False,
    registry: LintRuleRegistry = LINT_RULES,
) -> LintReport:
    """Lint ``paths`` (default: the installed repro package).

    ``rule_names`` restricts to a subset (unknown names raise
    ``ValueError``).  With ``use_baseline`` the nearest committed
    ``lint-baseline.json`` above a lint root is honoured unless an
    explicit ``baseline_path`` is given; ``update_baseline`` rewrites
    that file from this run and reports everything as baselined.

    ``changed_only`` restricts per-file rules to files differing from
    the git merge base (the pre-commit fast path); stage fingerprints
    are still checked repo-wide, because an edit to an unchanged-file
    helper cannot invalidate a pin but an edit anywhere in a stage's
    callee closure can — and that closure is only visible globally.
    """
    scan_paths = [Path(p) for p in (paths or [default_root()])]
    if rule_names:
        rules = [registry.get(name) for name in rule_names]
    else:
        rules = registry.entries()
    known = tuple(registry.names())

    collected = collect_files(scan_paths)
    if changed_only:
        changed = changed_files(scan_paths[0])
        if changed is not None:
            collected = [
                (file, scope) for file, scope in collected if file in changed
            ]

    raw: List[Finding] = []
    suppressed: List[Tuple[Finding, object]] = []
    for file, scope in collected:
        try:
            module = load_module(file, scope, known)
        except SyntaxError as exc:
            raw.append(Finding(
                path=scope,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="parse",
                message=f"file does not parse: {exc.msg}",
                severity="error",
                snippet=(exc.text or "").strip(),
            ))
            continue
        for rule in rules:
            if not rule.applies_to(scope):
                continue
            for finding in rule.check(module):
                excuse = module.is_suppressed(finding)
                if excuse is not None:
                    suppressed.append((finding, excuse))
                else:
                    raw.append(finding)
    if changed_only:
        # Fingerprints stay repo-wide: run the whole-tree check (which
        # also sees unpinned stages) when a pin file is committed, and
        # drop the per-module findings it duplicates.
        from .fingerprint import check_fingerprints, discover_fingerprints

        if discover_fingerprints(scan_paths) is not None:
            fp_findings, _, _ = check_fingerprints(scan_paths)
            raw.extend(fp_findings)
    raw.sort()
    raw = list(dict.fromkeys(raw))

    resolved_baseline: Optional[Path] = None
    if baseline_path is not None:
        resolved_baseline = Path(baseline_path)
    elif use_baseline:
        resolved_baseline = discover_baseline(scan_paths)

    if update_baseline:
        if resolved_baseline is None:
            resolved_baseline = Path.cwd() / "lint-baseline.json"
        save_baseline(resolved_baseline, raw)
        return LintReport(
            roots=[str(p) for p in scan_paths],
            findings=[],
            suppressed=suppressed,
            baselined=raw,
            stale_baseline=[],
            baseline_path=str(resolved_baseline),
        )

    if resolved_baseline is not None and resolved_baseline.is_file():
        baseline = load_baseline(resolved_baseline)
        active, baselined, stale = apply_baseline(raw, baseline)
    else:
        active, baselined, stale = raw, [], []

    return LintReport(
        roots=[str(p) for p in scan_paths],
        findings=active,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        baseline_path=(
            str(resolved_baseline)
            if resolved_baseline is not None and resolved_baseline.is_file()
            else None
        ),
    )
