"""Table 1 — Mean squared error for all models and tasks.

Paper values (×10⁻³; delay in s², MCT on log scale):

    |                      | Pre-train delay | FT(10%) delay | FT(10%) MCT |
    | NTT pre-trained      | 0.072           | 0.097         | 65          |
    | NTT from scratch     | —               | 0.313         | 117         |
    | Last observed        | 0.142           | 0.121         | 2189        |
    | EWMA                 | 0.259           | 0.211         | 1147        |
    | No aggregation       | 0.258           | 0.430         | 61          |
    | Fixed aggregation    | 0.055           | 0.134         | 115         |
    | Without packet size  | 0.001           | 8.688         | 94          |
    | Without delay        | 15.797          | 10.898        | 802         |

Expected *shape* at our scale: pre-trained beats from-scratch and both
naive baselines on the fine-tuned delay task; the without-delay ablation
is far worse than every delay-aware model.
"""

from __future__ import annotations

from benchmarks.conftest import save_results
from repro.core.pipeline import format_rows, run_table1


def test_table1_all_models_and_tasks(scale, context, benchmark):
    rows = benchmark.pedantic(
        lambda: run_table1(scale, context), rounds=1, iterations=1
    )
    save_results("table1", {"rows": rows})
    print("\nTable 1 (MSE; delay in s^2 x1e-3, MCT in log^2 x1e-3):")
    print(format_rows(rows))

    for row in rows.values():
        for column, value in row.items():
            assert value is None or value >= 0, (column, value)

    if scale.name == "smoke":
        return  # smoke scale validates plumbing, not learning quality

    pretrained = rows["ntt_pretrained"]
    scratch = rows["ntt_from_scratch"]
    # Headline claim: pre-training generalizes better than training from
    # scratch on the small fine-tuning dataset.
    assert pretrained["finetune_delay_mse"] <= scratch["finetune_delay_mse"]
    # The pre-trained NTT beats the naive EWMA baseline on delay.
    assert pretrained["finetune_delay_mse"] < rows["ewma"]["finetune_delay_mse"]
    # Removing the delay input destroys delay prediction (paper: 15.8 vs
    # 0.072): worst pre-training MSE of all model rows by far.
    assert rows["without_delay"]["pretrain_delay_mse"] > 3 * pretrained["pretrain_delay_mse"]
    # The NTT learns sensible MCTs: it beats both naive baselines on the
    # new task (paper: 65 vs 2189/1147).
    assert pretrained["finetune_mct_mse"] < rows["last_observed"]["finetune_mct_mse"]
    assert pretrained["finetune_mct_mse"] < rows["ewma"]["finetune_mct_mse"]
