"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel``
package, so PEP 517 editable installs fail with ``invalid command
'bdist_wheel'``.  This shim enables ``pip install -e . --no-use-pep517``.
Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
