"""Shared fixtures.

Heavy artefacts (simulated traces, smoke datasets) are session-scoped:
they are deterministic, so sharing them across tests is safe and keeps
the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generation import generate_dataset
from repro.datasets.windows import WindowConfig
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind, run_scenario


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def smoke_trace():
    """One small pre-training trace shared across the suite."""
    return run_scenario(ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=7))


@pytest.fixture(scope="session")
def smoke_case2_trace():
    return run_scenario(ScenarioConfig.smoke(ScenarioKind.CASE2, seed=7))


@pytest.fixture(scope="session")
def smoke_bundle():
    """A windowed smoke-scale pre-training dataset."""
    return generate_dataset(
        ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=7),
        window_config=WindowConfig(window_len=64, stride=4),
        n_runs=1,
        name="pretrain-smoke",
    )


@pytest.fixture(scope="session")
def smoke_case1_bundle(smoke_bundle):
    return generate_dataset(
        ScenarioConfig.smoke(ScenarioKind.CASE1, seed=7),
        window_config=WindowConfig(window_len=64, stride=4),
        n_runs=1,
        name="case1-smoke",
        receiver_index=smoke_bundle.receiver_index,
    )


@pytest.fixture(scope="session")
def smoke_case2_bundle(smoke_bundle):
    return generate_dataset(
        ScenarioConfig.smoke(ScenarioKind.CASE2, seed=7),
        window_config=WindowConfig(window_len=64, stride=4),
        n_runs=1,
        name="case2-smoke",
        receiver_index=smoke_bundle.receiver_index,
    )
