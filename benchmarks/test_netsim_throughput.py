"""Netsim throughput — packets/sec of the trace-generation fast path.

Two measurements, both on the paper's Fig. 4 bottleneck scenario (the
pre-training setup whose per-packet cost dominates campaign wall-clock):

* **Simulator packets/sec** — simulate + collect + finalize on the
  optimised stack versus the pre-PR reference stack
  (:mod:`repro.netsim.reference`: ``Event``-object heap, per-packet
  serialization/propagation events, ``PacketRecord`` list collector,
  loop-computed MCT).  The two traces are asserted bit-identical before
  any number is reported, so the speedup can never come from dropping
  work.
* **End-to-end trace stage** — the ``repro.runtime`` traces stage
  streaming columns into a fresh artifact store (simulation + npz
  writes), then the warm cache-hit read.

Timings use ``time.process_time`` (CPU time) so results are stable on
noisy shared machines; each measurement keeps the best of several
rounds.  Results land in ``bench_results/`` via ``save_results`` —
smoke-scale output is routed to the gitignored ``bench_results/smoke/``
and never overwrites the committed small-scale numbers.
"""

from __future__ import annotations

import time

import numpy as np

import repro.obs as obs
from benchmarks.conftest import save_results
from repro.netsim import reference
from repro.netsim.scenarios import ScenarioKind, build_scenario

#: Rounds per path, by scale (paper-scale runs are minutes each).
_ROUNDS = {"smoke": 7, "small": 5, "paper": 1}

#: Benchmark gate per scale: the fast path must beat the reference
#: stack by at least this factor.  Set well below the ~3x measured on a
#: quiet machine (see the committed small-scale bench_results): the
#: smoke workload is a seconds-scale measurement on shared CI runners,
#: so its gate is only a sanity bound, not the performance claim.
_MIN_SPEEDUP = {"smoke": 1.3, "small": 2.5, "paper": 2.5}

_TRACE_COLUMNS = (
    "send_time",
    "recv_time",
    "size",
    "receiver_id",
    "flow_id",
    "message_id",
    "message_size",
    "is_message_end",
    "mct",
)


def _simulate_once(config):
    """Build, run and finalize one scenario; returns (cpu_seconds, trace).

    Topology construction is excluded from the timed region: it is
    identical on both stacks and amortised away at paper scale.
    """
    handle = build_scenario(config)
    start = time.process_time()
    trace = handle.run()
    return time.process_time() - start, trace, handle.sim.events_processed


def test_packet_throughput_fast_vs_reference(scale):
    """Fast path ≥ _MIN_SPEEDUP× reference packets/sec, bit-identically."""
    config = scale.scenario(ScenarioKind.PRETRAIN)
    rounds = _ROUNDS.get(scale.name, 1)

    # Interleave the rounds so background load on a shared machine hits
    # both stacks symmetrically instead of skewing whichever phase it
    # overlaps; keep each stack's best round.
    reference_s = fast_s = None
    for _ in range(rounds):
        with reference.legacy_path():
            elapsed, reference_trace, reference_events = _simulate_once(config)
        reference_s = elapsed if reference_s is None else min(reference_s, elapsed)
        elapsed, fast_trace, fast_events = _simulate_once(config)
        fast_s = elapsed if fast_s is None else min(fast_s, elapsed)

    # Speed without a golden gate would be meaningless.
    for column in _TRACE_COLUMNS:
        assert np.array_equal(
            getattr(reference_trace, column), getattr(fast_trace, column)
        ), f"fast path altered trace column {column!r}"

    packets = len(fast_trace)
    speedup = reference_s / fast_s
    payload = {
        "scenario": ScenarioKind.PRETRAIN,
        "packets": packets,
        "reference_cpu_s": reference_s,
        "fast_cpu_s": fast_s,
        "reference_pps": packets / reference_s,
        "fast_pps": packets / fast_s,
        "speedup": speedup,
        "reference_events": reference_events,
        "fast_events": fast_events,
        "rounds": rounds,
    }
    save_results("netsim_throughput", payload)

    print(
        f"\nnetsim throughput ({scale.name}): {packets} packets, "
        f"reference {payload['reference_pps']:,.0f} pps -> "
        f"fast {payload['fast_pps']:,.0f} pps ({speedup:.2f}x, "
        f"events {reference_events} -> {fast_events})"
    )
    minimum = _MIN_SPEEDUP.get(scale.name, 1.3)
    assert packets > 0
    assert speedup >= minimum, (
        f"fast path only {speedup:.2f}x over the reference stack "
        f"(expected >= {minimum}x; committed small-scale results show ~3x)"
    )


#: Observability overhead gate: enabled-mode CPU time over disabled-mode,
#: per scale.  Netsim's instrumentation runs once per scenario (after the
#: event loop), so the real ratio is ~1.00; smoke-scale runs are too
#: short for a tight bound on shared runners, hence the sanity gate.
_MAX_OBS_OVERHEAD = {"smoke": 1.10, "small": 1.02, "paper": 1.02}


def test_observability_overhead(scale):
    """repro.obs on vs off: bit-identical traces, <=2% CPU at scale."""
    config = scale.scenario(ScenarioKind.PRETRAIN)
    rounds = _ROUNDS.get(scale.name, 1)

    obs.reset()
    off_s = on_s = None
    try:
        for _ in range(rounds):
            with obs.scope(False):
                elapsed, off_trace, _ = _simulate_once(config)
            off_s = elapsed if off_s is None else min(off_s, elapsed)
            with obs.scope(True):
                elapsed, on_trace, _ = _simulate_once(config)
            on_s = elapsed if on_s is None else min(on_s, elapsed)
    finally:
        obs.reset()  # drop the spans/counters the enabled rounds recorded

    # Telemetry must observe, never perturb: the simulated traces are
    # asserted bit-identical across modes before any ratio is reported.
    for column in _TRACE_COLUMNS:
        assert np.array_equal(
            getattr(off_trace, column), getattr(on_trace, column)
        ), f"observability altered trace column {column!r}"

    packets = len(off_trace)
    ratio = on_s / off_s
    payload = {
        "scenario": ScenarioKind.PRETRAIN,
        "packets": packets,
        "obs_off_cpu_s": off_s,
        "obs_on_cpu_s": on_s,
        "obs_off_pps": packets / off_s,
        "obs_on_pps": packets / on_s,
        "enabled_overhead_ratio": ratio,
        "rounds": rounds,
    }
    save_results("netsim_obs_overhead", payload)

    print(
        f"\nnetsim obs overhead ({scale.name}): off "
        f"{payload['obs_off_pps']:,.0f} pps, on "
        f"{payload['obs_on_pps']:,.0f} pps ({ratio:.4f}x)"
    )
    maximum = _MAX_OBS_OVERHEAD.get(scale.name, 1.10)
    assert ratio <= maximum, (
        f"enabled observability costs {ratio:.3f}x over disabled "
        f"(expected <= {maximum}x; instrumentation is once-per-run)"
    )


def test_trace_stage_end_to_end(scale, tmp_path):
    """The runtime traces stage: cold streaming write, then warm hit."""
    from repro.api import ArtifactStore, ExperimentSpec
    from repro.api.experiment import Experiment
    from repro.api.store import traces_key
    from repro.runtime.worker import execute_stage

    spec = ExperimentSpec(scenario=ScenarioKind.PRETRAIN, scale=scale.name)
    store = ArtifactStore(tmp_path / "bench-cache")
    experiment = Experiment(spec, store=store)
    key = traces_key(spec.scenario_config(ScenarioKind.PRETRAIN), scale.n_runs)
    params = {"scenario": ScenarioKind.PRETRAIN, "key": key}

    start = time.process_time()
    cold_hit, cold = execute_stage("traces", experiment, params)
    cold_s = time.process_time() - start
    assert not cold_hit

    start = time.process_time()
    warm_hit, warm = execute_stage("traces", experiment, params)
    warm_s = time.process_time() - start
    assert warm_hit
    assert warm["total_packets"] == cold["total_packets"] > 0

    payload = {
        "n_runs": cold["n_runs"],
        "total_packets": cold["total_packets"],
        "cold_cpu_s": cold_s,
        "cold_pps": cold["total_packets"] / cold_s,
        "warm_cpu_s": warm_s,
    }
    save_results("netsim_trace_stage", payload)
    print(
        f"\ntrace stage ({scale.name}): {cold['total_packets']} packets in "
        f"{cold_s:.2f}s CPU cold ({payload['cold_pps']:,.0f} pps incl. store "
        f"writes), warm hit {warm_s:.3f}s"
    )
