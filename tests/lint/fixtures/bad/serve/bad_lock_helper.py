"""Known-bad: the racing write hides one self-call hop away from the
thread entry point, where the per-method rule used to be blind."""

import threading


class Pump:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = None
        self.level = 0

    def start(self):
        self._thread = threading.Thread(target=self._run)
        self.level = 1
        self._thread.start()

    def _run(self):
        self._step()

    def _step(self):
        self.level = 2
