"""Nodes: hosts and routers.

A node receives packets and either delivers them locally (packets
addressed to it) or forwards them along the next hop from its forwarding
table.  Hosts additionally run applications (message senders, TCP
endpoints, sinks) registered per flow id.
"""

from __future__ import annotations

from typing import Callable

from repro.netsim.core import Simulator
from repro.netsim.link import Channel, Link
from repro.netsim.packet import Packet

__all__ = ["Node"]


class Node:
    """A network node.

    Attributes:
        node_id: integer id, unique within a :class:`Network`.
        name: human-readable label used in queue/link names.
        forwarding: maps destination node id → egress :class:`Channel`.
        flow_handlers: maps flow id → callable invoked with each locally
            delivered packet of that flow.
        default_handler: fallback for flows without a dedicated handler.
    """

    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"n{node_id}"
        self.links: list[Link] = []
        self.forwarding: dict[int, Channel] = {}
        self.flow_handlers: dict[int, Callable[[Packet], None]] = {}
        self.default_handler: Callable[[Packet], None] | None = None
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped_no_route = 0

    def attach_link(self, link: Link) -> None:
        """Register ``link`` as incident to this node."""
        self.links.append(link)

    def set_route(self, dst_id: int, channel: Channel) -> None:
        """Install a forwarding entry: packets to ``dst_id`` exit via ``channel``."""
        self.forwarding[dst_id] = channel

    def register_flow(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        """Deliver local packets of ``flow_id`` to ``handler``."""
        if flow_id in self.flow_handlers:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self.flow_handlers[flow_id] = handler

    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from a channel (or locally)."""
        packet.hops += 1
        if packet.dst == self.node_id:
            self._deliver(packet)
        else:
            self.forward(packet)

    def send(self, packet: Packet) -> bool:
        """Inject a locally generated packet into the network.

        Sets the packet's ``send_time`` and forwards it.  Returns False
        if the first hop dropped it.
        """
        packet.send_time = self.sim.now
        if packet.dst == self.node_id:
            # Loopback: deliver after the current event completes.
            self.sim.schedule(0.0, self._deliver, packet)
            return True
        return self.forward(packet)

    def forward(self, packet: Packet) -> bool:
        """Forward ``packet`` toward its destination.

        Packets without a forwarding entry are dropped (counted), which
        turns routing bugs into visible statistics instead of crashes.
        """
        channel = self.forwarding.get(packet.dst)
        if channel is None:
            self.packets_dropped_no_route += 1
            return False
        self.packets_forwarded += 1
        return channel.send(packet)

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        handler = self.flow_handlers.get(packet.flow_id, self.default_handler)
        if handler is not None:
            handler(packet)

    def __repr__(self) -> str:
        return f"Node({self.node_id}, {self.name!r})"
