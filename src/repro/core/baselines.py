"""Naive baselines from Table 1.

* **Last observed** — return the previous packet's value.
* **EWMA** — exponentially weighted moving average with α = 0.01
  (the paper's footnote 5).

Both operate on raw (unnormalised) values and are evaluated with the
same metric as the models: MSE in seconds² for delay, MSE in
(log-seconds)² for message completion times.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import DELAY_COLUMN
from repro.datasets.windows import WindowDataset

__all__ = [
    "last_observed_predictions",
    "ewma_predictions",
    "evaluate_baselines",
    "delay_mse",
    "mct_log_mse",
]

#: The paper's EWMA smoothing factor.
EWMA_ALPHA = 0.01


def last_observed_predictions(dataset: WindowDataset, task: str = "delay") -> np.ndarray:
    """Predict each window's target from the most recent observation.

    ``task='delay'``: the delay of the second-to-last packet.
    ``task='mct'``: the completion time of the most recently *completed*
    message in the window (excluding the final packet itself).
    """
    if task == "delay":
        return dataset.features[:, -2, DELAY_COLUMN].copy()
    if task == "mct":
        return _latest_completed_mct(dataset)
    raise ValueError(f"unknown task {task!r}")


def ewma_predictions(
    dataset: WindowDataset, task: str = "delay", alpha: float = EWMA_ALPHA
) -> np.ndarray:
    """EWMA prediction over the window history (excluding the target)."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if task == "delay":
        history = dataset.features[:, :-1, DELAY_COLUMN]
        out = history[:, 0].copy()
        for step in range(1, history.shape[1]):
            out = alpha * history[:, step] + (1.0 - alpha) * out
        return out
    if task == "mct":
        return _ewma_completed_mct(dataset, alpha)
    raise ValueError(f"unknown task {task!r}")


def _latest_completed_mct(dataset: WindowDataset) -> np.ndarray:
    """Most recent completed-message MCT per window (excluding the last
    packet); windows with none fall back to the dataset's median MCT."""
    n, window_len = dataset.end_seq.shape
    history_ends = dataset.end_seq[:, :-1] & np.isfinite(dataset.mct_seq[:, :-1])
    predictions = np.full(n, np.nan)
    for row in range(n):
        ends = np.flatnonzero(history_ends[row])
        if ends.size:
            predictions[row] = dataset.mct_seq[row, ends[-1]]
    fallback = _finite_median(dataset.mct_seq)
    predictions[~np.isfinite(predictions)] = fallback
    return predictions


def _ewma_completed_mct(dataset: WindowDataset, alpha: float) -> np.ndarray:
    """EWMA over the sequence of completed-message MCTs per window."""
    n, window_len = dataset.end_seq.shape
    predictions = np.full(n, np.nan)
    for row in range(n):
        mask = dataset.end_seq[row, :-1] & np.isfinite(dataset.mct_seq[row, :-1])
        values = dataset.mct_seq[row, :-1][mask]
        if values.size == 0:
            continue
        estimate = values[0]
        for value in values[1:]:
            estimate = alpha * value + (1.0 - alpha) * estimate
        predictions[row] = estimate
    fallback = _finite_median(dataset.mct_seq)
    predictions[~np.isfinite(predictions)] = fallback
    return predictions


def _finite_median(values: np.ndarray) -> float:
    finite = values[np.isfinite(values)]
    return float(np.median(finite)) if finite.size else 0.0


def delay_mse(predictions: np.ndarray, dataset: WindowDataset) -> float:
    """MSE against the delay targets, in seconds²."""
    return float(np.mean((predictions - dataset.delay_target) ** 2))


def mct_log_mse(predictions: np.ndarray, dataset: WindowDataset) -> float:
    """MSE against MCT targets on the natural-log scale.

    Windows without a finite MCT label are skipped; non-positive
    predictions are floored at 1 µs before the log.
    """
    valid = np.isfinite(dataset.mct_target) & (dataset.mct_target > 0)
    if not np.any(valid):
        raise ValueError("dataset has no valid MCT targets")
    clipped = np.maximum(predictions[valid], 1e-6)
    return float(np.mean((np.log(clipped) - np.log(dataset.mct_target[valid])) ** 2))


def evaluate_baselines(dataset: WindowDataset, alpha: float = EWMA_ALPHA) -> dict:
    """Table 1 baseline rows for one dataset.

    Returns ``{"last_observed": {"delay_mse": ..., "mct_log_mse": ...},
    "ewma": {...}}`` with delay in seconds² and MCT in log² units.
    """
    results = {}
    for name, predictor in (("last_observed", last_observed_predictions), ("ewma", ewma_predictions)):
        if name == "ewma":
            delay_pred = predictor(dataset, "delay", alpha)
            mct_pred = predictor(dataset, "mct", alpha)
        else:
            delay_pred = predictor(dataset, "delay")
            mct_pred = predictor(dataset, "mct")
        results[name] = {
            "delay_mse": delay_mse(delay_pred, dataset),
            "mct_log_mse": mct_log_mse(mct_pred, dataset),
        }
    return results
