"""Tests for the tracer: span trees, timestamps, exporters."""

import json

import pytest

from repro.obs import Tracer, chrome_trace, spans_to_jsonl


class FakeClock:
    """A controllable monotonic clock (seconds)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_tracer():
    clock = FakeClock()
    tracer = Tracer(clock=clock, wall_clock=lambda: 1000.0)
    return tracer, clock


class TestSpans:
    def test_nesting_and_durations(self):
        tracer, clock = make_tracer()
        with tracer.span("outer", kind="test"):
            clock.now += 1.0
            with tracer.span("inner"):
                clock.now += 0.5
            clock.now += 0.25
        (outer,) = tracer.finished()
        assert outer["name"] == "outer"
        assert outer["attrs"] == {"kind": "test"}
        assert outer["start_us"] == pytest.approx(1000.0 * 1e6)
        assert outer["dur_us"] == pytest.approx(1.75e6)
        (inner,) = outer["children"]
        assert inner["name"] == "inner"
        assert inner["dur_us"] == pytest.approx(0.5e6)

    def test_exceptions_mark_the_span_and_propagate(self):
        tracer, _ = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.finished()
        assert span["attrs"]["status"] == "error"
        assert span["attrs"]["error"] == "RuntimeError"

    def test_open_spans_are_excluded_from_finished(self):
        tracer, _ = make_tracer()
        with tracer.span("open"):
            assert tracer.finished() == []
        assert len(tracer.finished()) == 1

    def test_add_span_records_pre_timed_work(self):
        tracer, _ = make_tracer()
        tracer.add_span("measured", 5e6, 2e6, source="hook")
        (span,) = tracer.finished()
        assert span["start_us"] == 5e6
        assert span["dur_us"] == 2e6
        assert span["attrs"] == {"source": "hook"}

    def test_add_span_nests_under_the_open_span(self):
        tracer, _ = make_tracer()
        with tracer.span("parent"):
            tracer.add_span("child", 0.0, 1.0)
        (parent,) = tracer.finished()
        assert [child["name"] for child in parent["children"]] == ["child"]

    def test_instants_attach_to_open_span_or_tracer(self):
        tracer, _ = make_tracer()
        tracer.instant("free", level="top")
        with tracer.span("s"):
            tracer.instant("bound")
        assert [event["name"] for event in tracer.instants()] == ["free"]
        (span,) = tracer.finished()
        assert [event["name"] for event in span["events"]] == ["bound"]

    def test_timestamps_are_wall_anchored(self):
        tracer, clock = make_tracer()
        clock.now = 3.0
        assert tracer.now_us() == pytest.approx(1000e6 + 3e6)

    def test_clear_empties_the_tracer(self):
        tracer, _ = make_tracer()
        with tracer.span("s"):
            pass
        tracer.instant("i")
        tracer.clear()
        assert tracer.finished() == []
        assert tracer.instants() == []


class TestChromeTrace:
    def build_spans(self):
        tracer, clock = make_tracer()
        with tracer.span("task", worker=7):
            clock.now += 1.0
            with tracer.span("stage"):
                tracer.instant("milestone", note="x")
                clock.now += 0.5
        return tracer.finished(), tracer.instants()

    def test_trace_structure(self):
        spans, instants = self.build_spans()
        trace = chrome_trace(spans, instants, process_name="unit")
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert metadata[0]["args"]["name"] == "unit"
        complete = [event for event in events if event["ph"] == "X"]
        assert [event["name"] for event in complete] == ["task", "stage"]
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(event)
        instant_events = [event for event in events if event["ph"] == "i"]
        assert [event["name"] for event in instant_events] == ["milestone"]

    def test_worker_attribute_selects_the_tid_lane(self):
        spans, _ = self.build_spans()
        events = chrome_trace(spans)["traceEvents"]
        lanes = {event["name"]: event["tid"] for event in events if event["ph"] == "X"}
        assert lanes["task"] == 7
        assert lanes["stage"] == 0  # no worker attr -> lane 0

    def test_trace_is_json_serializable(self):
        spans, instants = self.build_spans()
        json.dumps(chrome_trace(spans, instants))


class TestJsonl:
    def test_depth_first_flattening(self):
        tracer, clock = make_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                clock.now += 0.1
            with tracer.span("c"):
                clock.now += 0.1
        lines = [json.loads(line) for line in spans_to_jsonl(tracer.finished()).splitlines()]
        assert [(row["name"], row["depth"]) for row in lines] == [
            ("a", 0), ("b", 1), ("c", 1),
        ]

    def test_empty_input_renders_empty(self):
        assert spans_to_jsonl([]) == ""
