"""The scenario registry: topologies/workloads as pluggable plugins.

The paper's pitch is *generalization* — one pre-trained NTT reused
across environments — so adding an environment must not require editing
core code.  A scenario is a named builder ``(scale, seed) ->
ScenarioConfig``; registering it makes it available to
:class:`~repro.api.spec.ExperimentSpec`, the CLI (``repro simulate
--scenario <name>``, ``repro scenarios``) and the experiment cache.

Builders receive the *scale name* (``smoke`` / ``small`` / ``paper``)
so each scenario can ship CPU-friendly and published-parameter presets,
mirroring :class:`~repro.netsim.scenarios.ScenarioConfig`'s own
classmethods.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.netsim.scenarios import ScenarioConfig, ScenarioKind

__all__ = [
    "ScenarioBuilder",
    "ScenarioEntry",
    "ScenarioRegistry",
    "SCENARIOS",
    "base_config",
    "register_scenario",
]

ScenarioBuilder = Callable[[str, int], ScenarioConfig]

#: Scale names every builder must understand.
SCALE_NAMES = ("smoke", "small", "paper")


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario."""

    name: str
    builder: ScenarioBuilder
    description: str = ""

    def build(self, scale: str = "small", seed: int = 0) -> ScenarioConfig:
        if scale not in SCALE_NAMES:
            raise ValueError(
                f"unknown scale {scale!r}; choose from {sorted(SCALE_NAMES)}"
            )
        return self.builder(scale, seed)


class ScenarioRegistry:
    """Name → scenario builder mapping with decorator registration."""

    def __init__(self):
        self._entries: dict[str, ScenarioEntry] = {}

    def register(self, name: str, description: str = "", replace_existing: bool = False):
        """Decorator: register ``fn(scale, seed) -> ScenarioConfig``."""

        def decorator(fn: ScenarioBuilder) -> ScenarioBuilder:
            if name in self._entries and not replace_existing:
                raise ValueError(f"scenario {name!r} is already registered")
            self._entries[name] = ScenarioEntry(name, fn, description)
            return fn

        return decorator

    def get(self, name: str) -> ScenarioEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown scenario {name!r}; choose from {self.names()}"
            ) from None

    def build(self, name: str, scale: str = "small", seed: int = 0) -> ScenarioConfig:
        """Build the named scenario's config at the given scale."""
        return self.get(name).build(scale, seed)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entries(self) -> list[ScenarioEntry]:
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.names())


#: The default (module-level) registry used by specs, the CLI and the
#: experiment context.
SCENARIOS = ScenarioRegistry()


def register_scenario(name: str, description: str = "", replace_existing: bool = False):
    """Register a scenario builder in the default registry.

    Usage::

        @register_scenario("my_scenario", description="...")
        def build_my_scenario(scale: str, seed: int) -> ScenarioConfig:
            base = ScenarioConfig.small("case1", seed=seed)
            return replace(base, n_cross_flows=8)
    """
    return SCENARIOS.register(name, description, replace_existing=replace_existing)


# -- built-in scenarios ---------------------------------------------------------
#
# The four kinds that used to live behind hard-coded switches: the three
# Fig. 4 setups plus the §5 RED-discipline variant.

_PRESETS = {
    "smoke": ScenarioConfig.smoke,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}


def base_config(kind: str, scale: str, seed: int = 0) -> ScenarioConfig:
    """The built-in preset for ``kind`` at ``scale`` — the starting
    point for scenario builders that tweak a known topology."""
    if scale not in SCALE_NAMES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALE_NAMES)}")
    return _PRESETS[scale](kind, seed=seed)


def _builtin(kind: str):
    def build(scale: str, seed: int) -> ScenarioConfig:
        return base_config(kind, scale, seed)

    return build


SCENARIOS.register(
    ScenarioKind.PRETRAIN,
    "Fig. 4 pre-training setup: N senders share one bottleneck, no cross-traffic",
)(_builtin(ScenarioKind.PRETRAIN))

SCENARIOS.register(
    ScenarioKind.CASE1,
    "Fig. 4 case 1: pre-training topology plus TCP cross-traffic",
)(_builtin(ScenarioKind.CASE1))

SCENARIOS.register(
    ScenarioKind.CASE2,
    "Fig. 4 case 2: larger topology, several receivers with distinct paths",
)(_builtin(ScenarioKind.CASE2))


@register_scenario(
    "pretrain_red",
    description="pre-training topology with a RED bottleneck queue (§5 disciplines)",
)
def _build_pretrain_red(scale: str, seed: int) -> ScenarioConfig:
    base = base_config(ScenarioKind.PRETRAIN, scale, seed)
    return replace(base, bottleneck_discipline="red")
