"""Clean stage fixture: a pure registered stage body."""

SUPPORTED = ("smoke", "small", "full")


def register_stage(name, **kwargs):
    def wrap(fn):
        return fn

    return wrap


@register_stage("clean_stage")
def run(spec, store):
    config = dict(spec.options)
    scales = [scale for scale in SUPPORTED if scale in config]
    payload = {"spec": spec.name, "config": config, "scales": scales}
    key = store.result_key(spec)
    store.put_json(key, payload)
    return store.get_json(key)
