#!/usr/bin/env python
"""Fill EXPERIMENTS.md placeholders from bench_results/*.json.

Run after ``REPRO_BENCH_SCALE=small pytest benchmarks/ --benchmark-only``:

    python scripts/fill_experiments.py

Idempotent only in the forward direction: placeholders are replaced
once; re-running after a new benchmark run requires restoring the
template (git) first.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "bench_results"


def scaled(value: float | None, digits: int = 4) -> str:
    """Format a raw MSE (s² or log²) in the paper's ×10⁻³ convention."""
    if value is None:
        return "—"
    return f"{value * 1e3:.{digits}f}"


def seconds(value: float | None) -> str:
    return "—" if value is None else f"{value:.0f}"


def main() -> int:
    path = ROOT / "EXPERIMENTS.md"
    try:
        text = path.read_text()
    except FileNotFoundError:
        print(
            f"error: {path} not found; restore the placeholder template "
            "(git) before filling it",
            file=sys.stderr,
        )
        return 1

    tables = {}
    for name in ("table1", "table2", "table3"):
        try:
            data = json.loads((RESULTS / f"{name}.json").read_text())
        except FileNotFoundError:
            print(
                f"error: {RESULTS / f'{name}.json'} not found; generate it "
                "with REPRO_BENCH_SCALE=small (or paper) "
                "pytest benchmarks/ first (smoke runs land in "
                "bench_results/smoke/ and don't count)",
                file=sys.stderr,
            )
            return 1
        if data.get("scale") not in ("small", "paper"):
            print(
                f"error: {name}.json is scale={data.get('scale')!r}, not "
                "small/paper; regenerate with REPRO_BENCH_SCALE=small "
                "(or paper) before filling EXPERIMENTS.md",
                file=sys.stderr,
            )
            return 1
        tables[name] = data["rows"]
    table1, table2, table3 = tables["table1"], tables["table2"], tables["table3"]

    t1 = {
        "MEASURED_T1_PRE": scaled(table1["ntt_pretrained"]["pretrain_delay_mse"]),
        "MEASURED_T1_PRE_FT": scaled(table1["ntt_pretrained"]["finetune_delay_mse"]),
        "MEASURED_T1_PRE_MCT": scaled(table1["ntt_pretrained"]["finetune_mct_mse"], 0),
        "MEASURED_T1_SCR_FT": scaled(table1["ntt_from_scratch"]["finetune_delay_mse"]),
        "MEASURED_T1_SCR_MCT": scaled(table1["ntt_from_scratch"]["finetune_mct_mse"], 0),
        "MEASURED_T1_LO_FT": scaled(table1["last_observed"]["finetune_delay_mse"]),
        "MEASURED_T1_LO_MCT": scaled(table1["last_observed"]["finetune_mct_mse"], 0),
        "MEASURED_T1_LO": scaled(table1["last_observed"]["pretrain_delay_mse"]),
        "MEASURED_T1_EW_FT": scaled(table1["ewma"]["finetune_delay_mse"]),
        "MEASURED_T1_EW_MCT": scaled(table1["ewma"]["finetune_mct_mse"], 0),
        "MEASURED_T1_EW": scaled(table1["ewma"]["pretrain_delay_mse"]),
        "MEASURED_T1_NA_FT": scaled(table1["no_aggregation"]["finetune_delay_mse"]),
        "MEASURED_T1_NA_MCT": scaled(table1["no_aggregation"]["finetune_mct_mse"], 0),
        "MEASURED_T1_NA": scaled(table1["no_aggregation"]["pretrain_delay_mse"]),
        "MEASURED_T1_FA_FT": scaled(table1["fixed_aggregation"]["finetune_delay_mse"]),
        "MEASURED_T1_FA_MCT": scaled(table1["fixed_aggregation"]["finetune_mct_mse"], 0),
        "MEASURED_T1_FA": scaled(table1["fixed_aggregation"]["pretrain_delay_mse"]),
        "MEASURED_T1_WS_FT": scaled(table1["without_packet_size"]["finetune_delay_mse"]),
        "MEASURED_T1_WS_MCT": scaled(table1["without_packet_size"]["finetune_mct_mse"], 0),
        "MEASURED_T1_WS": scaled(table1["without_packet_size"]["pretrain_delay_mse"]),
        "MEASURED_T1_WD_FT": scaled(table1["without_delay"]["finetune_delay_mse"]),
        "MEASURED_T1_WD_MCT": scaled(table1["without_delay"]["finetune_mct_mse"], 0),
        "MEASURED_T1_WD": scaled(table1["without_delay"]["pretrain_delay_mse"]),
    }
    t2 = {
        "MEASURED_T2_PF_T": seconds(table2["pretrained_full"]["training_time_s"]),
        "MEASURED_T2_PF": scaled(table2["pretrained_full"]["delay_mse"]),
        "MEASURED_T2_PS_T": seconds(table2["pretrained_10pct"]["training_time_s"]),
        "MEASURED_T2_PS": scaled(table2["pretrained_10pct"]["delay_mse"]),
        "MEASURED_T2_SF_T": seconds(table2["scratch_full"]["training_time_s"]),
        "MEASURED_T2_SF": scaled(table2["scratch_full"]["delay_mse"]),
        "MEASURED_T2_SS_T": seconds(table2["scratch_10pct"]["training_time_s"]),
        "MEASURED_T2_SS": scaled(table2["scratch_10pct"]["delay_mse"]),
    }
    t3 = {
        "MEASURED_T3_PF_T": seconds(table3["pretrained_full"]["training_time_s"]),
        "MEASURED_T3_PF": scaled(table3["pretrained_full"]["delay_mse"]),
        "MEASURED_T3_PS_T": seconds(table3["pretrained_10pct"]["training_time_s"]),
        "MEASURED_T3_PS": scaled(table3["pretrained_10pct"]["delay_mse"]),
        "MEASURED_T3_SF_T": seconds(table3["scratch_full"]["training_time_s"]),
        "MEASURED_T3_SF": scaled(table3["scratch_full"]["delay_mse"]),
        "MEASURED_T3_SS_T": seconds(table3["scratch_10pct"]["training_time_s"]),
        "MEASURED_T3_SS": scaled(table3["scratch_10pct"]["delay_mse"]),
        "MEASURED_T3_LO": scaled(table3["last_observed"]["delay_mse"]),
        "MEASURED_T3_EW": scaled(table3["ewma"]["delay_mse"]),
        "MEASURED_T3_NR": scaled(table3["without_receiver_id"]["delay_mse"]),
    }
    # Longer keys first so prefixes don't clobber (e.g. _PF before _PF_T
    # would corrupt; sort descending by key length).
    replacements = {**t1, **t2, **t3}
    for key in sorted(replacements, key=len, reverse=True):
        text = text.replace(key, replacements[key])

    path.write_text(text)
    print("EXPERIMENTS.md updated from bench_results/*.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
