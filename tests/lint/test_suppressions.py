"""Suppression-comment parsing: grammar, required justifications, and
how far an `allow` reaches (trailing vs standalone, compound blocks)."""

import ast
import textwrap

from repro.lint import LINT_RULES, run_lint
from repro.lint.pragmas import parse_pragmas

KNOWN = tuple(LINT_RULES.names())


def _parse(source):
    source = textwrap.dedent(source)
    return parse_pragmas(source, ast.parse(source), KNOWN)


class TestGrammar:
    def test_justified_allow_parses(self):
        allows, _, errors = _parse(
            "x = 1  # repro: allow(determinism): fixture reason\n"
        )
        assert errors == []
        assert len(allows) == 1
        assert allows[0].rule == "determinism"
        assert allows[0].justification == "fixture reason"

    def test_bare_allow_is_rejected(self):
        allows, _, errors = _parse("x = 1  # repro: allow(determinism)\n")
        assert allows == []
        assert len(errors) == 1
        assert "requires a justification" in errors[0].message

    def test_allow_with_empty_justification_is_rejected(self):
        allows, _, errors = _parse("x = 1  # repro: allow(determinism):   \n")
        assert allows == []
        assert "requires a justification" in errors[0].message

    def test_unknown_rule_is_rejected(self):
        allows, _, errors = _parse("x = 1  # repro: allow(bogus): because\n")
        assert allows == []
        assert "unknown rule 'bogus'" in errors[0].message

    def test_unknown_verb_is_rejected(self):
        _, _, errors = _parse("x = 1  # repro: warm\n")
        assert "unrecognized pragma" in errors[0].message

    def test_pragma_inside_string_is_ignored(self):
        allows, hot, errors = _parse('x = "# repro: frobnicate"\n')
        assert (allows, hot, errors) == ([], [], [])


class TestCoverage:
    def test_trailing_comment_covers_one_statement(self):
        allows, _, _ = _parse(
            """\
            a = 1  # repro: allow(determinism): here only
            b = 2
            """
        )
        (allow,) = allows
        assert allow.covers(1)
        assert not allow.covers(2)

    def test_trailing_comment_on_compound_covers_the_block(self):
        allows, _, _ = _parse(
            """\
            if flag:  # repro: allow(determinism): whole escape hatch
                a = 1
                b = 2
            c = 3
            """
        )
        (allow,) = allows
        assert allow.covers(1) and allow.covers(2) and allow.covers(3)
        assert not allow.covers(4)

    def test_standalone_comment_attaches_to_next_statement(self):
        allows, _, _ = _parse(
            """\
            a = 1
            # repro: allow(determinism): next statement only
            b = 2
            c = 3
            """
        )
        (allow,) = allows
        assert not allow.covers(1)
        assert allow.covers(3)
        assert not allow.covers(4)


class TestHotPragma:
    def test_hot_on_def_line_marks_the_function(self):
        _, hot, _ = _parse(
            """\
            def f():  # repro: hot
                return 1


            def g():
                return 2
            """
        )
        (region,) = hot
        assert region.covers(1) and region.covers(2)
        assert not region.covers(5)

    def test_standalone_hot_before_def_marks_the_function(self):
        _, hot, _ = _parse(
            """\
            # repro: hot
            def f():
                return 1


            x = 2
            """
        )
        (region,) = hot
        assert region.covers(2) and region.covers(3)
        assert not region.covers(6)

    def test_standalone_hot_elsewhere_marks_the_module(self):
        _, hot, _ = _parse(
            """\
            # repro: hot

            import numpy as np


            def f():
                return np.zeros(3)
            """
        )
        (region,) = hot
        assert region.covers(1) and region.covers(7)


class TestEndToEnd:
    def test_suppressed_finding_is_not_active(self, tmp_path):
        target = tmp_path / "netsim"
        target.mkdir()
        (target / "mod.py").write_text(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow(determinism): fixture\n",
            encoding="utf-8",
        )
        report = run_lint([tmp_path], use_baseline=False)
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.exit_code == 0

    def test_suppression_for_other_rule_does_not_apply(self, tmp_path):
        target = tmp_path / "netsim"
        target.mkdir()
        (target / "mod.py").write_text(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow(pragma): wrong rule\n",
            encoding="utf-8",
        )
        report = run_lint([tmp_path], use_baseline=False)
        assert [f.rule for f in report.findings] == ["determinism"]
        assert report.exit_code == 1
