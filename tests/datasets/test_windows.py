"""Tests for trace windowing."""

import numpy as np
import pytest

from repro.datasets.windows import WindowConfig, WindowDataset, windows_from_trace


def receiver_index_for(trace):
    return {int(r): i for i, r in enumerate(sorted(set(trace.receiver_id.tolist())))}


def windows_reference(trace, config, receiver_index):
    """The pre-vectorisation per-window loop, kept as the equivalence
    oracle for the sliding-window fast path."""
    n_packets = len(trace)
    window_len = config.window_len
    delays = trace.delay
    receiver_mapped = np.array(
        [receiver_index[int(r)] for r in trace.receiver_id], dtype=np.int64
    )
    ends = np.arange(window_len - 1, n_packets, config.stride)
    n_windows = len(ends)
    features = np.zeros((n_windows, window_len, 3), dtype=np.float64)
    receiver = np.zeros((n_windows, window_len), dtype=np.int64)
    delay_target = np.zeros(n_windows)
    mct_target = np.zeros(n_windows)
    message_size = np.zeros(n_windows)
    mct_seq = np.zeros((n_windows, window_len))
    end_seq = np.zeros((n_windows, window_len), dtype=bool)
    for row, end in enumerate(ends):
        window_slice = slice(end - window_len + 1, end + 1)
        send = trace.send_time[window_slice]
        features[row, :, 0] = send - send[-1]
        features[row, :, 1] = trace.size[window_slice]
        features[row, :, 2] = delays[window_slice]
        receiver[row] = receiver_mapped[window_slice]
        delay_target[row] = delays[end]
        mct_target[row] = trace.mct[end]
        message_size[row] = trace.message_size[end]
        mct_seq[row] = trace.mct[window_slice]
        end_seq[row] = trace.is_message_end[window_slice]
    return WindowDataset(
        features, receiver, delay_target, mct_target, message_size, mct_seq, end_seq
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(window_len=1)
        with pytest.raises(ValueError):
            WindowConfig(stride=0)


class TestWindowing:
    def test_shapes(self, smoke_trace):
        config = WindowConfig(window_len=32, stride=4)
        ds = windows_from_trace(smoke_trace, config, receiver_index_for(smoke_trace))
        expected = (len(smoke_trace) - 32) // 4 + 1
        assert len(ds) == expected
        assert ds.features.shape == (expected, 32, 3)
        assert ds.receiver.shape == (expected, 32)
        assert ds.window_len == 32

    def test_rel_time_last_packet_zero(self, smoke_trace):
        config = WindowConfig(window_len=16, stride=8)
        ds = windows_from_trace(smoke_trace, config, receiver_index_for(smoke_trace))
        assert np.allclose(ds.features[:, -1, 0], 0.0)
        assert np.all(ds.features[:, :, 0] <= 0.0)

    def test_rel_time_monotone(self, smoke_trace):
        ds = windows_from_trace(
            smoke_trace, WindowConfig(16, 16), receiver_index_for(smoke_trace)
        )
        assert np.all(np.diff(ds.features[:, :, 0], axis=1) >= 0)

    def test_delay_target_matches_last_packet(self, smoke_trace):
        config = WindowConfig(window_len=16, stride=1)
        ds = windows_from_trace(smoke_trace, config, receiver_index_for(smoke_trace))
        delays = smoke_trace.delay
        assert np.allclose(ds.delay_target, delays[15:])
        assert np.allclose(ds.features[:, -1, 2], ds.delay_target)

    def test_stride_spacing(self, smoke_trace):
        one = windows_from_trace(
            smoke_trace, WindowConfig(16, 1), receiver_index_for(smoke_trace)
        )
        four = windows_from_trace(
            smoke_trace, WindowConfig(16, 4), receiver_index_for(smoke_trace)
        )
        assert np.allclose(four.delay_target, one.delay_target[::4])

    def test_short_trace_yields_empty(self, smoke_trace):
        tiny = smoke_trace.subset(np.arange(5))
        ds = windows_from_trace(tiny, WindowConfig(window_len=64), receiver_index_for(smoke_trace))
        assert len(ds) == 0
        assert ds.features.shape == (0, 64, 3)

    def test_receiver_ids_remapped(self, smoke_case2_trace):
        index = receiver_index_for(smoke_case2_trace)
        ds = windows_from_trace(smoke_case2_trace, WindowConfig(16, 8), index)
        assert set(np.unique(ds.receiver).tolist()) <= set(index.values())

    def test_mct_seq_aligned(self, smoke_trace):
        ds = windows_from_trace(
            smoke_trace, WindowConfig(16, 4), receiver_index_for(smoke_trace)
        )
        assert np.allclose(ds.mct_seq[:, -1], ds.mct_target)

    def test_message_size_positive(self, smoke_trace):
        ds = windows_from_trace(
            smoke_trace, WindowConfig(16, 4), receiver_index_for(smoke_trace)
        )
        assert np.all(ds.message_size > 0)


class TestDatasetOps:
    @pytest.fixture
    def dataset(self, smoke_trace):
        return windows_from_trace(
            smoke_trace, WindowConfig(16, 2), receiver_index_for(smoke_trace)
        )

    def test_subset_boolean(self, dataset):
        mask = dataset.delay_target > np.median(dataset.delay_target)
        sub = dataset.subset(mask)
        assert len(sub) == int(mask.sum())

    def test_sample_fraction(self, dataset, rng):
        sub = dataset.sample_fraction(0.1, rng)
        assert len(sub) == max(1, round(0.1 * len(dataset)))

    def test_sample_fraction_invalid(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.sample_fraction(0.0, rng)

    def test_concatenate(self, dataset):
        merged = WindowDataset.concatenate([dataset, dataset])
        assert len(merged) == 2 * len(dataset)

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            WindowDataset.concatenate([])

    def test_completed_messages_filter(self, dataset):
        filtered = dataset.with_completed_messages_only()
        assert np.all(np.isfinite(filtered.mct_target))
        assert np.all(filtered.mct_target > 0)

    def test_column_validation(self):
        with pytest.raises(ValueError):
            WindowDataset(
                np.zeros((3, 8, 3)),
                np.zeros((2, 8)),  # mismatched
                np.zeros(3),
                np.zeros(3),
                np.zeros(3),
            )

    def test_feature_column_count_validated(self):
        with pytest.raises(ValueError):
            WindowDataset(
                np.zeros((3, 8, 5)),
                np.zeros((3, 8)),
                np.zeros(3),
                np.zeros(3),
                np.zeros(3),
            )


class TestVectorisedEquivalence:
    """The sliding-window fast path must be byte-identical to the
    per-window reference loop — bundles are cached artifacts."""

    @pytest.mark.parametrize("window_len,stride", [(16, 1), (32, 4), (33, 7)])
    def test_bitwise_equal_to_reference(self, smoke_trace, window_len, stride):
        config = WindowConfig(window_len=window_len, stride=stride)
        index = receiver_index_for(smoke_trace)
        fast = windows_from_trace(smoke_trace, config, index)
        reference = windows_reference(smoke_trace, config, index)
        for column in (
            "features",
            "receiver",
            "delay_target",
            "mct_target",
            "message_size",
            "mct_seq",
            "end_seq",
        ):
            a, b = getattr(fast, column), getattr(reference, column)
            assert a.dtype == b.dtype, column
            assert np.array_equal(a, b, equal_nan=True), column

    def test_unknown_receiver_raises(self, smoke_trace):
        index = receiver_index_for(smoke_trace)
        index.pop(int(smoke_trace.receiver_id[0]))
        with pytest.raises(KeyError):
            windows_from_trace(smoke_trace, WindowConfig(16, 2), index)
