"""Retry policy: which failures are worth another attempt, and when.

The engine used to retry *every* failure a fixed number of times with a
hard-coded backoff.  :class:`RetryPolicy` makes the decision explicit
and classifies errors first:

- ``transient`` — worth retrying (runtime errors, I/O hiccups, injected
  chaos faults).  Retried with exponential backoff plus seeded jitter.
- ``timeout`` / ``worker-lost`` — engine-assigned classes for reaped
  hung tasks and tasks whose pool worker died; retryable (the retry
  lands on a fresh worker).
- ``fatal`` — programming/contract errors (``ValueError``, ``TypeError``
  …) that will fail identically on every attempt; retrying them only
  delays the failure report, so the policy stops immediately.

Backoff jitter is drawn from the task's spawned
:class:`~numpy.random.SeedSequence` keyed by *attempt number*, never by
wall time or execution order — the same campaign replays the same
delays, which is what keeps resumed runs bit-identical to uninterrupted
ones.  The default policy reproduces the engine's historical backoff
byte-for-byte (base 0.25 s doubling to a 2 s cap, jitter in [0, 0.25)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RetryPolicy", "FATAL_ERROR_TYPES"]

#: Exception type names whose failures repeat deterministically: a bad
#: argument or a missing attribute fails the same way on every attempt,
#: so retrying is pure waste.  Everything else is presumed transient.
FATAL_ERROR_TYPES = frozenset(
    {
        "ValueError",
        "TypeError",
        "KeyError",
        "AttributeError",
        "IndexError",
        "AssertionError",
        "NotImplementedError",
        "ImportError",
        "ModuleNotFoundError",
    }
)

#: Engine-assigned error classes (no exception object exists for these).
ENGINE_ERROR_CLASSES = ("timeout", "worker-lost")


@dataclass(frozen=True)
class RetryPolicy:
    """When and how failed tasks are re-attempted.

    Args:
        retries: additional attempts after the first (``0`` disables
            retrying entirely).
        backoff_base_s: delay before the first retry; doubles each
            subsequent attempt.
        backoff_cap_s: ceiling on the exponential part of the delay.
        jitter_cap_s: upper bound of the uniform seeded jitter added to
            every backoff.
        fatal_error_types: exception type names never worth retrying.
    """

    retries: int = 1
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 2.0
    jitter_cap_s: float = 0.25
    fatal_error_types: frozenset = field(default=FATAL_ERROR_TYPES)

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0 or self.jitter_cap_s < 0:
            raise ValueError("backoff parameters must be >= 0")

    def classify(self, error_type: str | None) -> str:
        """Map a failure's exception type name to an error class.

        Engine-assigned classes (``timeout``, ``worker-lost``) pass
        through unchanged so records re-classified on resume keep their
        original class.
        """
        if error_type in ENGINE_ERROR_CLASSES:
            return error_type
        if error_type in self.fatal_error_types:
            return "fatal"
        return "transient"

    def should_retry(self, error_class: str, attempts: int) -> bool:
        """Whether a task with ``attempts`` spent attempts gets another."""
        return error_class != "fatal" and attempts <= self.retries

    def backoff_s(
        self, seed_entropy: int, spawn_key: tuple[int, ...], attempt: int
    ) -> float:
        """The delay before retry ``attempt`` (>= 1) of one task.

        Deterministic in (campaign seed, task spawn key, attempt): the
        jitter for attempt *n* is the *n*-th draw from the task's own
        spawned sequence, so it does not depend on how many other tasks
        retried first — resumed campaigns replay identical delays.
        """
        sequence = np.random.SeedSequence(
            entropy=seed_entropy, spawn_key=tuple(spawn_key)
        )
        jitter = float(
            np.random.default_rng(sequence).uniform(0.0, self.jitter_cap_s, size=attempt)[-1]
        )
        return min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_cap_s) + jitter

    def to_payload(self) -> dict:
        """The JSON-safe form shipped inside task payloads (workers only
        need the backoff numbers; classification is the engine's job)."""
        return {
            "retries": self.retries,
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
            "jitter_cap_s": self.jitter_cap_s,
        }

    @classmethod
    def from_payload(cls, payload: dict | None) -> "RetryPolicy":
        """Rebuild from :meth:`to_payload`; ``None`` gives the default
        policy (payloads from pre-policy plans keep working)."""
        if not payload:
            return cls()
        return cls(
            retries=int(payload.get("retries", 1)),
            backoff_base_s=float(payload.get("backoff_base_s", 0.25)),
            backoff_cap_s=float(payload.get("backoff_cap_s", 2.0)),
            jitter_cap_s=float(payload.get("jitter_cap_s", 0.25)),
        )
