"""Stage fingerprint drift: stage code must not change behind its keys.

The worst cache bug this repo can ship is silent: edit a registered
stage's body without bumping ``Stage.version``, and every campaign that
already ran keeps serving the *old* artifact under the *same* key —
stale results presented as reproductions.  No test catches it, because
the cached path never re-executes the changed code.

This module pins a **fingerprint** per registered stage into the
committed ``stage-fingerprints.json``: a sha256 over the normalized AST
(docstrings stripped, formatting/comments irrelevant by construction)
of the stage's run function *plus its transitive in-repo callee
closure* from the :mod:`.callgraph` edges.  A stage's behaviour lives
as much in helpers as in its own body, so the closure is part of the
identity — editing ``stable_hash`` or a shared kernel drifts every
stage that reaches it, on purpose.

Enforcement has two layers:

* the ``stage-fingerprint`` lint rule — per module, for stages pinned
  under that module's dotted name — fires on any drift, so the tier-1
  "repo lints clean" gate automatically requires the committed pins to
  match HEAD;
* ``repro lint --fingerprints`` checks the whole tree (also reporting
  unpinned stages and orphaned pins) and exits 1 on any mismatch;
  ``--fingerprints-update`` re-pins after a deliberate change.

Drift taxonomy: fingerprint changed while ``Stage.version`` stayed →
**drift** (bump the version if behaviour changed, or re-pin if the edit
is provably behaviour-preserving, e.g. a pure refactor gated by golden
tests); fingerprint and/or version changed with a version bump → the
pin is **stale**, just re-pin.  Either way the committed file must
match HEAD before the gate goes green again.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .callgraph import (
    MODULE_BODY,
    FunctionInfo,
    ProgramIndex,
    program_index_for_root,
)
from .context import SourceModule
from .findings import Finding
from .rules import register_rule

__all__ = [
    "FINGERPRINT_FILENAME",
    "FINGERPRINT_VERSION",
    "check_fingerprints",
    "compute_fingerprints",
    "discover_fingerprints",
    "load_fingerprints",
    "save_fingerprints",
    "stage_fingerprint",
]

FINGERPRINT_FILENAME = "stage-fingerprints.json"
FINGERPRINT_VERSION = 1


# -- normalization -----------------------------------------------------------


def _strip_docstrings(node: ast.AST) -> None:
    """Remove docstring expressions in place, recursively."""
    for child in ast.walk(node):
        if not isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module),
        ):
            continue
        body = child.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            del body[0]
            if not body:
                body.append(ast.Pass())


def normalized_dump(node: ast.AST) -> str:
    """The formatting-insensitive identity of a code object: its AST
    with docstrings removed and no location attributes.  Comments and
    whitespace never reach the AST, so they cannot move a fingerprint;
    any semantic edit does."""
    clone = copy.deepcopy(node)
    _strip_docstrings(clone)
    return ast.dump(clone, include_attributes=False)


# -- stage discovery ---------------------------------------------------------


def _registration_of(fn: ast.AST) -> Optional[Tuple[str, int]]:
    """(stage name, declared version) if ``fn`` carries a
    ``@register_stage(...)`` decorator with a literal name."""
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    for decorator in fn.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        is_registration = (
            isinstance(func, ast.Name) and func.id == "register_stage"
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr in ("register_stage", "register")
        )
        if not is_registration:
            continue
        if not decorator.args:
            continue
        name_node = decorator.args[0]
        if not (
            isinstance(name_node, ast.Constant)
            and isinstance(name_node.value, str)
        ):
            continue
        version = 0
        for kw in decorator.keywords:
            if (
                kw.arg == "version"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, int)
            ):
                version = kw.value.value
        return name_node.value, version
    return None


def stage_fingerprint(index: ProgramIndex, info: FunctionInfo) -> str:
    """Fingerprint of one stage: its run function plus every in-tree
    function transitively reachable from it, each under its qualified
    name (so moving a helper between modules is a visible change)."""
    parts = [("<stage>", normalized_dump(info.node))]
    for qname in index.transitive_callees(info.qname):
        callee = index.functions.get(qname)
        if callee is None or callee.local == MODULE_BODY:
            continue
        parts.append((qname, normalized_dump(callee.node)))
    blob = "\x00".join(f"{name}\x1f{dump}" for name, dump in parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def compute_fingerprints(index: ProgramIndex) -> Dict[str, dict]:
    """Every registered stage in the program: name → pin entry (plus
    the defining node's location for findings).  Cached on the index."""
    if index.fingerprint_cache is not None:
        return index.fingerprint_cache
    stages: Dict[str, dict] = {}
    for qname in sorted(index.functions):
        info = index.functions[qname]
        registration = _registration_of(info.node)
        if registration is None:
            continue
        name, version = registration
        stages[name] = {
            "fingerprint": stage_fingerprint(index, info),
            "module": info.module,
            "stage_version": version,
            "scope_path": info.scope_path,
            "line": info.node.lineno,
        }
    index.fingerprint_cache = stages
    return stages


# -- pin file ----------------------------------------------------------------


def load_fingerprints(path: Path) -> Dict[str, dict]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != FINGERPRINT_VERSION:
        raise ValueError(
            f"unsupported fingerprint file version {version!r} in {path} "
            f"(expected {FINGERPRINT_VERSION})"
        )
    return dict(payload.get("stages", {}))


def save_fingerprints(path: Path, stages: Dict[str, dict]) -> None:
    payload = {
        "version": FINGERPRINT_VERSION,
        "stages": {
            name: {
                "fingerprint": entry["fingerprint"],
                "module": entry["module"],
                "stage_version": entry["stage_version"],
            }
            for name, entry in sorted(stages.items())
        },
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def discover_fingerprints(roots: Sequence[Path]) -> Optional[Path]:
    """Find the nearest committed pin file above any lint root."""
    for root in roots:
        candidates = [root] if root.is_dir() else [root.parent]
        candidates += list(candidates[0].parents)
        for candidate in candidates:
            pins = candidate / FINGERPRINT_FILENAME
            if pins.is_file():
                return pins
    return None


# -- comparison --------------------------------------------------------------


def _compare_entry(name: str, pinned: dict, current: dict) -> Optional[Tuple[str, str]]:
    """(kind, message) for one pinned stage, or None if in sync."""
    fp_same = pinned.get("fingerprint") == current["fingerprint"]
    version_same = pinned.get("stage_version") == current["stage_version"]
    if fp_same and version_same:
        return None
    if fp_same:
        return (
            "stale-pin",
            f"stage `{name}` bumped Stage.version "
            f"{pinned.get('stage_version')} → {current['stage_version']} "
            "without code changes; re-pin with "
            "`repro lint --fingerprints-update`",
        )
    if version_same:
        return (
            "drift",
            f"stage `{name}` (version {current['stage_version']}) changed "
            "behind its cache keys: the normalized AST of its run function "
            "or a transitive callee no longer matches "
            f"{FINGERPRINT_FILENAME}; bump Stage.version if behaviour "
            "changed (cached artifacts are stale otherwise), or re-pin "
            "with `repro lint --fingerprints-update` if the edit is "
            "provably behaviour-preserving",
        )
    return (
        "stale-pin",
        f"stage `{name}` changed with a Stage.version bump "
        f"({pinned.get('stage_version')} → {current['stage_version']}); "
        f"re-pin with `repro lint --fingerprints-update` so "
        f"{FINGERPRINT_FILENAME} matches HEAD",
    )


def check_fingerprints(
    paths: Sequence[Path],
    pin_path: Optional[Path] = None,
) -> Tuple[List[Finding], Optional[Path], Dict[str, dict]]:
    """Whole-tree fingerprint check for ``repro lint --fingerprints``.

    Returns (findings, pin file path, current stage entries).  Unlike
    the per-module rule this also reports stages missing from the pin
    file and pins whose stage no longer exists.
    """
    from .engine import collect_files  # local import: engine imports us

    files = collect_files(paths)
    index = ProgramIndex.build(files)
    current = compute_fingerprints(index)
    if pin_path is None:
        pin_path = discover_fingerprints([Path(p) for p in paths])
    pinned: Dict[str, dict] = {}
    if pin_path is not None and pin_path.is_file():
        pinned = load_fingerprints(pin_path)

    findings: List[Finding] = []
    for name in sorted(current):
        entry = current[name]
        if name not in pinned:
            findings.append(Finding(
                path=entry["scope_path"],
                line=entry["line"],
                col=0,
                rule="stage-fingerprint",
                message=(
                    f"stage `{name}` is not pinned in "
                    f"{FINGERPRINT_FILENAME}; run "
                    "`repro lint --fingerprints-update`"
                ),
                snippet=f"stage {name}",
            ))
            continue
        verdict = _compare_entry(name, pinned[name], entry)
        if verdict is not None:
            findings.append(Finding(
                path=entry["scope_path"],
                line=entry["line"],
                col=0,
                rule="stage-fingerprint",
                message=verdict[1],
                snippet=f"stage {name}",
            ))
    for name in sorted(set(pinned) - set(current)):
        findings.append(Finding(
            path=FINGERPRINT_FILENAME,
            line=1,
            col=0,
            rule="stage-fingerprint",
            message=(
                f"pinned stage `{name}` no longer exists in the tree; "
                "run `repro lint --fingerprints-update` to prune it"
            ),
            snippet=f"stage {name}",
        ))
    return findings, pin_path, current


# -- the per-module rule -----------------------------------------------------


@register_rule(
    "stage-fingerprint",
    severity="error",
    description=(
        "a registered stage's normalized AST (run body + transitive callee "
        "closure) must match the committed stage-fingerprints.json unless "
        "Stage.version was bumped and the file re-pinned"
    ),
)
def check_stage_fingerprint(module: SourceModule) -> List[Finding]:
    """Drift findings for stages defined in this module.

    Only stages pinned under this module's dotted name are compared, so
    fixture trees and scratch packages with their own ``register_stage``
    shims stay silent; unpinned/orphaned enforcement lives in the
    whole-tree ``--fingerprints`` check and its tier-1/CI gates.
    """
    pin_path = discover_fingerprints([module.root])
    if pin_path is None:
        return []
    try:
        pinned = load_fingerprints(pin_path)
    except (ValueError, OSError, json.JSONDecodeError):
        return []
    index = program_index_for_root(module.root)
    current = compute_fingerprints(index)
    findings = []
    for name, entry in sorted(current.items()):
        if entry["scope_path"] != module.scope_path:
            continue
        pin = pinned.get(name)
        if pin is None or pin.get("module") != entry["module"]:
            continue
        verdict = _compare_entry(name, pin, entry)
        if verdict is not None:
            findings.append(module.finding(
                (entry["line"], 0), "stage-fingerprint", verdict[1]
            ))
    return findings
