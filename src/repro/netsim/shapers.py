"""Additional queueing disciplines and traffic shaping.

The paper's §5 asks how the NTT copes with environments where "many
different applications, transport protocols, queuing disciplines, etc.
coexist".  These components let scenario authors build such
environments:

* :class:`PriorityQueue` — strict-priority scheduling over N bands; a
  drop-tail bound per band.  Plug it into any link via
  ``queue_factory``.
* :class:`TokenBucketShaper` — classic (rate, burst) shaping in front of
  a node's egress; paces application bursts without changing the
  application code.

Both follow the ``enqueue``/``dequeue`` protocol of
:class:`~repro.netsim.queues.DropTailQueue`, so links accept them
unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.netsim.core import Simulator
from repro.netsim.packet import Packet
from repro.netsim.queues import QueueStats
from repro.netsim.units import BYTE

__all__ = ["PriorityQueue", "TokenBucketShaper", "flow_band_classifier"]

#: Slack (in bytes) for token comparisons.  Refills computed from float
#: timestamps can land infinitesimally below the required size; without
#: the epsilon the shaper would reschedule zero-length releases forever.
_TOKEN_EPSILON = 1e-6


def flow_band_classifier(bands: dict[int, int], default_band: int = 0) -> Callable[[Packet], int]:
    """Build a classifier mapping ``packet.flow_id`` to a priority band.

    Band 0 is the highest priority.  Flows not listed fall into
    ``default_band``.
    """
    mapping = dict(bands)

    def classify(packet: Packet) -> int:
        return mapping.get(packet.flow_id, default_band)

    return classify


class PriorityQueue:
    """Strict-priority queue with per-band drop-tail bounds.

    Dequeue always serves the lowest-numbered non-empty band; a band's
    arrivals beyond its capacity are dropped.  With a single band this
    degrades exactly to :class:`DropTailQueue`.

    Args:
        capacity_packets: per-band capacity.
        n_bands: number of priority bands.
        classifier: ``packet -> band``; defaults to everything in band 0.
    """

    def __init__(
        self,
        capacity_packets: int,
        n_bands: int = 2,
        classifier: Callable[[Packet], int] | None = None,
    ):
        if capacity_packets <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_packets}")
        if n_bands <= 0:
            raise ValueError(f"n_bands must be positive, got {n_bands}")
        self.capacity = int(capacity_packets)
        self.n_bands = int(n_bands)
        # Not FIFO: a high-band arrival overtakes queued low-band
        # packets, so channels must not pre-book departures.
        self.fifo_service = False
        self.classifier = classifier if classifier is not None else (lambda packet: 0)
        self._bands: list[deque[Packet]] = [deque() for _ in range(n_bands)]
        self.stats = QueueStats()
        #: Simulation-wide counters, set by the owning channel.
        self.sim_stats = None
        self.per_band_enqueued = [0] * n_bands
        self.per_band_dropped = [0] * n_bands

    def __len__(self) -> int:
        return sum(len(band) for band in self._bands)

    @property
    def occupancy(self) -> int:
        return len(self)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def band_of(self, packet: Packet) -> int:
        """Clamped band index for ``packet``."""
        band = self.classifier(packet)
        return min(max(int(band), 0), self.n_bands - 1)

    def enqueue(self, packet: Packet) -> bool:
        band = self.band_of(packet)
        queue = self._bands[band]
        if len(queue) >= self.capacity:
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            self.per_band_dropped[band] += 1
            if self.sim_stats is not None:
                self.sim_stats.packets_dropped += 1
                self.sim_stats.bytes_dropped += packet.size
            return False
        queue.append(packet)
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        self.per_band_enqueued[band] += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, len(self))
        return True

    def dequeue(self) -> Packet | None:
        for queue in self._bands:
            if queue:
                self.stats.dequeued += 1
                return queue.popleft()
        return None


class TokenBucketShaper:
    """A (rate, burst) token bucket in front of a channel.

    Packets submitted via :meth:`send` are released to the underlying
    ``forward`` callable as soon as enough tokens are available; the
    bucket refills continuously at ``rate_bps``.  Conforming bursts up to
    ``burst_bytes`` pass through immediately.

    Args:
        sim: the event loop (drives delayed releases).
        rate_bps: long-term shaping rate.
        burst_bytes: bucket depth.
        forward: callable receiving released packets (typically
            ``channel.send`` or ``node.forward``).
        queue_packets: backlog bound; excess arrivals are dropped.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        burst_bytes: int,
        forward: Callable[[Packet], bool],
        queue_packets: int = 10_000,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self.burst_bytes = int(burst_bytes)
        self.forward = forward
        self.queue_packets = int(queue_packets)
        self._tokens = float(burst_bytes)
        self._last_refill = sim.now
        self._backlog: deque[Packet] = deque()
        self._release_scheduled = False
        self.packets_shaped = 0
        self.packets_dropped = 0

    @property
    def backlog(self) -> int:
        """Packets waiting for tokens."""
        return len(self._backlog)

    def _refill(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_refill
        self._last_refill = now
        self._tokens = min(
            self.burst_bytes, self._tokens + elapsed * self.rate_bps / BYTE
        )

    def send(self, packet: Packet) -> bool:
        """Submit a packet; returns False if the backlog bound dropped it."""
        if packet.size > self.burst_bytes:
            raise ValueError(
                f"packet of {packet.size} B exceeds bucket depth {self.burst_bytes} B"
            )
        if len(self._backlog) >= self.queue_packets:
            self.packets_dropped += 1
            return False
        self._backlog.append(packet)
        self._drain()
        return True

    def _drain(self) -> None:
        self._refill()
        while self._backlog and self._tokens + _TOKEN_EPSILON >= self._backlog[0].size:
            packet = self._backlog.popleft()
            self._tokens = max(0.0, self._tokens - packet.size)
            self.packets_shaped += 1
            self.forward(packet)
        if self._backlog and not self._release_scheduled:
            deficit = max(self._backlog[0].size - self._tokens, _TOKEN_EPSILON)
            delay = deficit * BYTE / self.rate_bps
            self._release_scheduled = True
            self.sim.schedule(delay, self._on_release)

    def _on_release(self) -> None:
        self._release_scheduled = False
        self._drain()
