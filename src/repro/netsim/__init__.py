"""Packet-level discrete-event network simulator (the ns-3 substitute).

The simulator reproduces the dynamics the paper's datasets depend on:
store-and-forward links with serialization and propagation delay,
drop-tail queues at a shared bottleneck, message-based senders following
a heavy-tailed workload, and TCP cross-traffic.

Main entry points:

* :class:`repro.netsim.core.Simulator` — the event loop.
* :class:`repro.netsim.topology.Network` — nodes, links and routing.
* :mod:`repro.netsim.scenarios` — the paper's Fig. 4 setups.
"""

from repro.netsim.core import Simulator
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue, REDQueue
from repro.netsim.shapers import PriorityQueue, TokenBucketShaper
from repro.netsim.topology import Network
from repro.netsim.trace import PacketRecord, Trace

__all__ = [
    "Simulator",
    "Packet",
    "Network",
    "PacketRecord",
    "Trace",
    "DropTailQueue",
    "REDQueue",
    "PriorityQueue",
    "TokenBucketShaper",
]
