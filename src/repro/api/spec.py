"""Declarative experiment specifications.

:class:`ExperimentSpec` is the single value object describing an
experiment: which registered scenario, at which scale, with which seed,
plus optional overrides for the window, model and training settings.
It is frozen (hashable, usable as a dict key) and has a *stable content
hash* — two specs that resolve to the same configuration share the same
:attr:`~ExperimentSpec.spec_hash` and therefore the same cached
artifacts in the :class:`~repro.api.store.ArtifactStore`.

The module also owns the config ↔ dict converters used to make
checkpoints self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api.hashing import stable_hash
from repro.api.registry import SCENARIOS
from repro.core.aggregation import AggregationSpec
from repro.core.features import FeatureSpec
from repro.core.model import NTTConfig
from repro.core.pipeline import ExperimentScale, get_scale
from repro.core.pretrain import TrainSettings
from repro.datasets.windows import WindowConfig
from repro.netsim.scenarios import ScenarioConfig

__all__ = [
    "ExperimentSpec",
    "window_config_to_dict",
    "window_config_from_dict",
    "train_settings_to_dict",
    "train_settings_from_dict",
    "ntt_config_to_dict",
    "ntt_config_from_dict",
    "scenario_config_to_dict",
    "scenario_config_from_dict",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that identifies one experiment, declaratively.

    ``None`` fields resolve to the chosen scale's defaults, so
    ``ExperimentSpec(scale="smoke")`` and the fully spelled-out
    equivalent hash identically.

    Args:
        scenario: name of a registered scenario (see
            :data:`repro.api.registry.SCENARIOS`).
        scale: ``smoke`` / ``small`` / ``paper``.
        seed: base seed for simulation and training randomness.
        n_runs: simulation runs per dataset (default: scale preset).
        window: windowing override.
        model: NTT architecture override.
        pretrain: pre-training settings override.
        finetune: fine-tuning settings override.
        fine_fraction: the paper's "smaller dataset" fraction.
        pipeline: optional custom stage pipeline — names of registered
            sweepable stages (see :data:`repro.api.stages.STAGE_REGISTRY`)
            planned for this spec instead of the standard chain.  Stage
            names are validated at planning time, when every stage
            module has been imported.
        stage_params: optional per-stage parameter dictionaries, e.g.
            ``{"federated_pretrain": {"n_clients": 4}}``.  Values must
            be JSON scalars or (nested) lists/dicts thereof; they are
            frozen internally so the spec stays hashable.

    ``pipeline`` and ``stage_params`` participate in :attr:`spec_hash`
    only when set, so every pre-existing spec hashes exactly as before.
    """

    scenario: str = "pretrain"
    scale: str = "small"
    seed: int = 0
    n_runs: int | None = None
    window: WindowConfig | None = None
    model: NTTConfig | None = None
    pretrain: TrainSettings | None = None
    finetune: TrainSettings | None = None
    fine_fraction: float | None = None
    pipeline: tuple[str, ...] | None = None
    stage_params: tuple | None = None

    def __post_init__(self):
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; choose from {SCENARIOS.names()}"
            )
        # Validates the scale name eagerly (raises with the choices).
        get_scale(self.scale)
        # Normalise the stage fields into hashable canonical forms
        # (the dataclass is frozen, hence object.__setattr__).
        if self.pipeline is not None:
            names = tuple(self.pipeline)
            if not names or not all(isinstance(name, str) for name in names):
                raise ValueError("pipeline must be a non-empty sequence of stage names")
            object.__setattr__(self, "pipeline", names)
        if self.stage_params is not None:
            object.__setattr__(self, "stage_params", _freeze_params(self.stage_params))

    # -- resolution ---------------------------------------------------------------

    def to_scale(self) -> ExperimentScale:
        """The :class:`ExperimentScale` this spec resolves to, with all
        overrides applied."""
        base = get_scale(self.scale)
        overrides = {}
        if self.n_runs is not None:
            overrides["n_runs"] = self.n_runs
        if self.window is not None:
            overrides["window"] = self.window
        if self.model is not None:
            overrides["model"] = self.model
        if self.pretrain is not None:
            overrides["pretrain_settings"] = self.pretrain
        if self.finetune is not None:
            overrides["finetune_settings"] = self.finetune
        if self.fine_fraction is not None:
            overrides["fine_fraction"] = self.fine_fraction
        return replace(base, **overrides) if overrides else base

    def scenario_config(self, name: str | None = None) -> ScenarioConfig:
        """Build the (named or spec-default) scenario at this spec's
        scale and seed."""
        return SCENARIOS.build(name or self.scenario, scale=self.scale, seed=self.seed)

    # -- stage parameters ---------------------------------------------------------

    def params_for(self, stage: str) -> dict:
        """This spec's declared parameters for one stage (thawed copy)."""
        for name, frozen in self.stage_params or ():
            if name == stage:
                return _thaw_value(frozen)
        return {}

    # -- identity -----------------------------------------------------------------

    @property
    def spec_hash(self) -> str:
        """Stable content hash over the *resolved* configuration.

        ``pipeline`` and ``stage_params`` are folded in only when set,
        so specs written before the stage API hash identically.
        """
        scale = self.to_scale()
        payload = {
            "scenario": self.scenario,
            "scenario_config": self.scenario_config(),
            "seed": self.seed,
            "n_runs": scale.n_runs,
            "window": scale.window,
            "model": scale.model_config(),
            "pretrain": scale.pretrain_settings,
            "finetune": scale.finetune_settings,
            "fine_fraction": scale.fine_fraction,
        }
        if self.pipeline is not None:
            payload["pipeline"] = list(self.pipeline)
        if self.stage_params is not None:
            payload["stage_params"] = self.stage_params_dict()
        return stable_hash(payload)

    def stage_params_dict(self) -> dict:
        """All stage parameters as a plain ``{stage: {param: value}}``."""
        return {name: _thaw_value(frozen) for name, frozen in self.stage_params or ()}

    def with_overrides(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # -- expansion ----------------------------------------------------------------

    @classmethod
    def grid(
        cls,
        scenarios=("pretrain",),
        scales=("small",),
        seeds=(0,),
        **common,
    ) -> list["ExperimentSpec"]:
        """Expand a scenario × scale × seed grid into specs.

        ``common`` fields apply to every spec.  The expansion is
        deterministic (scenario-major order) and deduplicated by
        :attr:`spec_hash`, so overlapping axes never plan duplicate
        work.  This is the building block under ``repro sweep`` and
        :func:`repro.runtime.expand_grid`.
        """
        specs: list[ExperimentSpec] = []
        seen: set[str] = set()
        for scenario in scenarios:
            for scale in scales:
                for seed in seeds:
                    spec = cls(scenario=scenario, scale=scale, seed=int(seed), **common)
                    if spec.spec_hash not in seen:
                        seen.add(spec.spec_hash)
                        specs.append(spec)
        return specs

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
        }
        if self.n_runs is not None:
            payload["n_runs"] = self.n_runs
        if self.window is not None:
            payload["window"] = window_config_to_dict(self.window)
        if self.model is not None:
            payload["model"] = ntt_config_to_dict(self.model)
        if self.pretrain is not None:
            payload["pretrain"] = train_settings_to_dict(self.pretrain)
        if self.finetune is not None:
            payload["finetune"] = train_settings_to_dict(self.finetune)
        if self.fine_fraction is not None:
            payload["fine_fraction"] = self.fine_fraction
        if self.pipeline is not None:
            payload["pipeline"] = list(self.pipeline)
        if self.stage_params is not None:
            payload["stage_params"] = self.stage_params_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        kwargs = dict(payload)
        if "window" in kwargs:
            kwargs["window"] = window_config_from_dict(kwargs["window"])
        if "model" in kwargs:
            kwargs["model"] = ntt_config_from_dict(kwargs["model"])
        if "pretrain" in kwargs:
            kwargs["pretrain"] = train_settings_from_dict(kwargs["pretrain"])
        if "finetune" in kwargs:
            kwargs["finetune"] = train_settings_from_dict(kwargs["finetune"])
        return cls(**kwargs)


# -- stage-parameter freezing ------------------------------------------------------
#
# ExperimentSpec is frozen and hashable, so per-stage parameter
# dictionaries are canonicalised into nested tuples on construction and
# thawed back into dicts/lists on access.  *Every* container carries a
# leading tag — dicts freeze as sorted ``("__dict__", (key, value), ...)``
# and lists as ``("__list__", item, ...)`` — so the two types never
# collide, even when a user list's first element is itself a tag string
# (freezing always prepends, so literal elements stay at position >= 1).

_DICT_TAG = "__dict__"
_LIST_TAG = "__list__"


def _freeze_value(value):
    if isinstance(value, dict):
        return (_DICT_TAG,) + tuple(
            sorted((str(key), _freeze_value(item)) for key, item in value.items())
        )
    if isinstance(value, (list, tuple)):
        return (_LIST_TAG,) + tuple(_freeze_value(item) for item in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"stage parameter values must be JSON scalars, lists or dicts, "
        f"not {type(value).__name__}"
    )


def _thaw_value(value):
    if isinstance(value, tuple):
        if value[:1] == (_DICT_TAG,):
            return {key: _thaw_value(item) for key, item in value[1:]}
        if value[:1] == (_LIST_TAG,):
            return [_thaw_value(item) for item in value[1:]]
        raise ValueError(f"malformed frozen stage-parameter value: {value!r}")
    return value


def _freeze_params(stage_params) -> tuple:
    """Canonicalise ``{stage: {param: value}}`` (or an already-frozen
    form) into the hashable tuple representation."""
    if isinstance(stage_params, dict):
        items = sorted(stage_params.items())
    else:
        items = [(name, _thaw_value(frozen)) for name, frozen in stage_params]
    frozen = []
    for name, params in items:
        if not isinstance(params, dict):
            raise TypeError(
                f"stage_params[{name!r}] must be a parameter dictionary, "
                f"not {type(params).__name__}"
            )
        frozen.append((str(name), _freeze_value(params)))
    return tuple(frozen)


# -- config converters -----------------------------------------------------------
#
# Checkpoint metadata must be JSON, so every config involved in restoring
# a model round-trips through plain dicts here.


def window_config_to_dict(window: WindowConfig) -> dict:
    return {"window_len": window.window_len, "stride": window.stride}


def window_config_from_dict(payload: dict) -> WindowConfig:
    return WindowConfig(**payload)


def train_settings_to_dict(settings: TrainSettings) -> dict:
    return {
        "epochs": settings.epochs,
        "batch_size": settings.batch_size,
        "lr": settings.lr,
        "warmup_fraction": settings.warmup_fraction,
        "grad_clip": settings.grad_clip,
        "patience": settings.patience,
        "seed": settings.seed,
    }


def train_settings_from_dict(payload: dict) -> TrainSettings:
    return TrainSettings(**payload)


def ntt_config_to_dict(config: NTTConfig) -> dict:
    features = config.features
    return {
        "features": {
            "use_time": features.use_time,
            "use_size": features.use_size,
            "use_delay": features.use_delay,
            "use_receiver": features.use_receiver,
        },
        "aggregation": [
            [level.count, level.block] for level in config.aggregation.levels
        ],
        "d_emb": config.d_emb,
        "d_model": config.d_model,
        "n_heads": config.n_heads,
        "n_layers": config.n_layers,
        "d_ff": config.d_ff,
        "dropout": config.dropout,
        "decoder_hidden": config.decoder_hidden,
        "n_receivers": config.n_receivers,
        "seed": config.seed,
    }


def ntt_config_from_dict(payload: dict) -> NTTConfig:
    kwargs = dict(payload)
    kwargs["features"] = FeatureSpec(**kwargs["features"])
    kwargs["aggregation"] = AggregationSpec.from_pairs(kwargs["aggregation"])
    return NTTConfig(**kwargs)


def scenario_config_to_dict(config: ScenarioConfig) -> dict:
    """JSON provenance for a scenario config.

    ``workload`` objects are recorded by class name only — they cannot be
    reconstructed, but the hash (which covers their parameters) already
    keys the cache.
    """
    payload = {
        "kind": config.kind,
        "n_senders": config.n_senders,
        "sender_load_bps": config.sender_load_bps,
        "bottleneck_rate_bps": config.bottleneck_rate_bps,
        "bottleneck_queue_packets": config.bottleneck_queue_packets,
        "bottleneck_delay": config.bottleneck_delay,
        "access_rate_bps": config.access_rate_bps,
        "access_delay": config.access_delay,
        "access_queue_packets": config.access_queue_packets,
        "duration": config.duration,
        "seed": config.seed,
        "mtu_bytes": config.mtu_bytes,
        "cross_traffic_bps": config.cross_traffic_bps,
        "n_cross_flows": config.n_cross_flows,
        "n_receivers": config.n_receivers,
        "receiver_delays": list(config.receiver_delays),
        "receiver_rate_bps": config.receiver_rate_bps,
        "receiver_queue_packets": config.receiver_queue_packets,
        "per_receiver_cross_flows": config.per_receiver_cross_flows,
        "start_jitter": config.start_jitter,
        "bottleneck_discipline": config.bottleneck_discipline,
    }
    if config.workload is not None:
        payload["workload_class"] = type(config.workload).__name__
    return payload


def scenario_config_from_dict(payload: dict) -> ScenarioConfig:
    kwargs = dict(payload)
    kwargs.pop("workload_class", None)
    kwargs["receiver_delays"] = tuple(kwargs.get("receiver_delays", ()))
    return ScenarioConfig(**kwargs)
