"""Tests for trace windowing."""

import numpy as np
import pytest

from repro.datasets.windows import WindowConfig, WindowDataset, windows_from_trace


def receiver_index_for(trace):
    return {int(r): i for i, r in enumerate(sorted(set(trace.receiver_id.tolist())))}


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(window_len=1)
        with pytest.raises(ValueError):
            WindowConfig(stride=0)


class TestWindowing:
    def test_shapes(self, smoke_trace):
        config = WindowConfig(window_len=32, stride=4)
        ds = windows_from_trace(smoke_trace, config, receiver_index_for(smoke_trace))
        expected = (len(smoke_trace) - 32) // 4 + 1
        assert len(ds) == expected
        assert ds.features.shape == (expected, 32, 3)
        assert ds.receiver.shape == (expected, 32)
        assert ds.window_len == 32

    def test_rel_time_last_packet_zero(self, smoke_trace):
        config = WindowConfig(window_len=16, stride=8)
        ds = windows_from_trace(smoke_trace, config, receiver_index_for(smoke_trace))
        assert np.allclose(ds.features[:, -1, 0], 0.0)
        assert np.all(ds.features[:, :, 0] <= 0.0)

    def test_rel_time_monotone(self, smoke_trace):
        ds = windows_from_trace(
            smoke_trace, WindowConfig(16, 16), receiver_index_for(smoke_trace)
        )
        assert np.all(np.diff(ds.features[:, :, 0], axis=1) >= 0)

    def test_delay_target_matches_last_packet(self, smoke_trace):
        config = WindowConfig(window_len=16, stride=1)
        ds = windows_from_trace(smoke_trace, config, receiver_index_for(smoke_trace))
        delays = smoke_trace.delay
        assert np.allclose(ds.delay_target, delays[15:])
        assert np.allclose(ds.features[:, -1, 2], ds.delay_target)

    def test_stride_spacing(self, smoke_trace):
        one = windows_from_trace(
            smoke_trace, WindowConfig(16, 1), receiver_index_for(smoke_trace)
        )
        four = windows_from_trace(
            smoke_trace, WindowConfig(16, 4), receiver_index_for(smoke_trace)
        )
        assert np.allclose(four.delay_target, one.delay_target[::4])

    def test_short_trace_yields_empty(self, smoke_trace):
        tiny = smoke_trace.subset(np.arange(5))
        ds = windows_from_trace(tiny, WindowConfig(window_len=64), receiver_index_for(smoke_trace))
        assert len(ds) == 0
        assert ds.features.shape == (0, 64, 3)

    def test_receiver_ids_remapped(self, smoke_case2_trace):
        index = receiver_index_for(smoke_case2_trace)
        ds = windows_from_trace(smoke_case2_trace, WindowConfig(16, 8), index)
        assert set(np.unique(ds.receiver).tolist()) <= set(index.values())

    def test_mct_seq_aligned(self, smoke_trace):
        ds = windows_from_trace(
            smoke_trace, WindowConfig(16, 4), receiver_index_for(smoke_trace)
        )
        assert np.allclose(ds.mct_seq[:, -1], ds.mct_target)

    def test_message_size_positive(self, smoke_trace):
        ds = windows_from_trace(
            smoke_trace, WindowConfig(16, 4), receiver_index_for(smoke_trace)
        )
        assert np.all(ds.message_size > 0)


class TestDatasetOps:
    @pytest.fixture
    def dataset(self, smoke_trace):
        return windows_from_trace(
            smoke_trace, WindowConfig(16, 2), receiver_index_for(smoke_trace)
        )

    def test_subset_boolean(self, dataset):
        mask = dataset.delay_target > np.median(dataset.delay_target)
        sub = dataset.subset(mask)
        assert len(sub) == int(mask.sum())

    def test_sample_fraction(self, dataset, rng):
        sub = dataset.sample_fraction(0.1, rng)
        assert len(sub) == max(1, round(0.1 * len(dataset)))

    def test_sample_fraction_invalid(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.sample_fraction(0.0, rng)

    def test_concatenate(self, dataset):
        merged = WindowDataset.concatenate([dataset, dataset])
        assert len(merged) == 2 * len(dataset)

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            WindowDataset.concatenate([])

    def test_completed_messages_filter(self, dataset):
        filtered = dataset.with_completed_messages_only()
        assert np.all(np.isfinite(filtered.mct_target))
        assert np.all(filtered.mct_target > 0)

    def test_column_validation(self):
        with pytest.raises(ValueError):
            WindowDataset(
                np.zeros((3, 8, 3)),
                np.zeros((2, 8)),  # mismatched
                np.zeros(3),
                np.zeros(3),
                np.zeros(3),
            )

    def test_feature_column_count_validated(self):
        with pytest.raises(ValueError):
            WindowDataset(
                np.zeros((3, 8, 5)),
                np.zeros((3, 8)),
                np.zeros(3),
                np.zeros(3),
                np.zeros(3),
            )
