"""Tests for the batched Predictor facade."""

import numpy as np
import pytest

from repro.api import Predictor
from repro.core.evaluation import predict_delay
from repro.core.model import NTTConfig
from repro.core.pretrain import TrainSettings, pretrain

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


@pytest.fixture(scope="module")
def trained(smoke_bundle):
    return pretrain(NTTConfig.smoke(), smoke_bundle, settings=FAST)


class TestBatching:
    def test_matches_unbatched_evaluation(self, trained, smoke_bundle):
        test = smoke_bundle.test
        expected = predict_delay(trained.model, trained.pipeline, test)
        predictor = Predictor(trained.model, trained.pipeline, batch_size=7)
        assert np.allclose(predictor.predict_dataset(test), expected)

    def test_same_batch_size_is_deterministic(self, trained, smoke_bundle):
        test = smoke_bundle.test
        predictor = Predictor(trained.model, trained.pipeline, batch_size=16)
        assert np.array_equal(
            predictor.predict_dataset(test), predictor.predict_dataset(test)
        )

    def test_batch_size_changes_results_only_at_ulp_level(self, trained, smoke_bundle):
        # Different BLAS batch groupings may differ in the last float
        # ulps, but nothing more.
        test = smoke_bundle.test
        small = Predictor(trained.model, trained.pipeline, batch_size=3)
        large = Predictor(trained.model, trained.pipeline, batch_size=1024)
        np.testing.assert_allclose(
            small.predict_dataset(test), large.predict_dataset(test), rtol=1e-12
        )

    def test_raw_numpy_batches(self, trained, smoke_bundle):
        test = smoke_bundle.test
        predictor = Predictor(trained.model, trained.pipeline)
        out = predictor.predict(test.features[:10], test.receiver[:10])
        assert out.shape == (10,)
        # Physical units: delays are positive and well under a second.
        assert np.all(out < 1.0)

    def test_empty_batch(self, trained):
        predictor = Predictor(trained.model, trained.pipeline)
        window = trained.model.config.aggregation.seq_len
        out = predictor.predict(
            np.zeros((0, window, 3)), np.zeros((0, window), dtype=np.int64)
        )
        assert out.shape == (0,)


class TestValidation:
    def test_unknown_task_rejected(self, trained):
        with pytest.raises(ValueError, match="task"):
            Predictor(trained.model, trained.pipeline, task="jitter")

    def test_bad_batch_size_rejected(self, trained):
        with pytest.raises(ValueError, match="batch_size"):
            Predictor(trained.model, trained.pipeline, batch_size=0)

    def test_shape_mismatch_rejected(self, trained, smoke_bundle):
        predictor = Predictor(trained.model, trained.pipeline)
        test = smoke_bundle.test
        with pytest.raises(ValueError, match="batch sizes"):
            predictor.predict(test.features[:4], test.receiver[:2])

    def test_mct_requires_message_size(self, trained, smoke_bundle):
        trained.pipeline.fit_mct(smoke_bundle.train.with_completed_messages_only())
        from repro.core.model import NTT, NTTForMCT

        config = trained.model.config
        mct_model = NTTForMCT(config, NTT(config))
        predictor = Predictor(mct_model, trained.pipeline, task="mct")
        test = smoke_bundle.test
        with pytest.raises(ValueError, match="message_size"):
            predictor.predict(test.features[:4], test.receiver[:4])

    def test_mct_message_size_length_mismatch_rejected(self, trained, smoke_bundle):
        trained.pipeline.fit_mct(smoke_bundle.train.with_completed_messages_only())
        from repro.core.model import NTT, NTTForMCT

        config = trained.model.config
        mct_model = NTTForMCT(config, NTT(config))
        predictor = Predictor(mct_model, trained.pipeline, task="mct")
        test = smoke_bundle.test
        with pytest.raises(ValueError, match="message_size batch sizes"):
            predictor.predict(test.features[:4], test.receiver[:4], test.message_size[:2])


class TestCheckpointRoundTrip:
    def test_save_load_bit_for_bit(self, trained, smoke_bundle, tmp_path):
        path = tmp_path / "predictor.npz"
        original = Predictor(trained.model, trained.pipeline)
        original.save(path)
        restored = Predictor.from_checkpoint(path)
        test = smoke_bundle.test
        assert np.array_equal(
            original.predict_dataset(test), restored.predict_dataset(test)
        )

    def test_legacy_checkpoint_without_config_rejected(self, trained, tmp_path):
        from repro.nn.serialize import save_checkpoint

        path = tmp_path / "legacy.npz"
        save_checkpoint(trained.model, path, metadata={"scale": "smoke"})
        with pytest.raises(ValueError, match="config"):
            Predictor.from_checkpoint(path)
