"""The packet: the unit of work moved around by the simulator."""

from __future__ import annotations

import itertools

__all__ = ["Packet", "PacketKind"]


class PacketKind:
    """Symbolic packet kinds (plain strings keep traces readable)."""

    DATA = "data"
    ACK = "ack"


_packet_uid = itertools.count()


class Packet:
    """A network packet.

    Slotted and hand-rolled (not a dataclass): packets are the
    highest-volume allocation in a simulation, so construction stays a
    single flat ``__init__`` with inline validation.

    Attributes:
        src: node id of the sender host.
        dst: node id of the destination host.
        size: wire size in bytes (headers included).
        flow_id: id of the flow (application) that produced the packet.
        message_id: id of the application message this packet belongs to,
            or ``-1`` for packets outside the message abstraction (ACKs,
            TCP cross-traffic segments).
        seq: sequence number within the flow.  For TCP this is the byte
            offset of the segment; for message senders it is the packet
            index within the message.
        kind: :class:`PacketKind` value.
        send_time: timestamp at which the application handed the packet
            to the network (set by the sender).
        message_size: total size of the enclosing message in bytes.
        is_message_end: True for the last packet of a message.
        traced: whether the packet should appear in collected traces.
            Cross-traffic packets set this to False: the paper's datasets
            "do not contain the cross-traffic packets" (§4).
        uid: globally unique packet id, assigned automatically.
        ack_for: for ACK packets, the cumulative sequence acknowledged.
        hops: number of store-and-forward hops traversed so far.
    """

    __slots__ = (
        "src",
        "dst",
        "size",
        "flow_id",
        "message_id",
        "seq",
        "kind",
        "send_time",
        "message_size",
        "is_message_end",
        "traced",
        "ack_for",
        "hops",
        "uid",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        size: int,
        flow_id: int = 0,
        message_id: int = -1,
        seq: int = 0,
        kind: str = PacketKind.DATA,
        send_time: float = 0.0,
        message_size: int = 0,
        is_message_end: bool = False,
        traced: bool = True,
        ack_for: int = -1,
        hops: int = 0,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.src = src
        self.dst = dst
        self.size = size
        self.flow_id = flow_id
        self.message_id = message_id
        self.seq = seq
        self.kind = kind
        self.send_time = send_time
        self.message_size = message_size
        self.is_message_end = is_message_end
        self.traced = traced
        self.ack_for = ack_for
        self.hops = hops
        self.uid = next(_packet_uid)

    def __repr__(self) -> str:
        return (
            f"Packet(uid={self.uid}, {self.kind}, src={self.src}, dst={self.dst}, "
            f"size={self.size}, flow={self.flow_id}, msg={self.message_id}, seq={self.seq})"
        )

    @property
    def is_ack(self) -> bool:
        return self.kind == PacketKind.ACK

    def reply_template(self, size: int, kind: str = PacketKind.ACK) -> "Packet":
        """Build a reply packet (ACK) travelling back to the sender."""
        return Packet(
            src=self.dst,
            dst=self.src,
            size=size,
            flow_id=self.flow_id,
            message_id=self.message_id,
            kind=kind,
            traced=False,
        )
