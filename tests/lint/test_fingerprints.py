"""Stage fingerprints: what moves them, what must not, and the pin
file's full lifecycle (update → check → drift → re-pin) through the CLI.

The contract under test is the one the cache depends on: a fingerprint
is a pure function of stage *behaviour* — run body plus transitive
callee closure, normalized AST — so cosmetic edits (comments,
docstrings, formatting) keep it byte-identical while any semantic edit,
including one buried in a helper, changes it.
"""

import json
from pathlib import Path

from repro.cli import main
from repro.lint.callgraph import program_index_for_root
from repro.lint.fingerprint import (
    FINGERPRINT_FILENAME,
    check_fingerprints,
    compute_fingerprints,
    load_fingerprints,
    save_fingerprints,
)

REGISTRY = (
    "def register_stage(name, version=0):\n"
    "    def wrap(fn):\n"
    "        return fn\n"
    "    return wrap\n"
)

UTIL = "def scale(x):\n    return x * 2\n"

STAGES = (
    "from .registry import register_stage\n"
    "from .util import scale\n"
    "\n"
    "\n"
    '@register_stage("alpha", version=0)\n'
    "def _stage_alpha(ctx):\n"
    '    """Docstring, first take."""\n'
    "    # a comment the fingerprint must not see\n"
    "    value = scale(ctx)\n"
    "    return value\n"
    "\n"
    "\n"
    '@register_stage("beta", version=0)\n'
    "def _stage_beta(ctx):\n"
    "    return 2\n"
)

# Same AST as STAGES: docstring reworded, comment dropped, blank lines
# and argument spacing shuffled.
STAGES_COSMETIC = (
    "from .registry import register_stage\n"
    "from .util import scale\n"
    "\n"
    '@register_stage("alpha", version=0)\n'
    "def _stage_alpha(ctx):\n"
    '    "Docstring, reworded and reformatted."\n'
    "    value = scale( ctx )\n"
    "\n"
    "    return value\n"
    "\n"
    "\n"
    "\n"
    '@register_stage("beta", version=0)\n'
    "def _stage_beta(ctx):\n"
    "    return 2\n"
)


def _write_pkg(root: Path, stages_src: str = STAGES, util_src: str = UTIL):
    pkg = root / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "registry.py").write_text(REGISTRY, encoding="utf-8")
    (pkg / "util.py").write_text(util_src, encoding="utf-8")
    (pkg / "stages.py").write_text(stages_src, encoding="utf-8")
    return pkg


def _fingerprints(root: Path):
    return {
        name: entry["fingerprint"]
        for name, entry in compute_fingerprints(
            program_index_for_root(root)
        ).items()
    }


class TestStability:
    def test_cosmetic_edits_keep_fingerprints_byte_identical(self, tmp_path):
        _write_pkg(tmp_path)
        before = _fingerprints(tmp_path)
        assert set(before) == {"alpha", "beta"}
        _write_pkg(tmp_path, stages_src=STAGES_COSMETIC)
        assert _fingerprints(tmp_path) == before

    def test_body_edit_changes_only_that_stage(self, tmp_path):
        _write_pkg(tmp_path)
        before = _fingerprints(tmp_path)
        edited = STAGES.replace("return value\n", "return value + 1\n")
        _write_pkg(tmp_path, stages_src=edited)
        after = _fingerprints(tmp_path)
        assert after["alpha"] != before["alpha"]
        assert after["beta"] == before["beta"]

    def test_helper_edit_drifts_the_callee_closure(self, tmp_path):
        # alpha reaches scale(); beta does not.  Editing the helper is a
        # behaviour change for alpha alone.
        _write_pkg(tmp_path)
        before = _fingerprints(tmp_path)
        _write_pkg(tmp_path, util_src="def scale(x):\n    return x * 3\n")
        after = _fingerprints(tmp_path)
        assert after["alpha"] != before["alpha"]
        assert after["beta"] == before["beta"]


class TestCheck:
    def _pin(self, tmp_path):
        _write_pkg(tmp_path)
        pin_path = tmp_path / FINGERPRINT_FILENAME
        _, _, current = check_fingerprints([tmp_path], pin_path=pin_path)
        save_fingerprints(pin_path, current)
        return pin_path

    def test_in_sync_tree_is_clean(self, tmp_path):
        pin_path = self._pin(tmp_path)
        findings, found_path, _ = check_fingerprints([tmp_path])
        assert findings == []
        assert found_path == pin_path

    def test_unversioned_body_edit_is_drift(self, tmp_path):
        self._pin(tmp_path)
        edited = STAGES.replace("return value\n", "return value + 1\n")
        _write_pkg(tmp_path, stages_src=edited)
        findings, _, _ = check_fingerprints([tmp_path])
        assert [f.snippet for f in findings] == ["stage alpha"]
        assert "bump Stage.version" in findings[0].message
        assert findings[0].path == "pkg/stages.py"

    def test_version_bump_without_repin_is_stale(self, tmp_path):
        self._pin(tmp_path)
        edited = STAGES.replace(
            '"alpha", version=0', '"alpha", version=1'
        ).replace("return value\n", "return value + 1\n")
        _write_pkg(tmp_path, stages_src=edited)
        findings, _, _ = check_fingerprints([tmp_path])
        assert [f.snippet for f in findings] == ["stage alpha"]
        assert "re-pin" in findings[0].message
        assert "0 → 1" in findings[0].message

    def test_unpinned_and_orphaned_stages_are_reported(self, tmp_path):
        pin_path = self._pin(tmp_path)
        pins = load_fingerprints(pin_path)
        pins["ghost"] = dict(pins["beta"])
        del pins["beta"]
        save_fingerprints(pin_path, pins)
        findings, _, _ = check_fingerprints([tmp_path])
        by_snippet = {f.snippet: f for f in findings}
        assert set(by_snippet) == {"stage beta", "stage ghost"}
        assert "not pinned" in by_snippet["stage beta"].message
        assert "no longer exists" in by_snippet["stage ghost"].message
        assert by_snippet["stage ghost"].path == FINGERPRINT_FILENAME


class TestCLIRoundTrip:
    def test_update_check_drift_repin(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write_pkg(tmp_path)

        assert main(["lint", str(tmp_path), "--fingerprints-update"]) == 0
        pin_path = tmp_path / FINGERPRINT_FILENAME
        assert pin_path.is_file()
        assert "2 stages" in capsys.readouterr().out

        assert main(["lint", str(tmp_path), "--fingerprints"]) == 0
        capsys.readouterr()

        edited = STAGES.replace("return value\n", "return value + 1\n")
        _write_pkg(tmp_path, stages_src=edited)
        assert main(["lint", str(tmp_path), "--fingerprints"]) == 1
        assert "alpha" in capsys.readouterr().out

        assert main(["lint", str(tmp_path), "--fingerprints-update"]) == 0
        capsys.readouterr()
        assert main(["lint", str(tmp_path), "--fingerprints"]) == 0

    def test_json_payload_names_the_pin_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write_pkg(tmp_path)
        assert main(["lint", str(tmp_path), "--fingerprints-update"]) == 0
        capsys.readouterr()
        code = main(
            ["lint", str(tmp_path), "--fingerprints", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fingerprints"] == str(tmp_path / FINGERPRINT_FILENAME)
        assert payload["findings"] == []
